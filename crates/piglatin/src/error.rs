//! Error types for the Pig Latin engine.

use std::fmt;

use lipstick_nrel::NrelError;

/// Errors raised while lexing, parsing, planning, or evaluating Pig
/// Latin programs.
#[derive(Debug, Clone, PartialEq)]
pub enum PigError {
    /// Lexical error with line/column.
    Lex {
        line: usize,
        col: usize,
        message: String,
    },
    /// Parse error with line/column.
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
    /// Reference to an alias that is not bound (neither a prior
    /// statement nor an environment relation).
    UnknownAlias(String),
    /// Planning error (schema inference / name resolution).
    Plan(String),
    /// Unknown UDF name.
    UnknownUdf(String),
    /// A UDF failed.
    Udf { name: String, message: String },
    /// Runtime evaluation error.
    Eval(String),
    /// Data model error (field resolution, type mismatch, …).
    Nrel(NrelError),
}

impl fmt::Display for PigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PigError::Lex { line, col, message } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            PigError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            PigError::UnknownAlias(a) => write!(f, "unknown alias '{a}'"),
            PigError::Plan(m) => write!(f, "plan error: {m}"),
            PigError::UnknownUdf(n) => write!(f, "unknown UDF '{n}'"),
            PigError::Udf { name, message } => write!(f, "UDF '{name}' failed: {message}"),
            PigError::Eval(m) => write!(f, "evaluation error: {m}"),
            PigError::Nrel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PigError::Nrel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NrelError> for PigError {
    fn from(e: NrelError) -> Self {
        PigError::Nrel(e)
    }
}

/// Result alias for this crate.
pub type Result<T, E = PigError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_position() {
        let e = PigError::Parse {
            line: 3,
            col: 7,
            message: "expected BY".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected BY");
    }

    #[test]
    fn nrel_errors_convert() {
        let e: PigError = NrelError::TypeMismatch {
            expected: "int",
            found: "bag",
        }
        .into();
        assert!(e.to_string().contains("int"));
    }
}
