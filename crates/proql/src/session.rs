//! A ProQL session: a provenance graph (resident or paged), an
//! optional reachability index, and the parse → plan → execute loop.
//!
//! Shaped statements (`LIKE` predicates, `COUNT(…)`, `GROUP BY`,
//! `ORDER BY`, `LIMIT`) take the same paths as plain node-set queries:
//! both backends plan the shaping into the statement plan and apply it
//! through the shared `shape` module, so every entry point here —
//! `run`, `run_one`, `run_read`, `explain` — handles them uniformly
//! and `QueryOutput::Table` flows to callers like any other output.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lipstick_core::obs::{self, TraceCtx, Tracer};
use lipstick_core::query::ReachIndex;
use lipstick_core::store::GraphStore;
use lipstick_core::ProvGraph;
use lipstick_storage::PagedLog;

use crate::ast::Statement;
use crate::error::{ProqlError, Result};
use crate::exec::{self, Parallelism};
use crate::paged;
use crate::parser::{parse_script, parse_statement};
use crate::plan::StmtPlan;
use crate::planner::{fuse_zooms, FusedStatement, PagedPlanner, Planner};
use crate::result::QueryOutput;

/// How the session holds its graph.
enum Backend {
    /// Fully decoded, mutable graph.
    Resident(ProvGraph),
    /// Footer-indexed v2 log; records fault in per query. Boxed: the
    /// log (fault cache, postings, instruments) dwarfs the resident
    /// variant's inline size.
    Paged(Box<PagedLog>),
}

/// The session's handles into the process-wide metrics registry,
/// resolved once at construction.
struct Instruments {
    statements: Arc<obs::Counter>,
    statement_us: Arc<obs::Histogram>,
    index_builds: Arc<obs::Counter>,
    repair_us: Arc<obs::Histogram>,
}

impl Instruments {
    fn get() -> Instruments {
        let reg = obs::registry();
        Instruments {
            statements: reg.counter(
                "lipstick_proql_statements_total",
                "ProQL statements executed (all sessions)",
            ),
            statement_us: reg.histogram(
                "lipstick_proql_statement_us",
                "Per-statement execution latency in microseconds",
                obs::LATENCY_BUCKETS_US,
            ),
            index_builds: reg.counter(
                "lipstick_proql_index_builds_total",
                "Reach-index builds from scratch (repairs excluded)",
            ),
            repair_us: reg.histogram(
                "lipstick_proql_index_repair_us",
                "In-place reach-index repair latency in microseconds",
                obs::LATENCY_BUCKETS_US,
            ),
        }
    }
}

/// Query-processor state: the graph under interrogation plus the
/// optional §5.1 reachability closure (bidirectional: descendant and
/// ancestor bitsets). Mutating statements (`DELETE`, `ZOOM`) **repair
/// the closure in place** — deletion subtracts the dead cone, zooms
/// remap the affected region — so an index built once stays exact and
/// indexed plans keep serving across mutations; `DROP INDEX` is the
/// only way to lose it.
///
/// Sessions come in two flavours. [`Session::new`]/[`Session::load`]
/// hold a **resident** graph. [`Session::open`] keeps a v2 log
/// **paged**: queries read only the records they touch, and the first
/// mutating statement transparently *promotes* the session to resident
/// by decoding the full log.
pub struct Session {
    backend: Backend,
    reach: Option<ReachIndex>,
    /// Branch-parallelism policy for set-operation execution; see
    /// [`Session::set_parallelism`].
    parallel: Parallelism,
    /// From-scratch closure builds performed so far (repairs excluded)
    /// — lets tests pin down that promotion and incremental
    /// maintenance never trigger a silent second rebuild.
    index_builds: u64,
    /// Records decoded by paged backends this session has since
    /// promoted away — keeps [`Session::records_read`] monotonic across
    /// promotion instead of silently resetting to zero.
    carried_reads: usize,
    /// Registry handles (statement counts/latency, index builds,
    /// repair latency).
    instruments: Instruments,
}

impl Session {
    /// A session over an in-memory graph.
    pub fn new(graph: ProvGraph) -> Session {
        Session {
            backend: Backend::Resident(graph),
            reach: None,
            parallel: Parallelism::default_for_host(),
            index_builds: 0,
            carried_reads: 0,
            instruments: Instruments::get(),
        }
    }

    /// Fully load a provenance log written by
    /// `lipstick_storage::write_graph` (v1 or v2) — the Query
    /// Processor's original, decode-everything first step.
    pub fn load(path: impl AsRef<Path>) -> Result<Session> {
        let graph = lipstick_storage::load_graph(path.as_ref())
            .map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session::new(graph))
    }

    /// Open a provenance log lazily. A v2 log (written by
    /// `lipstick_storage::write_graph_v2`) becomes a paged session that
    /// answers `MATCH`/`WHY`/`DEPENDS`/walks without materialising the
    /// graph; a v1 log has no footer and falls back to a full load.
    pub fn open(path: impl AsRef<Path>) -> Result<Session> {
        let data = std::fs::read(path.as_ref()).map_err(|e| ProqlError::Storage(e.to_string()))?;
        // Sniff the version first so the v1 fallback decodes the bytes
        // already in hand instead of re-reading the file.
        if lipstick_storage::log_version(&data) == Some(1) {
            let graph = lipstick_storage::decode_graph(&data)
                .map_err(|e| ProqlError::Storage(e.to_string()))?;
            return Ok(Session::new(graph));
        }
        let log = PagedLog::from_bytes(data).map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session {
            backend: Backend::Paged(Box::new(log)),
            reach: None,
            parallel: Parallelism::default_for_host(),
            index_builds: 0,
            carried_reads: 0,
            instruments: Instruments::get(),
        })
    }

    /// Cap the worker threads used for independent `UNION`/`INTERSECT`
    /// branches (1 disables branch parallelism). The default is one
    /// thread per core, capped at 8; results are byte-identical at any
    /// setting — only wall-clock changes.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallel.threads = threads.max(1);
    }

    /// Full control over the branch-parallelism policy (thread count
    /// *and* engagement threshold) — benches and tests use it to force
    /// the parallel path on small graphs.
    pub fn set_parallelism_policy(&mut self, policy: Parallelism) {
        self.parallel = Parallelism {
            threads: policy.threads.max(1),
            ..policy
        };
    }

    pub(crate) fn parallelism(&self) -> Parallelism {
        self.parallel
    }

    /// How many times a reach index was built from scratch in this
    /// session (incremental repairs don't count).
    pub fn index_builds(&self) -> u64 {
        self.index_builds
    }

    /// Is the session still paged (no full graph materialised)?
    pub fn is_paged(&self) -> bool {
        matches!(self.backend, Backend::Paged(_))
    }

    /// Node records decoded by this session's paged backends — including
    /// any backend a promoting mutation has since replaced, so the
    /// figure is monotonic for the session's lifetime (it used to reset
    /// to zero on promotion). A session born resident reports 0.
    pub fn records_read(&self) -> usize {
        self.carried_reads
            + match &self.backend {
                Backend::Resident(_) => 0,
                Backend::Paged(log) => log.records_read(),
            }
    }

    /// The resident graph, when there is one (`None` while paged).
    pub fn resident_graph(&self) -> Option<&ProvGraph> {
        match &self.backend {
            Backend::Resident(g) => Some(g),
            Backend::Paged(_) => None,
        }
    }

    /// The resident graph.
    ///
    /// # Panics
    /// On a paged session — call [`Session::materialize`] first, or
    /// check [`Session::is_paged`].
    pub fn graph(&self) -> &ProvGraph {
        self.resident_graph()
            .expect("paged session has no resident graph; call materialize() first")
    }

    /// Decode the full log and switch to the resident backend. No-op if
    /// already resident. Returns the graph.
    pub fn materialize(&mut self) -> Result<&ProvGraph> {
        if let Backend::Paged(log) = &self.backend {
            let graph = log
                .decode_full()
                .map_err(|e| ProqlError::Storage(e.to_string()))?;
            // Dropping the log would silently zero `records_read`; bank
            // its figure first so the session's count stays monotonic.
            self.carried_reads += log.records_read();
            self.backend = Backend::Resident(graph);
        }
        Ok(self.graph())
    }

    pub(crate) fn graph_mut(&mut self) -> &mut ProvGraph {
        match &mut self.backend {
            Backend::Resident(g) => g,
            Backend::Paged(_) => unreachable!("mutating statements promote before executing"),
        }
    }

    /// The session's reachability closure, when one is built — public
    /// so property tests can compare it against a fresh
    /// [`ReachIndex::build`] after mutation sequences.
    pub fn reach_index(&self) -> Option<&ReachIndex> {
        self.reach.as_ref()
    }

    pub fn has_reach_index(&self) -> bool {
        self.reach.is_some()
    }

    pub(crate) fn set_index(&mut self, index: ReachIndex) {
        self.reach = Some(index);
        // Per-session count (tests pin exact values) plus the
        // process-wide registry series.
        self.index_builds += 1;
        self.instruments.index_builds.inc();
    }

    /// Drop the reachability closure (`DROP INDEX`).
    pub(crate) fn invalidate_index(&mut self) {
        self.reach = None;
    }

    /// Repair the reachability closure in place after a mutation.
    /// `changed` must list every node whose visibility or adjacency the
    /// mutation touched (the executor's mutation arms compute it). In
    /// debug builds the repaired index is checked bit-for-bit against a
    /// fresh build — the incremental path must never drift.
    pub(crate) fn repair_index(&mut self, changed: &[lipstick_core::NodeId]) {
        let Backend::Resident(graph) = &self.backend else {
            return;
        };
        if let Some(index) = self.reach.as_mut() {
            let start = Instant::now();
            index.repair(graph, changed);
            self.instruments
                .repair_us
                .observe(start.elapsed().as_micros() as u64);
            debug_assert!(
                index.matches_fresh_build(graph),
                "incremental reach-index repair diverged from a fresh build"
            );
        }
    }

    /// Does executing this statement require a resident, mutable graph?
    fn needs_resident(stmt: &Statement) -> bool {
        matches!(
            stmt,
            Statement::DeletePropagate(_)
                | Statement::ZoomOut(_)
                | Statement::ZoomIn(_)
                | Statement::BuildIndex
        )
    }

    /// Run a script: zero or more `;`-separated statements. Statements
    /// are planned one at a time against the current graph state (a
    /// `DELETE` changes what later statements see), with consecutive
    /// zooms fused first.
    pub fn run(&mut self, script: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_script(script)?;
        let fused = fuse_zooms(stmts);
        let mut outputs = Vec::with_capacity(fused.len());
        for fs in &fused {
            outputs.push(self.run_fused(fs)?);
        }
        Ok(outputs)
    }

    /// Run exactly one statement.
    pub fn run_one(&mut self, statement: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(statement)?;
        self.run_stmt(&stmt)
    }

    /// Run one already-parsed statement, mutating the session where the
    /// statement calls for it — the exclusive-access counterpart of
    /// [`Session::run_read_stmt`].
    pub fn run_stmt(&mut self, stmt: &Statement) -> Result<QueryOutput> {
        self.run_fused(&FusedStatement {
            stmt: stmt.clone(),
            fused_from: 1,
        })
    }

    fn run_fused(&mut self, fs: &FusedStatement) -> Result<QueryOutput> {
        if self.is_paged() && Session::needs_resident(&fs.stmt) {
            self.materialize()?;
        }
        let start = Instant::now();
        let out = match &self.backend {
            Backend::Resident(graph) => {
                let plan = Planner::new(graph, self.reach.as_ref()).plan_fused(fs)?;
                exec::execute(self, &plan)
            }
            Backend::Paged(log) => run_paged(log, &fs.stmt, self.parallel, TraceCtx::disabled()),
        };
        self.instruments.statements.inc();
        self.instruments
            .statement_us
            .observe(start.elapsed().as_micros() as u64);
        out
    }

    /// Run exactly one **read-only** statement through a shared
    /// reference — the execution path `lipstick-serve` fans out across
    /// a worker pool, with many `run_read` calls in flight against one
    /// session at once (the session is `Send + Sync`; wrap it in an
    /// `RwLock` and take the read side).
    ///
    /// Mutating statements (`DELETE PROPAGATE`, zooms, `BUILD INDEX`,
    /// `DROP INDEX`) fail with [`ProqlError::ReadOnly`]; route them
    /// through [`Session::run_one`] under exclusive access instead.
    /// Unlike the `&mut` paths, `run_read` never promotes a paged
    /// session: queries keep faulting in only the records they touch.
    pub fn run_read(&self, statement: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(statement)?;
        self.run_read_stmt(&stmt)
    }

    /// [`Session::run_read`] for an already parsed statement.
    pub fn run_read_stmt(&self, stmt: &Statement) -> Result<QueryOutput> {
        self.run_read_stmt_traced(stmt, None)
    }

    /// [`Session::run_read_stmt`], recording plan/execute/per-operator
    /// spans into `tracer` when one is supplied — how `lipstick-serve`
    /// captures a [`lipstick_core::obs::QueryTrace`] per statement for
    /// its slow-query log. With `None` this is exactly
    /// [`Session::run_read_stmt`].
    pub fn run_read_stmt_traced(
        &self,
        stmt: &Statement,
        tracer: Option<&Tracer>,
    ) -> Result<QueryOutput> {
        if !stmt.is_read_only() {
            return Err(ProqlError::ReadOnly(stmt_summary(stmt)));
        }
        let ctx = tracer.map_or(TraceCtx::disabled(), TraceCtx::root);
        let start = Instant::now();
        let out = match &self.backend {
            Backend::Resident(graph) => {
                let plan = {
                    let _span = ctx.span("plan");
                    Planner::new(graph, self.reach.as_ref()).plan(stmt)?
                };
                let span = ctx.span("execute");
                exec::execute_read(graph, self.reach_index(), &plan, self.parallel, span.ctx())
            }
            Backend::Paged(log) => run_paged(log, stmt, self.parallel, ctx),
        };
        self.instruments.statements.inc();
        self.instruments
            .statement_us
            .observe(start.elapsed().as_micros() as u64);
        out
    }

    /// Plan a statement without executing it, against whichever backend
    /// the session currently has.
    pub fn plan(&self, stmt: &Statement) -> Result<StmtPlan> {
        match &self.backend {
            Backend::Resident(graph) => Planner::new(graph, self.reach.as_ref()).plan(stmt),
            // Planning faults records too (token resolution), so it
            // needs the same corruption containment as execution.
            Backend::Paged(log) => {
                contain_corruption(|| PagedPlanner::new(log.as_ref()).plan(stmt))
            }
        }
    }

    /// The physical plan for a statement, as `EXPLAIN` would print it.
    /// On a paged session this includes the records-read figures the
    /// footer postings predict.
    pub fn explain(&self, statement: &str) -> Result<String> {
        let stmt = parse_statement(statement)?;
        Ok(self.plan(&stmt)?.to_string())
    }

    /// Per-component heap breakdown of everything the session holds:
    /// the backend store (resident graph or paged log) and the reach
    /// closure. Groups are `"graph"`, `"paged_log"`, and `"reach"`;
    /// component names come from each structure's
    /// [`lipstick_core::obs::HeapSize`] breakdown, so this report, the
    /// `STATS` memory section, and the `lipstick_*_heap_bytes` gauges
    /// all sum the same numbers.
    pub fn memory_report(&self) -> Vec<MemoryComponent> {
        use lipstick_core::obs::HeapSize;
        let mut out = Vec::new();
        match &self.backend {
            Backend::Resident(g) => {
                out.extend(g.heap_breakdown().into_iter().map(|(k, v)| ("graph", k, v)));
            }
            Backend::Paged(log) => {
                out.extend(
                    log.heap_breakdown()
                        .into_iter()
                        .map(|(k, v)| ("paged_log", k, v)),
                );
            }
        }
        if let Some(idx) = &self.reach {
            out.extend(
                idx.heap_breakdown()
                    .into_iter()
                    .map(|(k, v)| ("reach", k, v)),
            );
        }
        out
    }

    /// Total heap bytes held by the session (sum of
    /// [`Session::memory_report`]).
    pub fn heap_bytes(&self) -> usize {
        self.memory_report().iter().map(|(_, _, b)| *b).sum()
    }

    /// Statically analyze one statement against this session's schema
    /// **without executing it** — what `CHECK <stmt>` returns. Works on
    /// both backends; on a paged session only index-level facts (and
    /// the kind of an `EVAL` target) fault in, and the session is never
    /// promoted.
    pub fn check(&self, statement: &str) -> crate::analyze::Diagnostics {
        match &self.backend {
            Backend::Resident(graph) => crate::analyze::analyze(graph, statement),
            Backend::Paged(log) => {
                contain_corruption(|| Ok(crate::analyze::analyze(log.as_ref(), statement)))
                    .unwrap_or_else(|e| crate::analyze::Diagnostics {
                        source: statement.to_string(),
                        items: vec![crate::analyze::Diagnostic {
                            code: "E001",
                            severity: crate::analyze::Severity::Error,
                            span: crate::lexer::Span::new(0, statement.len()),
                            message: format!("analysis failed: {e}"),
                            suggestion: None,
                        }],
                    })
            }
        }
    }
}

/// One heap component of a session: `(group, component, bytes)` —
/// e.g. `("graph", "adjacency", 81920)`.
pub type MemoryComponent = (&'static str, &'static str, usize);

/// Render a memory report for humans (the shell's `\mem` command):
/// one line per component plus a total, largest first.
pub fn render_memory_report(components: &[MemoryComponent]) -> String {
    use lipstick_core::obs::format_bytes;
    let total: usize = components.iter().map(|(_, _, b)| *b).sum();
    let mut sorted: Vec<&MemoryComponent> = components.iter().collect();
    sorted.sort_by_key(|(_, _, b)| std::cmp::Reverse(*b));
    let mut out = format!("session heap: {} ({total} B)\n", format_bytes(total));
    for (group, name, bytes) in sorted {
        out.push_str(&format!(
            "  {group}.{name}: {} ({bytes} B)\n",
            format_bytes(*bytes)
        ));
    }
    out
}

/// Plan and execute one statement against a paged log. The footer only
/// validates record *offsets*; a record whose bytes are garbled is
/// first noticed when a query faults it in, deep inside infallible
/// GraphStore accessors. Contain that panic here so corrupt input
/// surfaces as an error, never an abort — the same contract every other
/// corruption path honours.
fn run_paged(
    log: &PagedLog,
    stmt: &Statement,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> Result<QueryOutput> {
    contain_corruption(|| {
        let plan = {
            let _span = ctx.span("plan");
            PagedPlanner::new(log).plan(stmt)?
        };
        let span = ctx.span("execute");
        paged::execute(log, &plan, par, span.ctx())
    })
}

/// Run a paged planning/execution step, containing corruption panics
/// (see [`run_paged`]) so they surface as errors, never an abort or a
/// dead server worker.
fn contain_corruption<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("paged execution panicked");
        Err(ProqlError::Storage(format!(
            "corrupt provenance log: {msg}"
        )))
    })
}

/// The leading keyword(s) of a statement, for error messages.
fn stmt_summary(stmt: &Statement) -> String {
    match stmt {
        Statement::DeletePropagate(r) => format!("DELETE {r} PROPAGATE"),
        Statement::ZoomOut(_) => "ZOOM OUT".into(),
        Statement::ZoomIn(_) => "ZOOM IN".into(),
        Statement::BuildIndex => "BUILD INDEX".into(),
        Statement::DropIndex => "DROP INDEX".into(),
        _ => format!("{stmt:?}"),
    }
}

// `lipstick-serve` shares one session across a worker pool behind an
// `RwLock`; a backend that regresses to single-thread-only interior
// mutability must not compile.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};
