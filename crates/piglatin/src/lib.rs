//! # lipstick-piglatin — the Pig Latin fragment
//!
//! A from-scratch implementation of the Pig Latin fragment used by the
//! Lipstick paper (§2.1): lexer, parser, logical plans with schema
//! inference, a UDF registry, and a bag-semantics evaluator instrumented
//! for fine-grained provenance via [`lipstick_core::Tracker`].
//!
//! Supported constructs: `FOREACH … GENERATE` (projection, aggregation,
//! black-box UDF calls, `FLATTEN`), `FILTER … BY`, `GROUP … BY` /
//! `GROUP … ALL`, `COGROUP`, `JOIN`, `UNION`, `DISTINCT`, `ORDER … BY`,
//! `LIMIT`, arithmetic/boolean/comparison expressions, field access by
//! name, by position (`$0`), and by join-qualified name (`Cars::Model`).
//!
//! A program executes against an [`eval::Env`] of named relations (the
//! workflow layer pre-binds module inputs and state there) and writes
//! each statement's result back into the environment:
//!
//! ```
//! use lipstick_piglatin::{parse, plan::compile, eval::{Env, execute}, udf::UdfRegistry};
//! use lipstick_nrel::{Schema, DataType, tuple};
//! use lipstick_core::graph::GraphTracker;
//!
//! let script = "Adults = FILTER People BY Age >= 18;";
//! let program = parse(script).unwrap();
//! let schema = Schema::named(&[("Name", DataType::Str), ("Age", DataType::Int)]);
//! let mut tracker = GraphTracker::new();
//! let mut env = Env::new();
//! env.bind_with_tokens(
//!     "People",
//!     schema.clone(),
//!     vec![tuple!["ada", 36i64], tuple!["bob", 7i64]],
//!     &mut tracker,
//! ).unwrap();
//! let udfs = UdfRegistry::new();
//! let compiled = compile(&program, &env.schemas(), &udfs).unwrap();
//! execute(&compiled, &mut env, &mut tracker, &udfs).unwrap();
//! assert_eq!(env.relation("Adults").unwrap().rows.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod token;
pub mod udf;

pub use ast::Program;
pub use error::{PigError, Result};
pub use parser::parse;
