//! # lipstick-bench — the evaluation harness
//!
//! Reusable drivers behind both the Criterion benches (`benches/`) and
//! the `experiments` binary, which prints the series of every figure in
//! the paper's evaluation (§5.4–5.6). See `EXPERIMENTS.md` at the
//! repository root for the recorded results and the paper-vs-measured
//! comparison.

pub mod drivers;

pub use drivers::*;
