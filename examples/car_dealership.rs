//! The paper's running example, end to end: execute the car-dealership
//! workflow, then answer the introduction's three analyst questions
//! with fine-grained provenance.
//!
//! ```sh
//! cargo run --example car_dealership
//! ```

use lipstick::core::query::{depends_on, subgraph, zoom_out};
use lipstick::core::{GraphTracker, NodeKind};
use lipstick::prelude::stats;
use lipstick::workflowgen::dealers::{self, DealersParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DealersParams {
        num_cars: 120,
        num_exec: 8,
        seed: 4,
    };
    let mut tracker = GraphTracker::new();
    let (_, _, outcome) = dealers::run(&params, &mut tracker)?;
    println!(
        "run finished after {} execution(s); purchase: {}",
        outcome.executions,
        outcome
            .purchased
            .as_ref()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "none".into())
    );

    let graph = tracker.finish();
    println!("provenance graph: {}", stats(&graph));

    // Q1 (§1): "Which cars affected the computation of this winning
    // bid?" — ancestors of the final output that are state tuples.
    let output = graph
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .last()
        .expect("some output exists");
    let sg = subgraph(&graph, output)?;
    let cars: Vec<String> = sg
        .nodes
        .iter()
        .filter_map(|id| match &graph.node(*id).kind {
            NodeKind::BaseTuple { token } if token.as_str().starts_with('C') => {
                Some(token.to_string())
            }
            _ => None,
        })
        .take(8)
        .collect();
    println!(
        "\nQ1: cars affecting the last output ({} ancestors total): {} …",
        sg.ancestor_count,
        cars.join(", ")
    );

    // Q2: "Was this output affected by the presence of car C1.0?" —
    // a dependency query via deletion propagation.
    if let Some((c10, _)) = graph
        .iter_visible()
        .find(|(_, n)| matches!(&n.kind, NodeKind::BaseTuple { token } if token.as_str() == "C1.0"))
    {
        let dep = depends_on(&graph, output, c10)?;
        println!("Q2: does the last output depend on car C1.0? {dep}");
    }

    // Q3: coarse vs fine: zoom out of every dealer and compare sizes.
    let before = stats(&graph);
    let mut coarse = graph.clone();
    zoom_out(
        &mut coarse,
        &["Mdealer1", "Mdealer2", "Mdealer3", "Mdealer4", "Magg"],
    )?;
    let after = stats(&coarse);
    println!(
        "\nQ3: ZoomOut(dealers, aggregator): {} → {} visible nodes",
        before.nodes, after.nodes
    );
    Ok(())
}
