//! Lexical tokens of the Pig Latin fragment.

use std::fmt;

/// Keywords are recognized case-insensitively (Pig accepts both `FILTER`
/// and `filter`); identifiers preserve their case.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals & identifiers
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    /// Positional field reference `$3`.
    Positional(usize),

    // keywords
    Filter,
    By,
    Foreach,
    Generate,
    Group,
    Cogroup,
    Join,
    Union,
    Distinct,
    Order,
    Limit,
    As,
    And,
    Or,
    Not,
    Is,
    Null,
    True,
    False,
    Flatten,
    All,
    Asc,
    Desc,

    // punctuation & operators
    Semi,
    Comma,
    LParen,
    RParen,
    Assign, // =
    Eq,     // ==
    Neq,    // !=
    Lt,
    Lte,
    Gt,
    Gte,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `::` name qualifier.
    DoubleColon,
    /// `.` nested-field dereference.
    Dot,
}

impl Tok {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word.to_ascii_uppercase().as_str() {
            "FILTER" => Tok::Filter,
            "BY" => Tok::By,
            "FOREACH" => Tok::Foreach,
            "GENERATE" => Tok::Generate,
            "GROUP" => Tok::Group,
            "COGROUP" => Tok::Cogroup,
            "JOIN" => Tok::Join,
            "UNION" => Tok::Union,
            "DISTINCT" => Tok::Distinct,
            "ORDER" => Tok::Order,
            "LIMIT" => Tok::Limit,
            "AS" => Tok::As,
            "AND" => Tok::And,
            "OR" => Tok::Or,
            "NOT" => Tok::Not,
            "IS" => Tok::Is,
            "NULL" => Tok::Null,
            "TRUE" => Tok::True,
            "FALSE" => Tok::False,
            "FLATTEN" => Tok::Flatten,
            "ALL" => Tok::All,
            "ASC" => Tok::Asc,
            "DESC" => Tok::Desc,
            _ => return None,
        })
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::IntLit(v) => write!(f, "{v}"),
            Tok::FloatLit(v) => write!(f, "{v}"),
            Tok::StrLit(s) => write!(f, "'{s}'"),
            Tok::Positional(i) => write!(f, "${i}"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Assign => write!(f, "="),
            Tok::Eq => write!(f, "=="),
            Tok::Neq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Lte => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Gte => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::DoubleColon => write!(f, "::"),
            Tok::Dot => write!(f, "."),
            kw => write!(f, "{}", format!("{kw:?}").to_ascii_uppercase()),
        }
    }
}

/// A token plus its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(Tok::keyword("foreach"), Some(Tok::Foreach));
        assert_eq!(Tok::keyword("FoReAcH"), Some(Tok::Foreach));
        assert_eq!(Tok::keyword("Inventory"), None);
    }

    #[test]
    fn display_round_trips_punct() {
        assert_eq!(Tok::Eq.to_string(), "==");
        assert_eq!(Tok::DoubleColon.to_string(), "::");
        assert_eq!(Tok::Positional(2).to_string(), "$2");
    }
}
