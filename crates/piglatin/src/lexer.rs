//! Hand-written lexer for the Pig Latin fragment.
//!
//! Supports `--` line comments and `/* … */` block comments, single-
//! quoted string literals with `\'`/`\\`/`\n`/`\t` escapes, integer and
//! float literals, positional references `$k`, and the operator set of
//! [`crate::token::Tok`].

use crate::error::{PigError, Result};
use crate::token::{Spanned, Tok};

/// Tokenize a full script.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> PigError {
        PigError::Lex {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                ';' => {
                    self.bump();
                    Tok::Semi
                }
                ',' => {
                    self.bump();
                    Tok::Comma
                }
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                '+' => {
                    self.bump();
                    Tok::Plus
                }
                '*' => {
                    self.bump();
                    Tok::Star
                }
                '/' => {
                    self.bump();
                    Tok::Slash
                }
                '%' => {
                    self.bump();
                    Tok::Percent
                }
                '.' => {
                    self.bump();
                    Tok::Dot
                }
                '-' => {
                    self.bump();
                    Tok::Minus
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Eq
                    } else {
                        Tok::Assign
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Neq
                    } else {
                        return Err(self.err("expected '=' after '!'"));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Lte
                    } else {
                        Tok::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Gte
                    } else {
                        Tok::Gt
                    }
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some(':') {
                        self.bump();
                        Tok::DoubleColon
                    } else {
                        return Err(self.err("expected '::'"));
                    }
                }
                '\'' => self.string()?,
                '$' => self.positional()?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_alphabetic() || c == '_' => self.word(),
                other => return Err(self.err(format!("unexpected character '{other}'"))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string(&mut self) -> Result<Tok> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('\'') => break,
                Some('\\') => match self.bump() {
                    Some('\'') => s.push('\''),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    other => {
                        return Err(self.err(format!(
                            "invalid escape '\\{}'",
                            other.map(String::from).unwrap_or_default()
                        )))
                    }
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Tok::StrLit(s))
    }

    fn positional(&mut self) -> Result<Tok> {
        self.bump(); // '$'
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(self.err("expected digits after '$'"));
        }
        digits
            .parse::<usize>()
            .map(Tok::Positional)
            .map_err(|_| self.err("positional index out of range"))
    }

    fn number(&mut self) -> Result<Tok> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // A '.' introduces a float only when followed by a digit — this
        // keeps `Bids.Price` lexing as ident-dot-ident.
        let mut is_float = false;
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            let mut look = self.pos + 1;
            if matches!(self.chars.get(look), Some('+') | Some('-')) {
                look += 1;
            }
            if self.chars.get(look).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.pos < look {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Tok::FloatLit)
                .map_err(|e| self.err(format!("bad float literal '{text}': {e}")))
        } else {
            text.parse::<i64>()
                .map(Tok::IntLit)
                .map_err(|e| self.err(format!("bad int literal '{text}': {e}")))
        }
    }

    fn word(&mut self) -> Tok {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        Tok::keyword(&text).unwrap_or(Tok::Ident(text))
    }
}

// Keep the src field used (error messages could cite the line text in a
// future improvement; for now it anchors the lifetime).
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lexer at {}:{} of {} chars",
            self.line,
            self.col,
            self.src.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_filter_statement() {
        assert_eq!(
            toks("B = FILTER A BY x >= 3;"),
            vec![
                Tok::Ident("B".into()),
                Tok::Assign,
                Tok::Filter,
                Tok::Ident("A".into()),
                Tok::By,
                Tok::Ident("x".into()),
                Tok::Gte,
                Tok::IntLit(3),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn dot_vs_float() {
        assert_eq!(
            toks("SUM(Bids.Price) 3.5"),
            vec![
                Tok::Ident("SUM".into()),
                Tok::LParen,
                Tok::Ident("Bids".into()),
                Tok::Dot,
                Tok::Ident("Price".into()),
                Tok::RParen,
                Tok::FloatLit(3.5),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("A = B; -- trailing\n/* block\nspanning */ C = D;").len(),
            8
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r"'it\'s' '\\' 'tab\there'"),
            vec![
                Tok::StrLit("it's".into()),
                Tok::StrLit("\\".into()),
                Tok::StrLit("tab\there".into()),
            ]
        );
    }

    #[test]
    fn positional_and_qualified() {
        assert_eq!(
            toks("$0 Cars::Model"),
            vec![
                Tok::Positional(0),
                Tok::Ident("Cars".into()),
                Tok::DoubleColon,
                Tok::Ident("Model".into()),
            ]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = lex("A = @;").unwrap_err();
        match err {
            PigError::Lex { line, col, .. } => {
                assert_eq!(line, 1);
                assert_eq!(col, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn negative_numbers_are_minus_then_literal() {
        assert_eq!(toks("-3"), vec![Tok::Minus, Tok::IntLit(3)]);
    }

    #[test]
    fn scientific_floats() {
        assert_eq!(toks("1e3"), vec![Tok::FloatLit(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Tok::FloatLit(0.25)]);
    }

    #[test]
    fn keywords_mixed_case() {
        assert_eq!(toks("foreach A generate x;").first(), Some(&Tok::Foreach));
    }
}
