//! The v2 node-table footer: per-record byte offsets, a visibility
//! bitmap, successor adjacency, and module/kind postings, terminated by
//! a fixed-width trailer.
//!
//! Layout appended after the v1-compatible body (all integers varint
//! unless noted):
//!
//! ```text
//! footer payload:
//!   node_count                 (must match the header's)
//!   first_record_offset        byte offset of record 0
//!   per node: record_len       (offsets reconstruct by prefix sum)
//!   visible bitmap             ceil(node_count / 8) bytes, bit i = visible
//!   per node: succ_count, succ id deltas   (successor adjacency, sorted)
//!   module_count
//!   per module: name, id_count, id deltas  (visible nodes owned by the
//!                                           module's invocations)
//!   kind_count
//!   per kind: name, id_count, id deltas    (visible nodes of that kind)
//! trailer (fixed width, little-endian):
//!   footer_len  u64            length of the payload above
//!   magic       "LPIX"         4 bytes
//!   version     u8             currently 1
//! ```
//!
//! Readers locate the footer from the end of the file: verify the
//! 13-byte trailer, then parse `footer_len` bytes before it. The
//! postings cover only *visible* nodes, so a postings-driven scan never
//! faults a tombstone's record. Successor lists are raw adjacency
//! (edges to invisible nodes included), matching the resident graph's
//! `succs()` — traversals filter by visibility, exactly as they do in
//! memory.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, BytesMut};
use lipstick_core::{NodeId, ProvGraph};

use crate::error::{Result, StorageError};
use crate::varint::{get_count, get_str, get_u32, get_u64, put_str, put_u64};

/// Magic bytes of the footer trailer.
pub const FOOTER_MAGIC: &[u8; 4] = b"LPIX";
/// Footer layout version.
pub const FOOTER_VERSION: u8 = 1;
/// Fixed trailer width: footer_len (8) + magic (4) + version (1).
pub const TRAILER_LEN: usize = 13;

/// Accumulates record offsets during encoding, then serializes the
/// footer and trailer.
pub struct FooterWriter {
    offsets: Vec<u64>,
    records_end: u64,
}

impl FooterWriter {
    pub fn new(node_count: usize) -> FooterWriter {
        FooterWriter {
            offsets: Vec::with_capacity(node_count + 1),
            records_end: 0,
        }
    }

    /// Record that the next node record starts at `offset`.
    pub fn record_starts_at(&mut self, offset: u64) {
        self.offsets.push(offset);
    }

    /// Record where the last node record ends (= start of the
    /// invocation table).
    pub fn records_end_at(&mut self, offset: u64) {
        self.records_end = offset;
    }

    /// Serialize the footer payload and trailer onto `buf`. Postings
    /// and successor adjacency come from the graph being encoded.
    pub fn finish(mut self, graph: &ProvGraph, buf: &mut BytesMut) {
        self.offsets.push(self.records_end);
        let n = graph.len();
        debug_assert_eq!(self.offsets.len(), n + 1);

        let start = buf.len();
        put_u64(buf, n as u64);
        put_u64(buf, self.offsets.first().copied().unwrap_or(0));
        for w in self.offsets.windows(2) {
            put_u64(buf, w[1] - w[0]);
        }

        // Visibility bitmap. Persisted graphs have no zoom-hidden nodes
        // (the encoder rejects active zooms), so visible = !deleted.
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for (id, node) in graph.iter() {
            if node.is_visible() {
                bitmap[id.index() / 8] |= 1 << (id.index() % 8);
            }
        }
        buf.put_slice(&bitmap);

        // Successor adjacency (sorted, delta-encoded).
        for (_, node) in graph.iter() {
            let mut succs: Vec<u32> = node.succs().iter().map(|s| s.0).collect();
            succs.sort_unstable();
            put_u64(buf, succs.len() as u64);
            let mut prev = 0u32;
            for s in succs {
                put_u64(buf, u64::from(s - prev));
                prev = s;
            }
        }

        // Module and kind postings over visible nodes.
        let mut by_module: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut by_kind: BTreeMap<&'static str, Vec<u32>> = BTreeMap::new();
        for (id, node) in graph.iter() {
            if !node.is_visible() {
                continue;
            }
            if let Some(inv) = node.role.invocation() {
                by_module
                    .entry(graph.invocation(inv).module.clone())
                    .or_default()
                    .push(id.0);
            }
            by_kind.entry(node.kind.name()).or_default().push(id.0);
        }
        put_postings(buf, by_module.iter().map(|(k, v)| (k.as_str(), v)));
        put_postings(buf, by_kind.iter().map(|(k, v)| (*k, v)));

        // Trailer.
        let footer_len = (buf.len() - start) as u64;
        buf.put_slice(&footer_len.to_le_bytes());
        buf.put_slice(FOOTER_MAGIC);
        buf.put_u8(FOOTER_VERSION);
    }
}

fn put_postings<'a>(
    buf: &mut BytesMut,
    groups: impl ExactSizeIterator<Item = (&'a str, &'a Vec<u32>)>,
) {
    put_u64(buf, groups.len() as u64);
    for (name, ids) in groups {
        put_str(buf, name);
        put_u64(buf, ids.len() as u64);
        let mut prev = 0u32;
        for &id in ids {
            put_u64(buf, u64::from(id - prev));
            prev = id;
        }
    }
}

/// The parsed v2 footer: everything a lazy reader keeps resident.
#[derive(Debug, Clone)]
pub struct LogIndex {
    /// `node_count + 1` entries: byte offset of each record, then the
    /// end of the record section (= start of the invocation table).
    offsets: Vec<u64>,
    /// Bit i set = node i visible (not tombstoned).
    visible: Vec<u8>,
    /// CSR successor adjacency.
    succ_starts: Vec<u32>,
    succ_ids: Vec<NodeId>,
    module_postings: BTreeMap<String, Vec<NodeId>>,
    kind_postings: BTreeMap<String, Vec<NodeId>>,
}

impl lipstick_core::obs::HeapSize for LogIndex {
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
        use lipstick_core::obs::vec_alloc_bytes;
        let entry = std::mem::size_of::<(String, Vec<NodeId>)>();
        let postings: usize = self
            .module_postings
            .iter()
            .chain(self.kind_postings.iter())
            .map(|(k, v)| entry + k.len() + vec_alloc_bytes(v))
            .sum();
        vec![
            ("record_offsets", vec_alloc_bytes(&self.offsets)),
            ("visibility_bitmap", vec_alloc_bytes(&self.visible)),
            (
                "successor_csr",
                vec_alloc_bytes(&self.succ_starts) + vec_alloc_bytes(&self.succ_ids),
            ),
            ("postings", postings),
        ]
    }
}

impl LogIndex {
    /// Parse the footer of a v2 log. `data` is the whole file;
    /// `node_count` comes from the header. Every structural claim the
    /// footer makes is validated against the file's bounds, so a
    /// truncated or garbled footer is an error, never a panic or an
    /// oversized allocation.
    pub fn parse(data: &[u8], node_count: usize) -> Result<LogIndex> {
        if data.len() < TRAILER_LEN {
            return Err(StorageError::Corrupt("missing footer trailer".into()));
        }
        let trailer = &data[data.len() - TRAILER_LEN..];
        if &trailer[8..12] != FOOTER_MAGIC {
            return Err(StorageError::Corrupt("bad footer magic".into()));
        }
        if trailer[12] != FOOTER_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported footer version {}",
                trailer[12]
            )));
        }
        let footer_len = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let body_len = (data.len() - TRAILER_LEN) as u64;
        if footer_len > body_len {
            return Err(StorageError::Corrupt(format!(
                "footer length {footer_len} exceeds file size"
            )));
        }
        let footer_start = (body_len - footer_len) as usize;
        let mut buf = &data[footer_start..data.len() - TRAILER_LEN];

        let declared = get_u64(&mut buf)? as usize;
        if declared != node_count {
            return Err(StorageError::Corrupt(format!(
                "footer node count {declared} does not match header {node_count}"
            )));
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut at = get_u64(&mut buf)?;
        offsets.push(at);
        for _ in 0..node_count {
            at = at
                .checked_add(get_u64(&mut buf)?)
                .ok_or_else(|| StorageError::Corrupt("record offset overflow".into()))?;
            offsets.push(at);
        }
        if *offsets.last().expect("non-empty") > footer_start as u64 {
            return Err(StorageError::Corrupt(
                "record offsets run past the footer".into(),
            ));
        }

        let bitmap_len = node_count.div_ceil(8);
        if buf.remaining() < bitmap_len {
            return Err(StorageError::Corrupt("truncated visibility bitmap".into()));
        }
        let mut visible = vec![0u8; bitmap_len];
        buf.copy_to_slice(&mut visible);

        let mut succ_starts = Vec::with_capacity(node_count + 1);
        let mut succ_ids = Vec::new();
        succ_starts.push(0u32);
        for _ in 0..node_count {
            let count = get_count(&mut buf)?;
            let mut prev = 0u32;
            for i in 0..count {
                let delta = get_u32(&mut buf)?;
                prev = if i == 0 {
                    delta
                } else {
                    check_id_add(prev, delta)?
                };
                if prev as usize >= node_count {
                    return Err(StorageError::Corrupt(format!(
                        "successor id {prev} beyond node count {node_count}"
                    )));
                }
                succ_ids.push(NodeId(prev));
            }
            succ_starts.push(succ_ids.len() as u32);
        }

        let module_postings = get_postings(&mut buf, node_count)?;
        let kind_postings = get_postings(&mut buf, node_count)?;
        if buf.has_remaining() {
            return Err(StorageError::Corrupt(
                "trailing garbage inside footer".into(),
            ));
        }
        Ok(LogIndex {
            offsets,
            visible,
            succ_starts,
            succ_ids,
            module_postings,
            kind_postings,
        })
    }

    /// Number of node records.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Byte range of record `id` within the file.
    pub fn record_range(&self, id: NodeId) -> std::ops::Range<usize> {
        self.offsets[id.index()] as usize..self.offsets[id.index() + 1] as usize
    }

    /// Byte offset where the invocation table starts.
    pub fn invocations_offset(&self) -> usize {
        *self.offsets.last().expect("non-empty") as usize
    }

    /// Is node `id` visible (not tombstoned)?
    pub fn is_visible(&self, id: NodeId) -> bool {
        self.visible[id.index() / 8] & (1 << (id.index() % 8)) != 0
    }

    /// Successors of node `id` (raw adjacency; may include invisible
    /// nodes).
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        let lo = self.succ_starts[id.index()] as usize;
        let hi = self.succ_starts[id.index() + 1] as usize;
        &self.succ_ids[lo..hi]
    }

    /// Visible nodes owned by the module's invocations (empty slice if
    /// the module is unknown).
    pub fn module_postings(&self, module: &str) -> &[NodeId] {
        self.module_postings.get(module).map_or(&[], Vec::as_slice)
    }

    /// Visible nodes of the given kind name.
    pub fn kind_postings(&self, kind: &str) -> &[NodeId] {
        self.kind_postings.get(kind).map_or(&[], Vec::as_slice)
    }

    /// Count of visible nodes, straight off the bitmap.
    pub fn visible_count(&self) -> usize {
        self.visible.iter().map(|b| b.count_ones() as usize).sum()
    }
}

fn check_id_add(prev: u32, delta: u32) -> Result<u32> {
    prev.checked_add(delta)
        .ok_or_else(|| StorageError::Corrupt("posting id overflow".into()))
}

fn get_postings(buf: &mut impl Buf, node_count: usize) -> Result<BTreeMap<String, Vec<NodeId>>> {
    let groups = get_count(buf)?;
    let mut out = BTreeMap::new();
    for _ in 0..groups {
        let name = get_str(buf)?;
        let count = get_count(buf)?;
        let mut ids = Vec::with_capacity(count);
        let mut prev = 0u32;
        for i in 0..count {
            let delta = get_u32(buf)?;
            prev = if i == 0 {
                delta
            } else {
                check_id_add(prev, delta)?
            };
            if prev as usize >= node_count {
                return Err(StorageError::Corrupt(format!(
                    "posting id {prev} beyond node count {node_count}"
                )));
            }
            ids.push(NodeId(prev));
        }
        out.insert(name, ids);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::encode_graph_v2;

    fn small_graph() -> ProvGraph {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        g.add_plus(&[t]);
        g
    }

    #[test]
    fn footer_round_trips_offsets_and_succs() {
        let g = small_graph();
        let bytes = encode_graph_v2(&g).unwrap();
        let index = LogIndex::parse(&bytes, g.len()).unwrap();
        assert_eq!(index.node_count(), g.len());
        for (id, node) in g.iter() {
            assert_eq!(index.is_visible(id), node.is_visible());
            let mut expect: Vec<NodeId> = node.succs().to_vec();
            expect.sort();
            assert_eq!(index.succs(id), expect.as_slice(), "succs of {id}");
            assert!(!index.record_range(id).is_empty());
        }
        assert_eq!(index.visible_count(), g.visible_count());
    }

    #[test]
    fn postings_cover_visible_kinds() {
        let g = small_graph();
        let bytes = encode_graph_v2(&g).unwrap();
        let index = LogIndex::parse(&bytes, g.len()).unwrap();
        assert_eq!(index.kind_postings("base_tuple").len(), 2);
        assert_eq!(index.kind_postings("times").len(), 1);
        assert_eq!(index.kind_postings("plus").len(), 1);
        assert!(index.kind_postings("delta").is_empty());
        assert!(index.module_postings("nope").is_empty());
    }

    #[test]
    fn truncated_footer_is_error_not_panic() {
        let g = small_graph();
        let bytes = encode_graph_v2(&g).unwrap();
        for cut in [0, 5, TRAILER_LEN - 1, bytes.len() - 4, bytes.len() - 1] {
            assert!(
                LogIndex::parse(&bytes[..cut], g.len()).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn garbled_trailer_magic_is_error() {
        let g = small_graph();
        let mut bytes = encode_graph_v2(&g).unwrap();
        let at = bytes.len() - 3; // inside "LPIX"
        bytes[at] ^= 0xff;
        assert!(LogIndex::parse(&bytes, g.len()).is_err());
    }

    #[test]
    fn oversized_footer_len_is_error() {
        let g = small_graph();
        let mut bytes = encode_graph_v2(&g).unwrap();
        let at = bytes.len() - TRAILER_LEN;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(LogIndex::parse(&bytes, g.len()).is_err());
    }
}
