//! # lipstick-core — provenance semirings, graphs, and graph transformations
//!
//! This crate is the paper's primary contribution ("Putting Lipstick on
//! Pig", VLDB 2011): a fine-grained provenance model for workflows whose
//! modules are specified in Pig Latin.
//!
//! It has three layers:
//!
//! 1. **Semiring provenance** ([`semiring`]): the N\[X\] provenance
//!    polynomials of Green/Karvounarakis/Tannen (PODS'07), extended with
//!    the δ duplicate-elimination operator and the ⊗ tensor construction
//!    for aggregate values (Amsterdamer/Deutch/Tannen, PODS'11). Generic
//!    [`semiring::Semiring`] implementations (counting, boolean, tropical,
//!    lineage, why-provenance) let provenance expressions be *evaluated*
//!    under different interpretations via the homomorphism property.
//! 2. **Provenance graphs** ([`graph`]): the paper's compact graph
//!    representation (§3). Nodes are p-nodes (provenance) or v-nodes
//!    (values); kinds cover workflow inputs, module invocations (`m`),
//!    module inputs (`i`), outputs (`o`), state (`s`), semiring operations
//!    (+, ·, δ), aggregation (op nodes and ⊗ tensors), constants, and
//!    black boxes. The [`graph::Tracker`] trait lets an evaluator be
//!    generic over whether provenance is captured at all — the "without
//!    provenance" arm of the paper's Figure 5 uses [`graph::NoTracker`].
//! 3. **Graph transformations** ([`query`]): ZoomIn / ZoomOut (§4.1),
//!    deletion propagation (§4.2), subgraph extraction and dependency
//!    queries (§4.3 / §5.1).

pub mod agg;
pub mod graph;
pub mod obs;
pub mod query;
pub mod semiring;
pub mod store;

pub use graph::{
    GraphTracker, InvocationId, NoTracker, Node, NodeId, NodeKind, ProvGraph, Role, Tracker,
};
pub use semiring::{Polynomial, ProvExpr, Semiring, Token};
pub use store::GraphStore;
