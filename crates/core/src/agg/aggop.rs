//! Aggregate operations of the Pig Latin fragment.

use std::fmt;

use lipstick_nrel::{NrelError, Value};

/// An aggregate operation (applied by `FOREACH … GENERATE OP(bag)` or by
/// the arithmetic constructs SUM/MAX/MIN over single-attribute relations,
/// §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggOp {
    /// Parse an operation name (case-insensitive, as in Pig).
    pub fn parse(name: &str) -> Option<AggOp> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggOp::Count),
            "SUM" => Some(AggOp::Sum),
            "MIN" => Some(AggOp::Min),
            "MAX" => Some(AggOp::Max),
            "AVG" => Some(AggOp::Avg),
            _ => None,
        }
    }

    /// The operation name as written in Pig Latin.
    pub fn name(&self) -> &'static str {
        match self {
            AggOp::Count => "COUNT",
            AggOp::Sum => "SUM",
            AggOp::Min => "MIN",
            AggOp::Max => "MAX",
            AggOp::Avg => "AVG",
        }
    }

    /// Apply the aggregate to the (already-extracted) input values.
    ///
    /// Pig semantics: nulls are ignored by all aggregates; COUNT counts
    /// non-null values; empty input yields `Count = 0` and null for the
    /// others.
    pub fn apply(&self, values: &[Value]) -> Result<Value, NrelError> {
        let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        if let AggOp::Count = self {
            return Ok(Value::Int(non_null.len() as i64));
        }
        if non_null.is_empty() {
            return Ok(Value::Null);
        }
        match self {
            AggOp::Count => unreachable!("handled above"),
            AggOp::Sum => {
                // Preserve integer-ness when every input is an int.
                if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
                    let mut acc: i64 = 0;
                    for v in &non_null {
                        acc += v.as_i64()?;
                    }
                    Ok(Value::Int(acc))
                } else {
                    let mut acc = 0.0;
                    for v in &non_null {
                        acc += v.as_f64()?;
                    }
                    Ok(Value::Float(acc))
                }
            }
            AggOp::Min => Ok((*non_null.iter().min().expect("non-empty checked")).clone()),
            AggOp::Max => Ok((*non_null.iter().max().expect("non-empty checked")).clone()),
            AggOp::Avg => {
                let mut acc = 0.0;
                for v in &non_null {
                    acc += v.as_f64()?;
                }
                Ok(Value::Float(acc / non_null.len() as f64))
            }
        }
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(AggOp::parse("count"), Some(AggOp::Count));
        assert_eq!(AggOp::parse("SuM"), Some(AggOp::Sum));
        assert_eq!(AggOp::parse("median"), None);
    }

    #[test]
    fn count_ignores_nulls() {
        let mut vals = ints(&[1, 2]);
        vals.push(Value::Null);
        assert_eq!(AggOp::Count.apply(&vals).unwrap(), Value::Int(2));
    }

    #[test]
    fn sum_preserves_int_type() {
        assert_eq!(AggOp::Sum.apply(&ints(&[1, 2, 3])).unwrap(), Value::Int(6));
        let mixed = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(AggOp::Sum.apply(&mixed).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn min_max_work_on_strings_too() {
        let vals = vec![Value::str("b"), Value::str("a")];
        assert_eq!(AggOp::Min.apply(&vals).unwrap(), Value::str("a"));
        assert_eq!(AggOp::Max.apply(&vals).unwrap(), Value::str("b"));
    }

    #[test]
    fn empty_input_yields_null_except_count() {
        assert_eq!(AggOp::Count.apply(&[]).unwrap(), Value::Int(0));
        assert_eq!(AggOp::Sum.apply(&[]).unwrap(), Value::Null);
        assert_eq!(AggOp::Min.apply(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn avg_divides_by_non_null_count() {
        let mut vals = ints(&[2, 4]);
        vals.push(Value::Null);
        assert_eq!(AggOp::Avg.apply(&vals).unwrap(), Value::Float(3.0));
    }
}
