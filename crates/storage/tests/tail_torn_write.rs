//! Torn-write/crash-recovery property test for the WAL tail segment:
//! for a random mutation script, truncating the on-disk tail at EVERY
//! byte offset must recover a clean prefix of the committed records —
//! the store after recovery equals the store after the first k commits
//! for some k — and must never panic or refuse to open.

use std::fs;
use std::path::{Path, PathBuf};

use lipstick_core::graph::GraphTracker;
use lipstick_core::query::plan_zoom_out;
use lipstick_core::store::{compute_deletion_store, GraphStore};
use lipstick_core::{NodeId, ProvGraph, Tracker};
use lipstick_storage::{write_graph_v2, AppendLog};
use proptest::prelude::*;

/// Deterministic xorshift so every proptest case is reproducible from
/// its seed (same idiom as the v2 footer corruption tests).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

const MODULES: [&str; 3] = ["Mload", "Mjoin", "Magg"];

/// Small multi-module workflow graph: a run of each module chained off
/// shared base tuples, so deletes propagate across modules and zooms
/// have real inputs/outputs.
fn workflow_graph(rng: &mut Rng, execution: u32) -> ProvGraph {
    let mut t = GraphTracker::new();
    let mut feed: Vec<_> = (0..2 + rng.below(3))
        .map(|i| t.base(&format!("t{execution}_{i}")))
        .collect();
    for (mi, module) in MODULES.iter().enumerate() {
        if rng.below(4) == 0 {
            continue; // this run skips the module
        }
        t.begin_invocation(module, execution);
        let tuple = if feed.len() > 1 {
            t.plus(&feed.clone())
        } else {
            feed[0]
        };
        let input = t.module_input(tuple);
        let mut x = input;
        for _ in 0..rng.below(2 + mi) {
            x = t.times(&[x]);
        }
        let out = t.module_output(x, &[]);
        t.end_invocation();
        feed.push(out);
    }
    t.plus(&feed.clone());
    t.finish()
}

/// Visible labelled nodes + visible edges — the cross-backend
/// signature the recovery check compares.
type StoreSignature = (Vec<(u32, String)>, Vec<(u32, u32)>);

fn store_signature<S: GraphStore + ?Sized>(s: &S) -> StoreSignature {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for i in 0..s.node_count() {
        let id = NodeId(i as u32);
        if !s.is_visible(id) {
            continue;
        }
        nodes.push((id.0, s.kind_of(id).label()));
        for t in s.succs_of(id) {
            if s.is_visible(t) {
                edges.push((id.0, t.0));
            }
        }
    }
    edges.sort_unstable();
    (nodes, edges)
}

/// Commit one random mutation; returns false if the roll produced a
/// no-op (nothing visible to delete, no module to zoom, …).
fn random_mutation(log: &mut AppendLog, rng: &mut Rng, execution: &mut u32) -> bool {
    match rng.below(5) {
        0 | 1 => {
            *execution += 1;
            let fragment = workflow_graph(rng, *execution);
            log.commit_fragment(&fragment).unwrap();
            true
        }
        2 => {
            let visible: Vec<NodeId> = (0..log.node_count())
                .map(|i| NodeId(i as u32))
                .filter(|&id| log.is_visible(id))
                .collect();
            if visible.is_empty() {
                return false;
            }
            let root = visible[rng.below(visible.len())];
            let cone = compute_deletion_store(&*log, root).unwrap();
            log.commit_tombstones(&cone).unwrap();
            true
        }
        3 => {
            let zoomed: Vec<String> = log
                .zoomed_out_modules()
                .into_iter()
                .map(String::from)
                .collect();
            let candidates: Vec<&str> = MODULES
                .iter()
                .copied()
                .filter(|m| !zoomed.iter().any(|z| z == m))
                .collect();
            if candidates.is_empty() {
                return false;
            }
            let module = candidates[rng.below(candidates.len())];
            // Planning fails if the module never ran (UnknownModule);
            // that roll is a no-op.
            match plan_zoom_out(&*log, &[module], &zoomed, log.stash_count()) {
                Ok(plans) => {
                    log.commit_zoom_out(plans).unwrap();
                    true
                }
                Err(_) => false,
            }
        }
        _ => {
            let zoomed: Vec<String> = log
                .zoomed_out_modules()
                .into_iter()
                .map(String::from)
                .collect();
            if zoomed.is_empty() {
                return false;
            }
            let module = zoomed[rng.below(zoomed.len())].clone();
            log.commit_zoom_in(&[module]).unwrap();
            true
        }
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lipstick-tail-torn-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tail_path_of(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_owned();
    os.push(".tail");
    PathBuf::from(os)
}

proptest! {
    #[test]
    fn every_byte_truncation_recovers_a_record_prefix(seed: u64) {
        let mut rng = Rng(seed);
        let dir = temp_dir();
        let base_path = dir.join(format!("graph-{seed:016x}.lpstk"));
        let mut execution = 0u32;
        write_graph_v2(&workflow_graph(&mut rng, execution), &base_path).unwrap();

        // Run a random mutation script, recording the visible-graph
        // signature after every committed record.
        let mut log = AppendLog::open(&base_path).unwrap();
        let mut sigs = vec![store_signature(&log)];
        let mut committed = 0usize;
        let steps = 3 + rng.below(3);
        for _ in 0..steps {
            if random_mutation(&mut log, &mut rng, &mut execution) {
                committed += 1;
                sigs.push(store_signature(&log));
            }
        }
        prop_assert_eq!(log.tail_records(), committed);
        drop(log);

        let tail_bytes = fs::read(tail_path_of(&base_path)).unwrap();

        // Crash-simulate at every byte offset: copy base + truncated
        // tail into a scratch slot, recover, and check the result is
        // exactly the state after some prefix of the commits.
        let cut_base = dir.join(format!("cut-{seed:016x}.lpstk"));
        let cut_tail = tail_path_of(&cut_base);
        fs::copy(&base_path, &cut_base).unwrap();
        let mut prev_records = 0usize;
        for cut in 0..=tail_bytes.len() {
            fs::write(&cut_tail, &tail_bytes[..cut]).unwrap();
            let recovered = AppendLog::open(&cut_base).unwrap();
            let k = recovered.tail_records();
            prop_assert!(k <= committed, "recovered {} of {} records", k, committed);
            prop_assert!(k >= prev_records, "longer prefix lost records");
            prop_assert_eq!(
                &store_signature(&recovered),
                &sigs[k],
                "cut at byte {} recovered {} records but a different graph",
                cut,
                k
            );
            prev_records = k;
        }
        prop_assert_eq!(prev_records, committed, "full tail must recover everything");

        // Recovery truncates the torn suffix in place: appending after
        // a mid-file crash must produce a valid tail again.
        let mid = tail_bytes.len() / 2;
        fs::write(&cut_tail, &tail_bytes[..mid]).unwrap();
        let mut recovered = AppendLog::open(&cut_base).unwrap();
        let k = recovered.tail_records();
        execution += 1;
        recovered.commit_fragment(&workflow_graph(&mut rng, execution)).unwrap();
        let resumed_sig = store_signature(&recovered);
        drop(recovered);
        let reopened = AppendLog::open(&cut_base).unwrap();
        prop_assert_eq!(reopened.tail_records(), k + 1);
        prop_assert_eq!(&store_signature(&reopened), &resumed_sig);

        fs::remove_file(&base_path).ok();
        fs::remove_file(tail_path_of(&base_path)).ok();
        fs::remove_file(&cut_base).ok();
        fs::remove_file(&cut_tail).ok();
    }
}
