//! The cost-aware planner: typed AST → physical plan.
//!
//! Three decisions are made here rather than in the executor:
//!
//! 1. **Scan strategy for `MATCH`.** A `module = '…'` equality conjunct
//!    lets the scan be driven from the graph's invocation table instead
//!    of sweeping every visible node; the planner estimates both costs
//!    from graph statistics and picks the cheaper. Predicates always
//!    ride inside the chosen scan (pushdown), never as a post-filter.
//! 2. **Traversal strategy for walks and `DEPENDS`.** With a
//!    [`ReachIndex`](lipstick_core::query::ReachIndex) present,
//!    unbounded walks in *either* direction become closure lookups (the
//!    index is bidirectional, so `ANCESTORS OF` costs the same as
//!    `DESCENDANTS OF` — and the estimate is the exact cone size read
//!    off the index), `WHY` plans carry the ancestor-cone bound of the
//!    extraction they are about to run, and dependency tests get an
//!    O(1) unreachability prefilter before falling back to deletion
//!    propagation.
//! 3. **Zoom fusion.** Consecutive `ZOOM OUT` (or `ZOOM IN TO`)
//!    statements fuse into one atomic multi-module operation, so a
//!    script that zooms module-by-module pays one graph sweep instead
//!    of one per statement.

use lipstick_core::query::ReachIndex;
use lipstick_core::store::GraphStore;
use lipstick_core::{NodeId, NodeKind, ProvGraph};

use crate::ast::{NodeClass, NodeRef, SetExpr, SetTerm, Statement, WalkDir};
use crate::error::{ProqlError, Result};
use crate::plan::{DependsStrategy, PostingsKey, ScanStrategy, SetPlan, StmtPlan, WalkStrategy};

/// `EXPLAIN ANALYZE` executes its inner statement, so a mutating inner
/// must be rejected at plan time — identically by both planners, so the
/// resident, paged, and served engines return the same error text.
fn reject_mutating_analyze(inner: &Statement) -> Result<()> {
    if inner.is_read_only() {
        Ok(())
    } else {
        Err(ProqlError::ReadOnly(format!("EXPLAIN ANALYZE {inner}")))
    }
}

/// Plans statements against a graph snapshot.
pub struct Planner<'a> {
    graph: &'a ProvGraph,
    reach: Option<&'a ReachIndex>,
    /// Visible node count, the full-scan cost unit (computed once).
    visible: usize,
}

impl<'a> Planner<'a> {
    pub fn new(graph: &'a ProvGraph, reach: Option<&'a ReachIndex>) -> Planner<'a> {
        Planner {
            graph,
            reach,
            visible: graph.visible_count(),
        }
    }

    /// Resolve a node reference against the graph.
    pub fn resolve(&self, r: &NodeRef) -> Result<NodeId> {
        match r {
            NodeRef::Id(n) => {
                let id = NodeId(*n);
                if (*n as usize) < self.graph.len() && self.graph.node(id).is_visible() {
                    Ok(id)
                } else {
                    Err(ProqlError::UnknownNode(r.to_string()))
                }
            }
            NodeRef::Token(t) => self
                .graph
                .iter_visible()
                .find(|(_, n)| match &n.kind {
                    NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                        token.as_str() == t
                    }
                    _ => false,
                })
                .map(|(id, _)| id)
                .ok_or_else(|| ProqlError::UnknownNode(r.to_string())),
        }
    }

    pub fn plan(&self, stmt: &Statement) -> Result<StmtPlan> {
        Ok(match stmt {
            Statement::Query(q) => {
                let mut plan = self.plan_set(&q.expr)?;
                if let Some(n) = q.shaping.pushdown_limit() {
                    plan.push_limit(n);
                }
                StmtPlan::Set {
                    plan,
                    shaping: q.shaping.clone(),
                }
            }
            Statement::Why(r) => {
                let n = self.resolve(r)?;
                StmtPlan::Why {
                    n,
                    est_cone: self.reach.map(|idx| idx.ancestor_count(n)),
                }
            }
            Statement::Depends(n, n_prime) => {
                let strategy = if self.reach.is_some() {
                    DependsStrategy::ReachPrefilter
                } else {
                    DependsStrategy::Propagation
                };
                StmtPlan::Depends {
                    n: self.resolve(n)?,
                    n_prime: self.resolve(n_prime)?,
                    strategy,
                }
            }
            Statement::DeletePropagate(r) => StmtPlan::Delete(self.resolve(r)?),
            Statement::ZoomOut(modules) => StmtPlan::ZoomOut {
                modules: modules.clone(),
                fused_from: 1,
            },
            Statement::ZoomIn(modules) => StmtPlan::ZoomIn {
                modules: modules.clone(),
                fused_from: 1,
            },
            Statement::Eval(r, s) => StmtPlan::Eval(self.resolve(r)?, *s),
            Statement::BuildIndex => StmtPlan::BuildIndex,
            Statement::DropIndex => StmtPlan::DropIndex,
            Statement::Compact => StmtPlan::Compact,
            Statement::Stats => StmtPlan::Stats,
            Statement::Explain(inner) => StmtPlan::Explain(Box::new(self.plan(inner)?)),
            Statement::ExplainAnalyze(inner) => {
                reject_mutating_analyze(inner)?;
                StmtPlan::ExplainAnalyze(Box::new(self.plan(inner)?))
            }
            // The analyzed source passes through untouched: resolving
            // or planning it here would leak backend-specific work
            // into CHECK, and would fail on ill-formed input instead
            // of diagnosing it.
            Statement::Check { source } => StmtPlan::Check {
                source: source.clone(),
            },
            Statement::ExplainLint { source } => StmtPlan::ExplainLint {
                source: source.clone(),
            },
        })
    }

    fn plan_set(&self, e: &SetExpr) -> Result<SetPlan> {
        Ok(match e {
            SetExpr::Term(t) => self.plan_term(t)?,
            SetExpr::Union(a, b) => {
                SetPlan::Union(Box::new(self.plan_set(a)?), Box::new(self.plan_set(b)?))
            }
            SetExpr::Intersect(a, b) => {
                SetPlan::Intersect(Box::new(self.plan_set(a)?), Box::new(self.plan_set(b)?))
            }
        })
    }

    fn plan_term(&self, t: &SetTerm) -> Result<SetPlan> {
        Ok(match t {
            SetTerm::Subgraph(r) => SetPlan::Subgraph {
                root: self.resolve(r)?,
            },
            SetTerm::Walk {
                dir,
                root,
                depth,
                filter,
            } => {
                let root = self.resolve(root)?;
                // The closure stores full-depth cones in both
                // directions; only bounded walks take the BFS (the
                // closure holds no depth information).
                let strategy = match (self.reach, depth) {
                    (Some(index), None) => WalkStrategy::ReachIndex {
                        est_visited: match dir {
                            WalkDir::Descendants => index.descendant_count(root),
                            WalkDir::Ancestors => index.ancestor_count(root),
                        },
                    },
                    _ => WalkStrategy::Bfs {
                        est_visited: self.visible,
                    },
                };
                SetPlan::Walk {
                    root,
                    dir: *dir,
                    depth: *depth,
                    filter: filter.clone(),
                    strategy,
                }
            }
            SetTerm::Match { class, filter } => {
                let strategy = self.scan_strategy(*class, filter.required_module());
                SetPlan::Scan {
                    class: *class,
                    filter: filter.clone(),
                    strategy,
                    limit: None,
                }
            }
            SetTerm::Paren(inner) => self.plan_set(inner)?,
        })
    }

    /// Choose full scan vs invocation-table-driven module scan.
    fn scan_strategy(&self, class: NodeClass, module: Option<&str>) -> ScanStrategy {
        let full = ScanStrategy::FullScan {
            est_visited: self.visible,
        };
        let Some(module) = module else { return full };
        let module_invs = self.graph.invocations_of(module).len();
        let total_invs = self.graph.invocations().len().max(1);
        let est_visited = if class == NodeClass::Invocation {
            // m-nodes come straight off the invocation table.
            module_invs
        } else {
            // Assume invocations own similar node counts: this module's
            // share of the visible graph.
            (self.visible * module_invs).div_ceil(total_invs)
        };
        if est_visited < self.visible {
            ScanStrategy::ModuleScan {
                module: module.to_string(),
                invocations: module_invs,
                est_visited,
            }
        } else {
            full
        }
    }
}

/// A source statement plus how many source statements fused into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedStatement {
    pub stmt: Statement,
    pub fused_from: usize,
}

/// Fuse runs of consecutive `ZOOM OUT` statements (and of explicit
/// `ZOOM IN TO` statements) into single multi-module statements, so a
/// script that zooms module-by-module pays one atomic zoom instead of
/// one graph pass per statement. Runs on the AST, before planning:
/// later statements must be planned against the graph state their
/// predecessors produce, so per-statement planning happens lazily in
/// the session loop.
pub fn fuse_zooms(stmts: Vec<Statement>) -> Vec<FusedStatement> {
    let mut out: Vec<FusedStatement> = Vec::new();
    for stmt in stmts {
        match (&stmt, out.last_mut()) {
            (
                Statement::ZoomOut(next),
                Some(FusedStatement {
                    stmt: Statement::ZoomOut(acc),
                    fused_from,
                }),
            ) => {
                acc.extend(next.iter().cloned());
                *fused_from += 1;
            }
            (
                Statement::ZoomIn(Some(next)),
                Some(FusedStatement {
                    stmt: Statement::ZoomIn(Some(acc)),
                    fused_from,
                }),
            ) => {
                acc.extend(next.iter().cloned());
                *fused_from += 1;
            }
            _ => out.push(FusedStatement {
                stmt,
                fused_from: 1,
            }),
        }
    }
    out
}

impl Planner<'_> {
    /// Plan a fused statement, carrying the fusion count into zoom
    /// plans so `EXPLAIN` can show it.
    pub fn plan_fused(&self, fs: &FusedStatement) -> Result<StmtPlan> {
        let plan = self.plan(&fs.stmt)?;
        Ok(match plan {
            StmtPlan::ZoomOut { modules, .. } => StmtPlan::ZoomOut {
                modules,
                fused_from: fs.fused_from,
            },
            StmtPlan::ZoomIn { modules, .. } => StmtPlan::ZoomIn {
                modules,
                fused_from: fs.fused_from,
            },
            other => other,
        })
    }
}

/// Plans statements against a paged log (or any [`GraphStore`]) without
/// decoding records the query does not need. Strategy choices favour
/// footer postings lists: a `module = '…'` or `kind = '…'` conjunct (or
/// a single-kind node class) turns the scan into a postings read, whose
/// size — known from the index before any record is touched — is what
/// `EXPLAIN` reports as records read.
pub struct PagedPlanner<'a, S: GraphStore> {
    store: &'a S,
    total_records: usize,
}

impl<'a, S: GraphStore> PagedPlanner<'a, S> {
    pub fn new(store: &'a S) -> PagedPlanner<'a, S> {
        PagedPlanner {
            store,
            total_records: store.node_count(),
        }
    }

    /// Resolve a node reference. Token lookups go through the
    /// base-tuple and workflow-input kind postings, faulting only those
    /// records instead of sweeping the log.
    pub fn resolve(&self, r: &NodeRef) -> Result<NodeId> {
        match r {
            NodeRef::Id(n) => {
                let id = NodeId(*n);
                if (*n as usize) < self.store.node_count() && self.store.is_visible(id) {
                    Ok(id)
                } else {
                    Err(ProqlError::UnknownNode(r.to_string()))
                }
            }
            NodeRef::Token(t) => {
                // Merge both token-bearing kinds and test in ascending
                // id order, so a token present on several nodes
                // resolves to the same node the resident planner's
                // id-order sweep picks.
                let mut candidates: Vec<NodeId> = ["base_tuple", "workflow_input"]
                    .into_iter()
                    .flat_map(|kind| {
                        self.store
                            .kind_postings(kind)
                            .unwrap_or_else(|| self.all_visible())
                    })
                    .collect();
                candidates.sort();
                candidates.dedup();
                candidates
                    .into_iter()
                    .find(|id| match self.store.kind_of(*id) {
                        NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                            token.as_str() == t
                        }
                        _ => false,
                    })
                    .ok_or_else(|| ProqlError::UnknownNode(r.to_string()))
            }
        }
    }

    fn all_visible(&self) -> Vec<NodeId> {
        (0..self.store.node_count() as u32)
            .map(NodeId)
            .filter(|id| self.store.is_visible(*id))
            .collect()
    }

    pub fn plan(&self, stmt: &Statement) -> Result<StmtPlan> {
        Ok(match stmt {
            Statement::Query(q) => {
                let mut plan = self.plan_set(&q.expr)?;
                if let Some(n) = q.shaping.pushdown_limit() {
                    plan.push_limit(n);
                }
                StmtPlan::Set {
                    plan,
                    shaping: q.shaping.clone(),
                }
            }
            Statement::Why(r) => StmtPlan::Why {
                n: self.resolve(r)?,
                est_cone: None,
            },
            Statement::Depends(n, n_prime) => StmtPlan::Depends {
                n: self.resolve(n)?,
                n_prime: self.resolve(n_prime)?,
                strategy: DependsStrategy::PagedPropagation,
            },
            Statement::DeletePropagate(r) => StmtPlan::Delete(self.resolve(r)?),
            Statement::ZoomOut(modules) => StmtPlan::ZoomOut {
                modules: modules.clone(),
                fused_from: 1,
            },
            Statement::ZoomIn(modules) => StmtPlan::ZoomIn {
                modules: modules.clone(),
                fused_from: 1,
            },
            Statement::Eval(r, s) => StmtPlan::Eval(self.resolve(r)?, *s),
            Statement::BuildIndex => StmtPlan::BuildIndex,
            Statement::DropIndex => StmtPlan::DropIndex,
            Statement::Compact => StmtPlan::Compact,
            Statement::Stats => StmtPlan::Stats,
            Statement::Explain(inner) => StmtPlan::Explain(Box::new(self.plan(inner)?)),
            Statement::ExplainAnalyze(inner) => {
                reject_mutating_analyze(inner)?;
                StmtPlan::ExplainAnalyze(Box::new(self.plan(inner)?))
            }
            // The analyzed source passes through untouched: resolving
            // or planning it here would leak backend-specific work
            // into CHECK, and would fail on ill-formed input instead
            // of diagnosing it.
            Statement::Check { source } => StmtPlan::Check {
                source: source.clone(),
            },
            Statement::ExplainLint { source } => StmtPlan::ExplainLint {
                source: source.clone(),
            },
        })
    }

    /// Plan a fused statement, carrying the fusion count into zoom
    /// plans so `EXPLAIN` can show it — the paged/append mirror of
    /// [`Planner::plan_fused`].
    pub fn plan_fused(&self, fs: &FusedStatement) -> Result<StmtPlan> {
        let plan = self.plan(&fs.stmt)?;
        Ok(match plan {
            StmtPlan::ZoomOut { modules, .. } => StmtPlan::ZoomOut {
                modules,
                fused_from: fs.fused_from,
            },
            StmtPlan::ZoomIn { modules, .. } => StmtPlan::ZoomIn {
                modules,
                fused_from: fs.fused_from,
            },
            other => other,
        })
    }

    fn plan_set(&self, e: &SetExpr) -> Result<SetPlan> {
        Ok(match e {
            SetExpr::Term(t) => self.plan_term(t)?,
            SetExpr::Union(a, b) => {
                SetPlan::Union(Box::new(self.plan_set(a)?), Box::new(self.plan_set(b)?))
            }
            SetExpr::Intersect(a, b) => {
                SetPlan::Intersect(Box::new(self.plan_set(a)?), Box::new(self.plan_set(b)?))
            }
        })
    }

    fn plan_term(&self, t: &SetTerm) -> Result<SetPlan> {
        Ok(match t {
            SetTerm::Subgraph(r) => SetPlan::Subgraph {
                root: self.resolve(r)?,
            },
            SetTerm::Walk {
                dir,
                root,
                depth,
                filter,
            } => SetPlan::Walk {
                root: self.resolve(root)?,
                dir: *dir,
                depth: *depth,
                filter: filter.clone(),
                strategy: WalkStrategy::PagedBfs {
                    total_records: self.total_records,
                },
            },
            SetTerm::Match { class, filter } => SetPlan::Scan {
                class: *class,
                filter: filter.clone(),
                strategy: self.scan_strategy(*class, filter),
                limit: None,
            },
            SetTerm::Paren(inner) => self.plan_set(inner)?,
        })
    }

    /// Pick the smallest applicable postings list; fall back to a
    /// streaming full-record scan. Beyond the module/kind equality
    /// postings, a token-demanding predicate (`token LIKE 'C%'`)
    /// narrows to the union of the two token-bearing kind postings,
    /// and `module LIKE '…'` resolves the pattern against the
    /// resident invocation table and unions the matching modules'
    /// postings.
    fn scan_strategy(&self, class: NodeClass, filter: &crate::ast::Predicate) -> ScanStrategy {
        let mut best: Option<(PostingsKey, usize)> = None;
        let mut consider = |key: PostingsKey, len: usize| {
            if best.as_ref().is_none_or(|(_, b)| len < *b) {
                best = Some((key, len));
            }
        };
        if let Some(m) = filter.required_module() {
            if let Some(ids) = self.store.module_postings(m) {
                consider(PostingsKey::Module(m.to_string()), ids.len());
            }
        }
        let kind_key = filter.required_kind().or(class.single_kind_name());
        if let Some(k) = kind_key {
            if let Some(ids) = self.store.kind_postings(k) {
                consider(PostingsKey::Kind(k.to_string()), ids.len());
            }
        }
        if filter.requires_token() {
            if let (Some(base), Some(inputs)) = (
                self.store.kind_postings("base_tuple"),
                self.store.kind_postings("workflow_input"),
            ) {
                // Disjoint kinds: the union's size is the sum.
                consider(PostingsKey::TokenKinds, base.len() + inputs.len());
            }
        }
        if let Some(pattern) = filter.module_like_pattern() {
            let mut modules: Vec<String> = self
                .store
                .invocations()
                .iter()
                .filter(|info| crate::ast::like_match(pattern, &info.module))
                .map(|info| info.module.clone())
                .collect();
            modules.sort();
            modules.dedup();
            let lens: Option<usize> = modules
                .iter()
                .map(|m| self.store.module_postings(m).map(|ids| ids.len()))
                .sum();
            if let Some(len) = lens {
                consider(
                    PostingsKey::ModuleLike {
                        pattern: pattern.to_string(),
                        modules,
                    },
                    len,
                );
            }
        }
        match best {
            // The per-list sums above are cheap *comparison* costs; the
            // number the plan reports ("reads X of Y records") is
            // recomputed from the chosen key as the deduplicated union
            // the executor will actually materialize, so the estimate
            // and `EXPLAIN ANALYZE` actuals are comparable.
            Some((key, _)) => {
                let postings = self.chosen_postings_len(&key);
                ScanStrategy::PostingsScan {
                    key,
                    postings,
                    total_records: self.total_records,
                }
            }
            None => ScanStrategy::PagedFullScan {
                total_records: self.total_records,
            },
        }
    }

    /// Exactly how many candidate records the executor faults for a
    /// chosen postings key — mirrors the union + dedup in
    /// `crate::paged::run_set`.
    fn chosen_postings_len(&self, key: &PostingsKey) -> usize {
        let ids = match key {
            PostingsKey::Module(m) => self.store.module_postings(m),
            PostingsKey::Kind(k) => self.store.kind_postings(k),
            PostingsKey::TokenKinds => {
                let mut ids = self.store.kind_postings("base_tuple").unwrap_or_default();
                ids.extend(
                    self.store
                        .kind_postings("workflow_input")
                        .unwrap_or_default(),
                );
                ids.sort_unstable();
                ids.dedup();
                Some(ids)
            }
            PostingsKey::ModuleLike { modules, .. } => {
                let mut ids: Vec<NodeId> = modules
                    .iter()
                    .flat_map(|m| self.store.module_postings(m).unwrap_or_default())
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                Some(ids)
            }
        };
        ids.map_or(0, |ids| ids.len())
    }
}
