//! The [`Tracker`] abstraction: provenance capture as a pluggable effect.
//!
//! The Pig Latin evaluator and the workflow executor are generic over a
//! `Tracker`. [`GraphTracker`] materializes the paper's provenance graph;
//! [`NoTracker`] compiles every hook to a no-op, giving the honest
//! "without provenance" baseline of the paper's Figure 5 — the same
//! engine code path minus capture.

use std::collections::HashMap;
use std::fmt::Debug;

use lipstick_nrel::Value;

use crate::agg::AggOp;
use crate::graph::node::{InvocationId, NodeId, NodeKind, Role};
use crate::graph::ProvGraph;
use crate::semiring::Token;

/// The value half of an aggregation tensor term: either a plain constant
/// (a value read from a base attribute) or an existing v-node (a value
/// produced by an earlier aggregate or black box).
#[derive(Debug, Clone)]
pub enum AggItemValue<R> {
    Const(Value),
    Node(R),
}

/// Provenance capture hooks.
///
/// `Ref` is the handle attached to every tuple flowing through the
/// engine. All hooks take `&mut self`; a tracker is single-threaded by
/// design (the parallel executor gives each worker its own tracker and
/// merges the graphs afterwards).
pub trait Tracker {
    /// Per-tuple provenance handle.
    type Ref: Copy + PartialEq + Debug + Send + 'static;

    /// Whether this tracker records anything (used to skip token
    /// formatting work entirely when disabled).
    const TRACKING: bool;

    /// A base tuple with no recorded derivation (initial state, loaded
    /// relations). `token` is its annotation, e.g. `C2`.
    fn base(&mut self, token: &str) -> Self::Ref;

    /// FOREACH-projection / union-style alternative derivation.
    fn plus(&mut self, parts: &[Self::Ref]) -> Self::Ref;

    /// JOIN / FLATTEN-style joint derivation.
    fn times(&mut self, parts: &[Self::Ref]) -> Self::Ref;

    /// GROUP / COGROUP / DISTINCT duplicate elimination: δ over the
    /// members (the paper's shorthand attaches members directly to δ).
    fn delta(&mut self, parts: &[Self::Ref]) -> Self::Ref;

    /// FOREACH-aggregation: records the aggregate *value* as a v-node
    /// with one ⊗ tensor per member (§3.2, FOREACH (aggregation)).
    /// Returns the aggregate v-node.
    fn agg(&mut self, op: AggOp, items: &[(Self::Ref, AggItemValue<Self::Ref>)]) -> Self::Ref;

    /// Black-box (UDF) invocation over the given input nodes.
    fn blackbox(&mut self, name: &str, inputs: &[Self::Ref], is_value: bool) -> Self::Ref;

    // ----- workflow-level hooks (§3.1) -----

    /// A workflow input tuple (type "i" source node, `I1` in the paper).
    fn workflow_input(&mut self, token: &str) -> Self::Ref;

    /// Start a module invocation: creates the `m` node and makes this
    /// invocation current (nodes created until `end_invocation` are
    /// tagged as its intermediate computation).
    fn begin_invocation(&mut self, module: &str, execution: u32) -> Self::Ref;

    /// End the current module invocation.
    fn end_invocation(&mut self);

    /// Module input node: `·` of the tuple's provenance and the current
    /// invocation's `m` node.
    fn module_input(&mut self, tuple: Self::Ref) -> Self::Ref;

    /// Module output node; `vrefs` are v-nodes of values embedded in the
    /// output tuple (they connect to the output node, as `calcBid`'s
    /// value N80 connects to N90 in Figure 2(c)).
    fn module_output(&mut self, tuple: Self::Ref, vrefs: &[Self::Ref]) -> Self::Ref;

    /// Module state node (type "s") for a state tuple visible to the
    /// current invocation.
    fn state_node(&mut self, tuple: Self::Ref) -> Self::Ref;
}

/// The no-op tracker: `Ref = ()`. Every hook is inlined away, so running
/// the engine with `NoTracker` measures pure query execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTracker;

impl Tracker for NoTracker {
    type Ref = ();
    const TRACKING: bool = false;

    #[inline(always)]
    fn base(&mut self, _token: &str) -> Self::Ref {}
    #[inline(always)]
    fn plus(&mut self, _parts: &[Self::Ref]) -> Self::Ref {}
    #[inline(always)]
    fn times(&mut self, _parts: &[Self::Ref]) -> Self::Ref {}
    #[inline(always)]
    fn delta(&mut self, _parts: &[Self::Ref]) -> Self::Ref {}
    #[inline(always)]
    fn agg(&mut self, _op: AggOp, _items: &[(Self::Ref, AggItemValue<Self::Ref>)]) -> Self::Ref {}
    #[inline(always)]
    fn blackbox(&mut self, _name: &str, _inputs: &[Self::Ref], _is_value: bool) -> Self::Ref {}
    #[inline(always)]
    fn workflow_input(&mut self, _token: &str) -> Self::Ref {}
    #[inline(always)]
    fn begin_invocation(&mut self, _module: &str, _execution: u32) -> Self::Ref {}
    #[inline(always)]
    fn end_invocation(&mut self) {}
    #[inline(always)]
    fn module_input(&mut self, _tuple: Self::Ref) -> Self::Ref {}
    #[inline(always)]
    fn module_output(&mut self, _tuple: Self::Ref, _vrefs: &[Self::Ref]) -> Self::Ref {}
    #[inline(always)]
    fn state_node(&mut self, _tuple: Self::Ref) -> Self::Ref {}
}

/// The graph-building tracker.
#[derive(Debug, Default)]
pub struct GraphTracker {
    graph: ProvGraph,
    current: Option<(InvocationId, NodeId)>,
    /// Constant v-nodes are shared per distinct value (§3.2: "if a node
    /// for this value does not exist already") — but only *within* one
    /// module invocation: a constant shared across invocations would be
    /// hidden by one module's ZoomOut while other modules' tensors still
    /// reference it.
    const_nodes: HashMap<(Option<InvocationId>, Value), NodeId>,
}

impl GraphTracker {
    /// Fresh tracker with an empty graph.
    pub fn new() -> Self {
        GraphTracker::default()
    }

    /// Finish tracking and take the graph.
    pub fn finish(self) -> ProvGraph {
        self.graph
    }

    /// Read-only access to the graph under construction.
    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    /// Mutable access (crate-internal: used by shard absorption).
    pub(crate) fn graph_mut(&mut self) -> &mut ProvGraph {
        &mut self.graph
    }

    /// Role for operation nodes created at this point of execution.
    fn op_role(&self) -> Role {
        match self.current {
            Some((inv, _)) => Role::Intermediate(inv),
            None => Role::Free,
        }
    }

    fn add_op(&mut self, kind: NodeKind, preds: &[NodeId]) -> NodeId {
        let role = self.op_role();
        let id = self.graph.add_node(kind, role);
        for &p in preds {
            self.graph.add_edge(p, id);
        }
        id
    }

    fn const_node(&mut self, value: &Value) -> NodeId {
        let inv = self.current.map(|(i, _)| i);
        if let Some(&id) = self.const_nodes.get(&(inv, value.clone())) {
            return id;
        }
        let role = self.op_role();
        let id = self.graph.add_node(
            NodeKind::Const {
                value: value.clone(),
            },
            role,
        );
        self.const_nodes.insert((inv, value.clone()), id);
        id
    }
}

impl Tracker for GraphTracker {
    type Ref = NodeId;
    const TRACKING: bool = true;

    fn base(&mut self, token: &str) -> NodeId {
        let role = self.op_role();
        self.graph.add_node(
            NodeKind::BaseTuple {
                token: Token::new(token),
            },
            role,
        )
    }

    fn plus(&mut self, parts: &[NodeId]) -> NodeId {
        self.add_op(NodeKind::Plus, parts)
    }

    fn times(&mut self, parts: &[NodeId]) -> NodeId {
        self.add_op(NodeKind::Times, parts)
    }

    fn delta(&mut self, parts: &[NodeId]) -> NodeId {
        self.add_op(NodeKind::Delta, parts)
    }

    fn agg(&mut self, op: AggOp, items: &[(NodeId, AggItemValue<NodeId>)]) -> NodeId {
        let role = self.op_role();
        let op_node = self.graph.add_node(NodeKind::AggResult { op }, role);
        for (prov, value) in items {
            let value_node = match value {
                AggItemValue::Const(v) => self.const_node(v),
                AggItemValue::Node(n) => *n,
            };
            let tensor = self.graph.add_node(NodeKind::Tensor, role);
            self.graph.add_edge(*prov, tensor);
            if value_node != *prov {
                self.graph.add_edge(value_node, tensor);
            }
            self.graph.add_edge(tensor, op_node);
        }
        op_node
    }

    fn blackbox(&mut self, name: &str, inputs: &[NodeId], is_value: bool) -> NodeId {
        self.add_op(
            NodeKind::BlackBox {
                name: name.to_string(),
                is_value,
            },
            inputs,
        )
    }

    fn workflow_input(&mut self, token: &str) -> NodeId {
        self.graph.add_node(
            NodeKind::WorkflowInput {
                token: Token::new(token),
            },
            Role::WorkflowInput,
        )
    }

    fn begin_invocation(&mut self, module: &str, execution: u32) -> NodeId {
        debug_assert!(
            self.current.is_none(),
            "begin_invocation while an invocation is already current"
        );
        let (inv, m_node) = self.graph.add_invocation(module, execution);
        self.current = Some((inv, m_node));
        m_node
    }

    fn end_invocation(&mut self) {
        debug_assert!(self.current.is_some(), "end_invocation without begin");
        self.current = None;
    }

    fn module_input(&mut self, tuple: NodeId) -> NodeId {
        let (inv, m_node) = self.current.expect("module_input outside invocation");
        let id = self
            .graph
            .add_node(NodeKind::ModuleInput, Role::ModuleInput(inv));
        self.graph.add_edge(tuple, id);
        self.graph.add_edge(m_node, id);
        id
    }

    fn module_output(&mut self, tuple: NodeId, vrefs: &[NodeId]) -> NodeId {
        let (inv, m_node) = self.current.expect("module_output outside invocation");
        let id = self
            .graph
            .add_node(NodeKind::ModuleOutput, Role::ModuleOutput(inv));
        self.graph.add_edge(tuple, id);
        self.graph.add_edge(m_node, id);
        for &v in vrefs {
            self.graph.add_edge(v, id);
        }
        id
    }

    fn state_node(&mut self, tuple: NodeId) -> NodeId {
        let (inv, m_node) = self.current.expect("state_node outside invocation");
        let id = self.graph.add_node(NodeKind::StateUnit, Role::State(inv));
        self.graph.add_edge(tuple, id);
        self.graph.add_edge(m_node, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tracker_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoTracker>(), 0);
        assert_eq!(std::mem::size_of::<<NoTracker as Tracker>::Ref>(), 0);
    }

    #[test]
    fn graph_tracker_builds_projection_chain() {
        let mut t = GraphTracker::new();
        let a = t.base("a");
        let b = t.base("b");
        let p = t.plus(&[a, b]);
        let g = t.finish();
        assert_eq!(g.expr_of(p).to_string(), "a + b");
    }

    #[test]
    fn const_nodes_are_shared() {
        let mut t = GraphTracker::new();
        let a = t.base("a");
        let b = t.base("b");
        t.agg(
            AggOp::Sum,
            &[
                (a, AggItemValue::Const(Value::Int(5))),
                (b, AggItemValue::Const(Value::Int(5))),
            ],
        );
        let g = t.finish();
        let consts = g
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Const { .. }))
            .count();
        assert_eq!(consts, 1, "equal values share one const v-node");
    }

    #[test]
    fn invocation_tagging() {
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        let m = t.begin_invocation("Mdealer1", 0);
        let i = t.module_input(wi);
        let mid = t.plus(&[i]);
        let o = t.module_output(mid, &[]);
        t.end_invocation();
        let g = t.finish();
        let inv = g.invocations_of("Mdealer1")[0];
        assert_eq!(g.node(m).role, Role::Invocation(inv));
        assert_eq!(g.node(i).role, Role::ModuleInput(inv));
        assert_eq!(g.node(mid).role, Role::Intermediate(inv));
        assert_eq!(g.node(o).role, Role::ModuleOutput(inv));
        assert_eq!(g.node(wi).role, Role::WorkflowInput);
        // the output's provenance mentions tuple, module, input
        let expr = g.expr_of(o).to_string();
        assert!(expr.contains("I1"));
        assert!(expr.contains("Mdealer1"));
    }

    #[test]
    fn state_nodes_connect_tuple_and_module() {
        let mut t = GraphTracker::new();
        let c2 = t.base("C2");
        t.begin_invocation("Mdealer1", 0);
        let s = t.state_node(c2);
        t.end_invocation();
        let g = t.finish();
        assert_eq!(g.node(s).preds().len(), 2);
        assert!(matches!(g.node(s).kind, NodeKind::StateUnit));
    }

    #[test]
    fn agg_with_vnode_item() {
        let mut t = GraphTracker::new();
        let a = t.base("a");
        let bb = t.blackbox("calcBid", &[a], true);
        let agg = t.agg(AggOp::Min, &[(a, AggItemValue::Node(bb))]);
        let g = t.finish();
        // tensor has two preds: a and the BB v-node
        let tensor = g
            .iter()
            .find(|(_, n)| matches!(n.kind, NodeKind::Tensor))
            .unwrap()
            .0;
        assert_eq!(g.node(tensor).preds().len(), 2);
        assert_eq!(g.node(agg).preds().len(), 1);
    }
}
