//! The ProQL executor: physical plans → results, against a session.
//!
//! Executors report `visited` counts — the number of graph nodes they
//! actually examined — so tests (and the `proql_planner` bench) can
//! verify the planner's cost model against observed work.
//!
//! ## Branch parallelism
//!
//! The operands of a `UNION`/`INTERSECT` chain are independent: no
//! branch reads another's output. On graphs past a size threshold the
//! executor fans the flattened branches out over a crossbeam worker
//! pool (the same scoped-thread machinery `lipstick-workflow` uses for
//! module-level parallelism) and merges in **source order**, so
//! results, visited-cost sums, and error choices are byte-identical to
//! the sequential path no matter the thread count — the property the
//! resident/paged/server differential harness locks down. Everything a
//! worker touches is behind `&` (the same discipline that lets
//! `lipstick-serve` run [`execute_read`] concurrently under a shared
//! read lock), so the fan-out composes with server-side concurrency.

use std::collections::BTreeSet;

use lipstick_core::graph::bitset::BitSet;
use lipstick_core::graph::stats::stats;
use lipstick_core::obs::{QueryTrace, TraceCtx, Tracer};
use lipstick_core::query::{
    depends_on, propagate_deletion_inplace, subgraph, traverse, zoom_in, zoom_out, Direction,
    ReachIndex,
};
use lipstick_core::semiring::boolean::Bools;
use lipstick_core::semiring::eval::{eval_expr, Valuation};
use lipstick_core::semiring::lineage::Lineage;
use lipstick_core::semiring::natural::Natural;
use lipstick_core::semiring::tropical::Tropical;
use lipstick_core::semiring::whyprov::Why;
use lipstick_core::{
    InvocationId, Node, NodeId, NodeKind, Polynomial, ProvExpr, ProvGraph, Semiring, Token,
};

use crate::ast::{Comparison, Field, FieldValue, NodeClass, Predicate, SemiringName, WalkDir};
use crate::error::Result;
use crate::plan::{DependsStrategy, ScanStrategy, SetPlan, StmtPlan, WalkStrategy};
use crate::result::QueryOutput;
use crate::session::Session;

/// How set-operation branches are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads for independent branches; 1 = fully sequential.
    pub threads: usize,
    /// Smallest graph (allocated nodes) worth the thread hand-off —
    /// below it every branch runs inline.
    pub min_nodes: usize,
}

impl Parallelism {
    /// Strictly sequential execution.
    pub const SEQUENTIAL: Parallelism = Parallelism {
        threads: 1,
        min_nodes: usize::MAX,
    };

    /// Default policy: one thread per core (capped), engaged only on
    /// graphs large enough that a branch outweighs a thread hand-off.
    pub fn default_for_host() -> Parallelism {
        Parallelism {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            min_nodes: 4096,
        }
    }

    pub(crate) fn engaged(&self, node_count: usize, branches: usize) -> bool {
        self.threads > 1 && branches > 1 && node_count >= self.min_nodes
    }
}

/// Fan `tasks` out over a scoped crossbeam worker pool and return every
/// task's outcome **in task order** (which is what keeps merged
/// results, visited sums, and error choices deterministic). Worker
/// panics are caught per task and returned in their slot, so the caller
/// can re-raise the *leftmost* bad outcome — exactly the one sequential
/// left-to-right evaluation would have hit first — instead of whichever
/// worker happened to die first.
pub(crate) fn run_tasks_parallel<T: Send>(
    threads: usize,
    count: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<std::thread::Result<T>> {
    let (task_tx, task_rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..count {
        task_tx.send(i).expect("receiver alive");
    }
    drop(task_tx);
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, std::thread::Result<T>)>();
    let outcome = crossbeam::scope(|scope| {
        for _ in 0..threads.min(count) {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            let task = &task;
            scope.spawn(move |_| {
                while let Ok(i) = task_rx.recv() {
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
                    if done_tx.send((i, out)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    if let Err(payload) = outcome {
        // Backstop: only reachable if a panic escaped the per-task
        // catch (e.g. a panic in the channel machinery itself).
        std::panic::resume_unwind(payload);
    }
    drop(done_tx);
    let mut slots: Vec<Option<std::thread::Result<T>>> = (0..count).map(|_| None).collect();
    while let Ok((i, r)) = done_rx.recv() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every branch task completes"))
        .collect()
}

/// Execute one planned **read-only** statement against a resident
/// graph, without exclusive access to the session — the execution arm
/// `lipstick-serve` runs concurrently under a shared read lock.
/// Mutating plans (`DELETE`, zooms, index maintenance) never reach this
/// function; they go through [`execute`], which holds `&mut Session`.
/// Cooperative cancellation: consulted at span boundaries (statement
/// entry and each set-plan operator), so a runaway read gives up within
/// one operator's work of its deadline.
pub(crate) fn check_deadline(ctx: &TraceCtx<'_>) -> Result<()> {
    if ctx.deadline_exceeded() {
        return Err(crate::error::ProqlError::DeadlineExceeded);
    }
    Ok(())
}

pub(crate) fn execute_read(
    graph: &ProvGraph,
    reach: Option<&ReachIndex>,
    plan: &StmtPlan,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> Result<QueryOutput> {
    check_deadline(&ctx)?;
    match plan {
        StmtPlan::Set { plan: p, shaping } => {
            let (nodes, visited) = run_set(graph, reach, p, par, ctx)?;
            let mut span = ctx.span("shaping");
            let out = crate::shape::apply_shaping(graph, nodes, visited, shaping);
            span.attr("rows", output_rows(&out));
            Ok(out)
        }
        StmtPlan::Why { n, .. } => {
            let _span = ctx.span("why");
            let expr = graph.expr_of(*n);
            Ok(QueryOutput::Text(why_text(*n, &expr)))
        }
        StmtPlan::Depends {
            n,
            n_prime,
            strategy,
        } => {
            let _span = ctx.span("depends");
            let value = match strategy {
                DependsStrategy::Propagation | DependsStrategy::PagedPropagation => {
                    depends_on(graph, *n, *n_prime)?
                }
                DependsStrategy::ReachPrefilter => {
                    let index = reach.expect("planned with a reach index");
                    if n == n_prime {
                        true
                    } else if !index.reaches(*n_prime, *n) {
                        // Deletion of n' only propagates to its
                        // descendants; n is not one.
                        false
                    } else {
                        depends_on(graph, *n, *n_prime)?
                    }
                }
            };
            Ok(QueryOutput::Bool(value))
        }
        StmtPlan::Eval(n, semiring) => {
            let _span = ctx.span("eval");
            let expr = graph.expr_of(*n);
            Ok(QueryOutput::Text(eval_expr_in_semiring(
                *n, &expr, *semiring,
            )))
        }
        StmtPlan::Stats => {
            use lipstick_core::obs::HeapSize;
            let mut text = stats(graph).to_string();
            text.push_str(&format!(
                "  {} invocation(s), {} zoomed-out module(s), reach index: {}\n",
                graph.invocations().len(),
                graph.zoomed_out_modules().len(),
                if reach.is_some() { "present" } else { "absent" }
            ));
            let mut total = 0usize;
            for (name, bytes) in graph.heap_breakdown() {
                total += bytes;
                text.push_str(&format!("  memory graph.{name}={bytes}\n"));
            }
            if let Some(idx) = reach {
                for (name, bytes) in idx.heap_breakdown() {
                    total += bytes;
                    text.push_str(&format!("  memory reach.{name}={bytes}\n"));
                }
            }
            text.push_str(&format!(
                "  memory total={total} ({})",
                lipstick_core::obs::format_bytes(total)
            ));
            Ok(QueryOutput::Text(text))
        }
        StmtPlan::Explain(inner) => Ok(QueryOutput::Text(inner.to_string())),
        StmtPlan::ExplainAnalyze(inner) => {
            let tracer = Tracer::new();
            let output = execute_read(graph, reach, inner, par, TraceCtx::root(&tracer))?;
            Ok(QueryOutput::Text(render_analyze(
                inner,
                &tracer.finish(),
                &output,
            )))
        }
        StmtPlan::Check { source } | StmtPlan::ExplainLint { source } => {
            let _span = ctx.span("check");
            Ok(QueryOutput::Diagnostics(crate::analyze::analyze(
                graph, source,
            )))
        }
        StmtPlan::Delete(_)
        | StmtPlan::ZoomOut { .. }
        | StmtPlan::ZoomIn { .. }
        | StmtPlan::BuildIndex
        | StmtPlan::DropIndex
        | StmtPlan::Compact => Err(crate::error::ProqlError::ReadOnly(plan.to_string())),
    }
}

/// Execute one planned statement against the session, mutating it where
/// the plan calls for it. Read-only plans delegate to [`execute_read`].
///
/// Mutations no longer drop the reachability closure: each arm hands
/// the session the exact set of touched nodes and the index is repaired
/// in place ([`Session::repair_index`]) — deletion subtracts the dead
/// cone, zooms remap the affected region (growing the index for new
/// composite nodes) — so an index, once built, stays exact for the
/// session's lifetime.
pub(crate) fn execute(session: &mut Session, plan: &StmtPlan) -> Result<QueryOutput> {
    match plan {
        StmtPlan::Delete(n) => {
            let report = propagate_deletion_inplace(session.graph_mut(), *n)?;
            // Deletion only removes reachability: the changed set is
            // exactly the tombstoned cone.
            session.repair_index(&report.deleted);
            Ok(QueryOutput::Deleted {
                nodes: report.deleted,
            })
        }
        StmtPlan::ZoomOut {
            modules,
            fused_from,
        } => {
            let names: Vec<&str> = modules.iter().map(String::as_str).collect();
            let created = zoom_out(session.graph_mut(), &names)?;
            // Changed: everything each stash hid, the new composites,
            // and the i/o nodes the composites were wired to (their
            // adjacency gained edges).
            let mut changed = created.clone();
            {
                let graph = session.graph();
                for m in modules {
                    if let Some(stash) = graph.stash_of(m) {
                        changed.extend_from_slice(&stash.hidden);
                    }
                }
                for &z in &created {
                    changed.extend_from_slice(graph.node(z).preds());
                    changed.extend_from_slice(graph.node(z).succs());
                }
            }
            session.repair_index(&changed);
            let mut msg = format!(
                "zoomed out {} module(s), {} composite node(s)",
                modules.len(),
                created.len()
            );
            if *fused_from > 1 {
                msg.push_str(&format!(" [fused from {fused_from} statements]"));
            }
            Ok(QueryOutput::Message(msg))
        }
        StmtPlan::ZoomIn {
            modules,
            fused_from,
        } => {
            let names: Vec<String> = match modules {
                Some(ms) => ms.clone(),
                None => session
                    .graph()
                    .zoomed_out_modules()
                    .into_iter()
                    .map(String::from)
                    .collect(),
            };
            if names.is_empty() {
                return Ok(QueryOutput::Message("no modules are zoomed out".into()));
            }
            // Capture the changed set before executing: ZoomIn unlinks
            // the composites, so their neighbours must be read now.
            let mut changed: Vec<lipstick_core::NodeId> = Vec::new();
            {
                let graph = session.graph();
                for m in &names {
                    if let Some(stash) = graph.stash_of(m) {
                        changed.extend_from_slice(&stash.hidden);
                        for &z in &stash.zoom_nodes {
                            changed.push(z);
                            changed.extend_from_slice(graph.node(z).preds());
                            changed.extend_from_slice(graph.node(z).succs());
                        }
                    }
                }
            }
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            zoom_in(session.graph_mut(), &refs)?;
            session.repair_index(&changed);
            let mut msg = format!("zoomed back into {}", names.join(", "));
            if *fused_from > 1 {
                msg.push_str(&format!(" [fused from {fused_from} statements]"));
            }
            Ok(QueryOutput::Message(msg))
        }
        StmtPlan::BuildIndex => {
            // Mutations repair the index in place, so a present index
            // is always exact — rebuilding it would only redo work
            // (this also keeps `BUILD INDEX` after a promoting mutation
            // from silently building twice).
            if session.has_reach_index() {
                return Ok(QueryOutput::Message(
                    "reach index already present (maintained in place); DROP INDEX first to \
                     force a rebuild"
                        .into(),
                ));
            }
            let index = ReachIndex::build(session.graph());
            let bytes = index.memory_bytes();
            session.set_index(index);
            Ok(QueryOutput::Message(format!(
                "reach index built ({bytes} bytes)"
            )))
        }
        StmtPlan::DropIndex => {
            session.invalidate_index();
            Ok(QueryOutput::Message("reach index dropped".into()))
        }
        // Resident sessions have no tail segment; COMPACT is a no-op.
        StmtPlan::Compact => Ok(QueryOutput::Message(
            "nothing to compact (no tail segment)".into(),
        )),
        read_only => execute_read(
            session.graph(),
            session.reach_index(),
            read_only,
            session.parallelism(),
            TraceCtx::disabled(),
        ),
    }
}

/// Run a set plan; returns (sorted nodes, visited count).
fn run_set(
    graph: &ProvGraph,
    reach: Option<&ReachIndex>,
    plan: &SetPlan,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> Result<(Vec<NodeId>, usize)> {
    check_deadline(&ctx)?;
    match plan {
        SetPlan::Scan {
            class,
            filter,
            strategy,
            limit,
        } => {
            let mut span = ctx.span("scan");
            let (out, visited) = match strategy {
                ScanStrategy::FullScan { .. } => full_scan(graph, *class, filter, *limit),
                // The module scan collects in invocation-component order
                // and sorts afterwards, so an early-exit limit would be
                // unsound here — the planner never plants one (see
                // `SetPlan::push_limit`); the shaping stage truncates.
                ScanStrategy::ModuleScan { module, .. } => {
                    module_scan(graph, module, *class, filter)
                }
                // Paged strategies only arise in paged sessions; if one
                // lands here (e.g. a plan replayed after promotion), the
                // full scan is always correct.
                ScanStrategy::PostingsScan { .. } | ScanStrategy::PagedFullScan { .. } => {
                    full_scan(graph, *class, filter, *limit)
                }
            };
            span.attr("rows", out.len() as u64);
            span.attr("visited", visited as u64);
            Ok((out, visited))
        }
        SetPlan::Walk {
            root,
            dir,
            depth,
            filter,
            strategy,
        } => {
            let mut span = ctx.span("walk");
            let direction = match dir {
                WalkDir::Ancestors => Direction::Ancestors,
                WalkDir::Descendants => Direction::Descendants,
            };
            let (nodes, visited) = match strategy {
                WalkStrategy::Bfs { .. } | WalkStrategy::PagedBfs { .. } => {
                    // Predicate pushed into the traversal's collect step.
                    let (nodes, stats) = traverse(graph, *root, direction, *depth, |id, node| {
                        pred_matches(graph, id, node, filter)
                    })?;
                    (nodes, stats.visited)
                }
                WalkStrategy::ReachIndex { .. } => {
                    let index = reach.expect("planned with a reach index");
                    let candidates = match dir {
                        WalkDir::Descendants => index.descendants(*root),
                        WalkDir::Ancestors => index.ancestors(*root),
                    };
                    let visited = candidates.len();
                    let nodes: Vec<NodeId> = candidates
                        .into_iter()
                        .filter(|id| {
                            let node = graph.node(*id);
                            node.is_visible() && pred_matches(graph, *id, node, filter)
                        })
                        .collect();
                    (nodes, visited)
                }
            };
            span.attr("rows", nodes.len() as u64);
            span.attr("visited", visited as u64);
            Ok((nodes, visited))
        }
        SetPlan::Subgraph { root } => {
            let mut span = ctx.span("subgraph");
            let result = subgraph(graph, *root)?;
            let visited = result.len();
            span.attr("rows", result.nodes.len() as u64);
            span.attr("visited", visited as u64);
            Ok((result.nodes, visited))
        }
        SetPlan::Union(a, b) | SetPlan::Intersect(a, b) => {
            let merge: fn(Vec<NodeId>, Vec<NodeId>) -> Vec<NodeId> = match plan {
                SetPlan::Union(..) => merge_union,
                _ => merge_intersect,
            };
            let branches = plan.branches();
            let engaged = par.engaged(graph.len(), branches.len());
            // A traced execution always takes the flattened-branches
            // path, so the span tree has one canonical shape (set-op →
            // `branch i` children) whatever the thread count; branch
            // panics are caught per branch exactly like the parallel
            // workers do, keeping the leftmost-outcome rule intact.
            if engaged || ctx.enabled() {
                let label = match plan {
                    SetPlan::Union(..) => "union",
                    _ => "intersect",
                };
                let mut span = ctx.span(label);
                let sctx = span.ctx();
                let run_branch = |i: usize, branch_par: Parallelism| {
                    let mut bspan = sctx.span_indexed(&format!("branch {i}"), i as u32);
                    let r = run_set(graph, reach, branches[i], branch_par, bspan.ctx());
                    if let Ok((nodes, visited)) = &r {
                        bspan.attr("rows", nodes.len() as u64);
                        bspan.attr("visited", *visited as u64);
                    }
                    r
                };
                let results = if engaged {
                    run_tasks_parallel(par.threads, branches.len(), |i| {
                        run_branch(i, Parallelism::SEQUENTIAL)
                    })
                } else {
                    (0..branches.len())
                        .map(|i| {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_branch(i, par)
                            }))
                        })
                        .collect()
                };
                let out = combine_branches(results, merge);
                if let Ok((nodes, visited)) = &out {
                    span.attr("rows", nodes.len() as u64);
                    span.attr("visited", *visited as u64);
                }
                return out;
            }
            let (xs, va) = run_set(graph, reach, a, par, ctx)?;
            let (ys, vb) = run_set(graph, reach, b, par, ctx)?;
            Ok((merge(xs, ys), va + vb))
        }
    }
}

/// Rows in a query output, for span attributes: node count, table rows,
/// or 1 for scalars/text.
pub(crate) fn output_rows(out: &QueryOutput) -> u64 {
    match out {
        QueryOutput::Nodes(ns) => ns.nodes.len() as u64,
        QueryOutput::Table(t) => t.rows.len() as u64,
        QueryOutput::Deleted { nodes } => nodes.len() as u64,
        QueryOutput::Diagnostics(d) => d.items.len() as u64,
        QueryOutput::Bool(_) | QueryOutput::Text(_) | QueryOutput::Message(_) => 1,
    }
}

/// Render an `EXPLAIN ANALYZE` answer: the chosen physical plan, the
/// observed per-operator span tree, and a one-line total. Shared by the
/// resident and paged executors.
pub(crate) fn render_analyze(plan: &StmtPlan, trace: &QueryTrace, output: &QueryOutput) -> String {
    let mut text = format!("explain analyze\n  {plan}\nactuals:\n");
    for line in trace.render_tree().lines() {
        text.push_str("  ");
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&format!(
        "total: {} row(s), {} µs",
        output_rows(output),
        trace.total_us()
    ));
    text
}

/// One branch's `(sorted nodes, visited)` payload, or its failure.
pub(crate) type BranchResult = Result<(Vec<NodeId>, usize)>;

/// Fold per-branch outcomes in source order — the exact association the
/// sequential path produces, so parallel execution is observationally
/// identical: same node set, same visited sum, and on a bad branch the
/// same (leftmost) outcome, whether that is an error or a panic (paged
/// corruption containment catches panics above this layer, so the
/// branch order must decide which one it sees).
pub(crate) fn combine_branches(
    results: Vec<std::thread::Result<BranchResult>>,
    merge: impl Fn(Vec<NodeId>, Vec<NodeId>) -> Vec<NodeId>,
) -> BranchResult {
    let mut acc: Option<(Vec<NodeId>, usize)> = None;
    for r in results {
        let (ys, vb) = match r {
            Ok(branch) => branch?,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        acc = Some(match acc {
            None => (ys, vb),
            Some((xs, va)) => (merge(xs, ys), va + vb),
        });
    }
    Ok(acc.expect("set ops have at least one branch"))
}

/// Sweep every visible node, in id order — which is what makes the
/// planner's pushed-down `limit` sound: the first `n` matches are the
/// set's `n` smallest members, so the scan stops early.
fn full_scan(
    graph: &ProvGraph,
    class: NodeClass,
    filter: &Predicate,
    limit: Option<u64>,
) -> (Vec<NodeId>, usize) {
    let mut visited = 0;
    let mut out = Vec::new();
    for (id, node) in graph.iter_visible() {
        if limit.is_some_and(|n| out.len() as u64 >= n) {
            break;
        }
        visited += 1;
        if class_matches(class, node) && pred_matches(graph, id, node, filter) {
            out.push(id);
        }
    }
    (out, visited)
}

/// Drive the scan from the invocation table: visit only nodes owned by
/// the target module's invocations (reached by a role-bounded sweep
/// from each invocation's `m` node) instead of the whole graph.
fn module_scan(
    graph: &ProvGraph,
    module: &str,
    class: NodeClass,
    filter: &Predicate,
) -> (Vec<NodeId>, usize) {
    let invocations = graph.invocations_of(module);
    let inv_set: BTreeSet<InvocationId> = invocations.iter().copied().collect();
    let mut visited = 0;
    let mut out = Vec::new();

    if class == NodeClass::Invocation {
        // m-nodes come straight off the invocation table.
        for inv in invocations {
            let m = graph.invocation(inv).m_node;
            let node = graph.node(m);
            if !node.is_visible() {
                continue;
            }
            visited += 1;
            if pred_matches(graph, m, node, filter) {
                out.push(m);
            }
        }
        out.sort();
        return (out, visited);
    }

    // General classes: sweep each invocation's role-owned component
    // (both edge directions) starting from its m node.
    let mut seen = BitSet::new(graph.len());
    let mut stack: Vec<NodeId> = Vec::new();
    for inv in invocations {
        let m = graph.invocation(inv).m_node;
        if graph.node(m).is_visible() && seen.insert(m.index()) {
            stack.push(m);
        }
    }
    while let Some(id) = stack.pop() {
        let node = graph.node(id);
        visited += 1;
        if class_matches(class, node) && pred_matches(graph, id, node, filter) {
            out.push(id);
        }
        for &n in node.preds().iter().chain(node.succs()) {
            let nn = graph.node(n);
            let owned = nn
                .role
                .invocation()
                .is_some_and(|inv| inv_set.contains(&inv));
            if owned && nn.is_visible() && seen.insert(n.index()) {
                stack.push(n);
            }
        }
    }
    out.sort();
    (out, visited)
}

/// Does a node belong to a `MATCH` class?
fn class_matches(class: NodeClass, node: &Node) -> bool {
    match class {
        NodeClass::All => true,
        NodeClass::Invocation => matches!(node.kind, NodeKind::Invocation),
        NodeClass::ModuleInput => matches!(node.kind, NodeKind::ModuleInput),
        NodeClass::ModuleOutput => matches!(node.kind, NodeKind::ModuleOutput),
        NodeClass::State => matches!(node.kind, NodeKind::StateUnit),
        NodeClass::Base => matches!(node.kind, NodeKind::BaseTuple { .. }),
        NodeClass::PNodes => !node.kind.is_value_node(),
        NodeClass::VNodes => node.kind.is_value_node(),
    }
}

/// Evaluate a predicate conjunction on one node. Fields that don't
/// apply (e.g. `module` on a free node) make `=` false and `!=` true.
fn pred_matches(graph: &ProvGraph, _id: NodeId, node: &Node, pred: &Predicate) -> bool {
    pred.conjuncts
        .iter()
        .all(|c| comparison_matches(graph, node, c))
}

fn comparison_matches(graph: &ProvGraph, node: &Node, c: &Comparison) -> bool {
    let actual = match c.field {
        Field::Kind => Some(FieldValue::Str(node.kind.name())),
        Field::Role => Some(FieldValue::Str(node.role.name())),
        Field::Module => node
            .role
            .invocation()
            .map(|inv| FieldValue::Str(graph.invocation(inv).module.as_str())),
        Field::Execution => node
            .role
            .invocation()
            .map(|inv| FieldValue::Int(u64::from(graph.invocation(inv).execution))),
        Field::Token => match &node.kind {
            NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                Some(FieldValue::Str(token.as_str()))
            }
            _ => None,
        },
    };
    c.eval(actual)
}

pub(crate) fn merge_union(xs: Vec<NodeId>, ys: Vec<NodeId>) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(xs.len() + ys.len());
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => {
                out.push(xs[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(ys[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&xs[i..]);
    out.extend_from_slice(&ys[j..]);
    out
}

pub(crate) fn merge_intersect(xs: Vec<NodeId>, ys: Vec<NodeId>) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Render a `WHY` answer: the symbolic expression plus its expanded
/// N\[X\] polynomial when one exists. Shared by the resident and paged
/// executors.
pub(crate) fn why_text(n: NodeId, expr: &ProvExpr) -> String {
    let mut text = format!("{n}: {expr}");
    if let Some(poly) = Polynomial::from_expr(expr) {
        text.push_str(&format!("\n  = {poly} (expanded N[X] polynomial)"));
    }
    text
}

/// Collect the distinct tokens of an expression.
fn collect_tokens(e: &ProvExpr, out: &mut BTreeSet<Token>) {
    match e {
        ProvExpr::Zero | ProvExpr::One => {}
        ProvExpr::Tok(t) => {
            out.insert(t.clone());
        }
        ProvExpr::Sum(parts) | ProvExpr::Prod(parts) => {
            for p in parts {
                collect_tokens(p, out);
            }
        }
        ProvExpr::Delta(inner) => collect_tokens(inner, out),
    }
}

/// Evaluate an extracted provenance expression under the named
/// semiring. Shared by the resident and paged executors.
///
/// Valuations: counting and tropical give every token weight 1 (number
/// of derivations / minimum tuples on a derivation); boolean marks all
/// tokens present; lineage and why map each token to itself, producing
/// contributing-token sets and minimal witnesses respectively.
pub(crate) fn eval_expr_in_semiring(id: NodeId, expr: &ProvExpr, semiring: SemiringName) -> String {
    let mut tokens = BTreeSet::new();
    collect_tokens(expr, &mut tokens);
    let tokens: Vec<Token> = tokens.into_iter().collect();
    match semiring {
        SemiringName::Counting => {
            let v = Valuation::<Natural>::with_default(Natural(1));
            let n = eval_expr(expr, &v);
            format!("{id} in counting: {} derivation(s)", n.0)
        }
        SemiringName::Boolean => {
            let v = Valuation::<Bools>::with_default(Bools(true));
            let b = eval_expr(expr, &v);
            format!("{id} in boolean: {}", b.0)
        }
        SemiringName::Tropical => {
            let v = Valuation::<Tropical>::with_default(Tropical(1.0));
            let t = eval_expr(expr, &v);
            format!("{id} in tropical (unit costs): {}", t.0)
        }
        SemiringName::Lineage => {
            let mut v = Valuation::<Lineage>::with_default(Lineage::one());
            for t in &tokens {
                v = v.set(t.as_str(), Lineage::token(t.clone()));
            }
            match eval_expr(expr, &v).tokens() {
                Some(set) => {
                    let names: Vec<&str> = set.iter().map(|t| t.as_str()).collect();
                    format!("{id} in lineage: {{{}}}", names.join(", "))
                }
                None => format!("{id} in lineage: underivable"),
            }
        }
        SemiringName::Why => {
            let mut v = Valuation::<Why>::with_default(Why::one());
            for t in &tokens {
                v = v.set(t.as_str(), Why::token(t.clone()));
            }
            let why = eval_expr(expr, &v);
            let witnesses: Vec<String> = why
                .witnesses()
                .iter()
                .map(|w| {
                    let names: Vec<&str> = w.iter().map(|t| t.as_str()).collect();
                    format!("{{{}}}", names.join(", "))
                })
                .collect();
            format!("{id} in why: {{{}}}", witnesses.join(", "))
        }
    }
}
