//! FOREACH … GENERATE: projection, aggregation, black boxes, FLATTEN.
//!
//! Provenance rules (§3.2):
//!
//! - **projection**: each output tuple gets a `+` node over its source
//!   tuple;
//! - **aggregation**: additionally, an op-labelled v-node with one ⊗
//!   tensor per group member pairing the member's provenance with the
//!   aggregated value;
//! - **black box**: a node labelled with the function name over the
//!   input nodes (p-node or v-node per the UDF's declaration);
//! - **FLATTEN** of a bag field: the output row depends jointly (`·`) on
//!   the outer tuple and the flattened member.

use std::sync::Arc;

use lipstick_core::graph::tracker::AggItemValue;
use lipstick_core::Tracker;
use lipstick_nrel::{Schema, Tuple, Value};

use crate::error::{PigError, Result};
use crate::expr::CExpr;
use crate::plan::CGenItem;
use crate::udf::UdfRegistry;

use super::context::{ARelation, ATuple, Ann};

/// One item's contribution for a single input row.
enum Piece<R: Copy> {
    /// Fixed fields (projection, aggregate, scalar UDF).
    Single {
        values: Vec<Value>,
        /// v-refs local to this piece (offset within the piece).
        vrefs: Vec<(u16, R)>,
        /// An extra joint provenance ingredient (p-node black box).
        joint: Option<R>,
        /// Member annotations carried through when projecting a bag
        /// field that has them (local offset → anns).
        members: Vec<(u16, Arc<Vec<Ann<R>>>)>,
    },
    /// FLATTEN expansion: the cross product multiplies rows.
    Rows(Vec<PieceRow<R>>),
}

struct PieceRow<R: Copy> {
    values: Vec<Value>,
    /// Provenance of the flattened member (joins the output's `·`).
    member_prov: Option<R>,
    vrefs: Vec<(u16, R)>,
}

/// Evaluate FOREACH over a relation.
pub fn eval_foreach<T: Tracker>(
    input: &ARelation<T::Ref>,
    items: &[CGenItem],
    out_schema: Arc<Schema>,
    tracker: &mut T,
    udfs: &UdfRegistry,
) -> Result<ARelation<T::Ref>> {
    let mut out = ARelation::empty(out_schema);
    for row in &input.rows {
        let mut pieces = Vec::with_capacity(items.len());
        for item in items {
            pieces.push(eval_item(row, item, tracker, udfs)?);
        }
        assemble(row, items, &pieces, &mut out, tracker)?;
    }
    Ok(out)
}

fn eval_item<T: Tracker>(
    row: &ATuple<T::Ref>,
    item: &CGenItem,
    tracker: &mut T,
    udfs: &UdfRegistry,
) -> Result<Piece<T::Ref>> {
    match item {
        CGenItem::Expr { expr, source_field } => {
            let value = expr.eval(&row.tuple)?;
            let mut vrefs = Vec::new();
            let mut members = Vec::new();
            if let Some(sf) = source_field {
                if T::TRACKING {
                    if let Some(v) = row.ann.vref(*sf) {
                        vrefs.push((0u16, v));
                    }
                    if let Some(m) = row.member_anns(*sf) {
                        members.push((0u16, m.clone()));
                    }
                }
            }
            Ok(Piece::Single {
                values: vec![value],
                vrefs,
                joint: None,
                members,
            })
        }
        CGenItem::Star { arity } => {
            let mut vrefs = Vec::new();
            let mut members = Vec::new();
            if T::TRACKING {
                vrefs.extend(row.ann.vrefs.iter().copied());
                members.extend(row.members.iter().cloned());
            }
            debug_assert_eq!(row.tuple.arity(), *arity);
            Ok(Piece::Single {
                values: row.tuple.fields().to_vec(),
                vrefs,
                joint: None,
                members,
            })
        }
        CGenItem::Agg { op, bag, attr } => {
            let bag_val = row.tuple.get(*bag)?.as_bag()?;
            let member_anns = row.member_anns(*bag);
            // Extract the per-member values being aggregated.
            let mut values = Vec::with_capacity(bag_val.len());
            for t in bag_val.iter() {
                values.push(match attr {
                    Some(a) => t.get(*a)?.clone(),
                    None => Value::Int(1),
                });
            }
            let result = op.apply(&values)?;
            let mut vrefs = Vec::new();
            if T::TRACKING {
                let mut agg_items: Vec<(T::Ref, AggItemValue<T::Ref>)> =
                    Vec::with_capacity(values.len());
                for (j, v) in values.iter().enumerate() {
                    let member = member_anns
                        .and_then(|anns| anns.get(j))
                        .map(|a| (a.prov, attr.and_then(|at| a.vref(at))));
                    let (prov, vnode) = member.unwrap_or((row.ann.prov, None));
                    let item_value = match vnode {
                        Some(n) => AggItemValue::Node(n),
                        None => AggItemValue::Const(v.clone()),
                    };
                    agg_items.push((prov, item_value));
                }
                let agg_node = tracker.agg(*op, &agg_items);
                vrefs.push((0u16, agg_node));
            }
            Ok(Piece::Single {
                values: vec![result],
                vrefs,
                joint: None,
                members: Vec::new(),
            })
        }
        CGenItem::Udf {
            name,
            args,
            arg_fields,
            returns_value,
        } => {
            let (value, bb) = call_udf(row, name, args, arg_fields, *returns_value, tracker, udfs)?;
            let (vrefs, joint) = if T::TRACKING {
                if *returns_value {
                    (vec![(0u16, bb)], None)
                } else {
                    (Vec::new(), Some(bb))
                }
            } else {
                (Vec::new(), None)
            };
            Ok(Piece::Single {
                values: vec![value],
                vrefs,
                joint,
                members: Vec::new(),
            })
        }
        CGenItem::FlattenField { bag, arity } => {
            let bag_val = row.tuple.get(*bag)?.as_bag()?;
            let member_anns = row.member_anns(*bag);
            let mut rows = Vec::with_capacity(bag_val.len());
            for (j, t) in bag_val.iter().enumerate() {
                if t.arity() != *arity {
                    return Err(PigError::Eval(format!(
                        "FLATTEN: member tuple arity {} does not match schema arity {arity}",
                        t.arity()
                    )));
                }
                let ann = member_anns.and_then(|a| a.get(j));
                rows.push(PieceRow {
                    values: t.fields().to_vec(),
                    member_prov: if T::TRACKING {
                        ann.map(|a| a.prov)
                    } else {
                        None
                    },
                    vrefs: if T::TRACKING {
                        ann.map(|a| a.vrefs.clone()).unwrap_or_default()
                    } else {
                        Vec::new()
                    },
                });
            }
            Ok(Piece::Rows(rows))
        }
        CGenItem::FlattenUdf {
            name,
            args,
            arg_fields,
            returns_value,
            arity,
        } => {
            let (value, bb) = call_udf(row, name, args, arg_fields, *returns_value, tracker, udfs)?;
            let members: Vec<Tuple> = match value {
                Value::Bag(b) => b.into_tuples(),
                Value::Tuple(t) => vec![t],
                Value::Null => vec![],
                other => {
                    return Err(PigError::Eval(format!(
                        "FLATTEN({name}(…)) returned non-collection value of type {}",
                        other.type_name()
                    )))
                }
            };
            let mut rows = Vec::with_capacity(members.len());
            for t in members {
                if t.arity() != *arity {
                    return Err(PigError::Eval(format!(
                        "{name} returned tuple of arity {} but schema declares {arity}",
                        t.arity()
                    )));
                }
                let (member_prov, vrefs) = if T::TRACKING {
                    if *returns_value {
                        // The BB's value is embedded in the tuple: record
                        // it as a value reference on the fragment.
                        (None, vec![(0u16, bb)])
                    } else {
                        (Some(bb), Vec::new())
                    }
                } else {
                    (None, Vec::new())
                };
                rows.push(PieceRow {
                    values: t.fields().to_vec(),
                    member_prov,
                    vrefs,
                });
            }
            Ok(Piece::Rows(rows))
        }
    }
}

/// Invoke a UDF and create its black-box node over the inputs it read:
/// the source tuple's p-node, the v-refs of referenced fields, and the
/// v-refs of members of referenced bag fields.
fn call_udf<T: Tracker>(
    row: &ATuple<T::Ref>,
    name: &str,
    args: &[CExpr],
    arg_fields: &[usize],
    returns_value: bool,
    tracker: &mut T,
    udfs: &UdfRegistry,
) -> Result<(Value, T::Ref)> {
    let udf = udfs.get(name)?;
    let mut arg_values = Vec::with_capacity(args.len());
    for a in args {
        arg_values.push(a.eval(&row.tuple)?);
    }
    let value = udf.call(&arg_values)?;
    let bb = if T::TRACKING {
        let mut inputs = vec![row.ann.prov];
        for &f in arg_fields {
            if let Some(v) = row.ann.vref(f) {
                inputs.push(v);
            }
            if let Some(member_anns) = row.member_anns(f) {
                for ann in member_anns.iter() {
                    inputs.extend(ann.vref_nodes());
                }
            }
        }
        inputs.dedup();
        tracker.blackbox(name, &inputs, returns_value)
    } else {
        tracker.blackbox(name, &[], returns_value)
    };
    Ok((value, bb))
}

/// Cross-product the pieces and emit output rows.
fn assemble<T: Tracker>(
    row: &ATuple<T::Ref>,
    items: &[CGenItem],
    pieces: &[Piece<T::Ref>],
    out: &mut ARelation<T::Ref>,
    tracker: &mut T,
) -> Result<()> {
    // Working set of partial rows; FLATTEN pieces multiply it.
    struct Partial<R: Copy> {
        values: Vec<Value>,
        vrefs: Vec<(u16, R)>,
        joint_parts: Vec<R>,
        members: Vec<(u16, Arc<Vec<Ann<R>>>)>,
    }
    let mut partials = vec![Partial::<T::Ref> {
        values: Vec::with_capacity(out.schema.arity()),
        vrefs: Vec::new(),
        joint_parts: Vec::new(),
        members: Vec::new(),
    }];
    for (item, piece) in items.iter().zip(pieces) {
        match piece {
            Piece::Single {
                values,
                vrefs,
                joint,
                members,
            } => {
                for p in &mut partials {
                    let offset = p.values.len() as u16;
                    p.values.extend(values.iter().cloned());
                    p.vrefs.extend(vrefs.iter().map(|(i, r)| (offset + i, *r)));
                    p.members
                        .extend(members.iter().map(|(i, m)| (offset + i, m.clone())));
                    if let Some(j) = joint {
                        p.joint_parts.push(*j);
                    }
                }
            }
            Piece::Rows(rows) => {
                let mut next = Vec::with_capacity(partials.len() * rows.len());
                for p in &partials {
                    for r in rows {
                        let offset = p.values.len() as u16;
                        let mut values = p.values.clone();
                        values.extend(r.values.iter().cloned());
                        let mut vrefs = p.vrefs.clone();
                        vrefs.extend(r.vrefs.iter().map(|(i, rr)| (offset + i, *rr)));
                        let mut joint_parts = p.joint_parts.clone();
                        if let Some(m) = r.member_prov {
                            joint_parts.push(m);
                        }
                        next.push(Partial {
                            values,
                            vrefs,
                            joint_parts,
                            members: p.members.clone(),
                        });
                    }
                }
                partials = next;
            }
        }
        // Touch `item` for exhaustiveness bookkeeping (arities verified
        // by the planner; a debug assert keeps them honest here).
        debug_assert!(item.arity() > 0 || matches!(item, CGenItem::Star { arity: 0 }));
    }

    for p in partials {
        debug_assert_eq!(p.values.len(), out.schema.arity());
        let prov = if T::TRACKING {
            if p.joint_parts.is_empty() {
                // Pure projection: a fresh + node over the source tuple.
                tracker.plus(&[row.ann.prov])
            } else if p.joint_parts.len() == 1
                && items.len() == 1
                && matches!(
                    items[0],
                    CGenItem::Udf {
                        returns_value: false,
                        ..
                    } | CGenItem::FlattenUdf {
                        returns_value: false,
                        ..
                    }
                )
            {
                // Pure black-box derivation: the BB node *is* the tuple's
                // provenance (its inputs already include the source).
                p.joint_parts[0]
            } else {
                let mut parts = Vec::with_capacity(1 + p.joint_parts.len());
                parts.push(row.ann.prov);
                parts.extend(p.joint_parts.iter().copied());
                tracker.times(&parts)
            }
        } else {
            row.ann.prov
        };
        out.rows.push(ATuple {
            tuple: Tuple::new(p.values),
            ann: Ann {
                prov,
                vrefs: p.vrefs,
            },
            members: p.members,
        });
    }
    Ok(())
}
