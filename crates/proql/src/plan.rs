//! Physical plans.
//!
//! The [`crate::planner`] lowers parsed statements into these plans,
//! making every strategy choice explicit — which is what `EXPLAIN`
//! prints. Estimates (`est_*`) are in "nodes visited", the unit the
//! executor also reports back, so planner predictions can be checked
//! against observed work in tests.

use std::fmt;

use lipstick_core::NodeId;

use crate::ast::{NodeClass, Predicate, SemiringName, Shaping, WalkDir};

/// How a bounded/unbounded traversal runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkStrategy {
    /// Breadth-first sweep over adjacency lists, with any filter pushed
    /// into the traversal's collect step.
    Bfs { est_visited: usize },
    /// Lookup in the precomputed bidirectional closure
    /// ([`lipstick_core::query::ReachIndex`]); serves both walk
    /// directions. `est_visited` is the exact cone size read off the
    /// index at plan time, so the estimate matches observed work.
    ReachIndex { est_visited: usize },
    /// Paged session: BFS over the log footer's adjacency, faulting in
    /// node records only where the filter needs them.
    PagedBfs { total_records: usize },
}

/// Which footer postings list(s) drive a paged scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PostingsKey {
    /// `module = '…'` equality conjunct → the module's owned nodes.
    Module(String),
    /// Node class or `kind = '…'` conjunct → nodes of one kind.
    Kind(String),
    /// A predicate that only token-bearing nodes can satisfy (`token
    /// LIKE 'C%'`, `token = '…'`, ordered token comparisons) → the
    /// union of the `base_tuple` and `workflow_input` kind postings.
    TokenKinds,
    /// `module LIKE '…'` → the union of the postings of every module
    /// (resolved against the resident invocation table) matching the
    /// pattern.
    ModuleLike {
        pattern: String,
        modules: Vec<String>,
    },
}

impl fmt::Display for PostingsKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostingsKey::Module(m) => write!(f, "module '{m}'"),
            PostingsKey::Kind(k) => write!(f, "kind '{k}'"),
            PostingsKey::TokenKinds => f.write_str("token-bearing kinds"),
            PostingsKey::ModuleLike { pattern, modules } => {
                write!(f, "modules LIKE '{pattern}' ({} module(s))", modules.len())
            }
        }
    }
}

/// How a `MATCH` selects candidate nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Examine every visible node.
    FullScan { est_visited: usize },
    /// Drive the scan from the invocation table: enumerate the target
    /// module's invocations and walk only their role-owned nodes.
    ModuleScan {
        module: String,
        invocations: usize,
        est_visited: usize,
    },
    /// Paged session: read only the records listed in a footer postings
    /// list. `postings` of `total_records` is the records-read figure
    /// `EXPLAIN` reports.
    PostingsScan {
        key: PostingsKey,
        postings: usize,
        total_records: usize,
    },
    /// Paged session with no usable postings list: decode every record
    /// once, streaming.
    PagedFullScan { total_records: usize },
}

/// A plan producing a sorted node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetPlan {
    Scan {
        class: NodeClass,
        filter: Predicate,
        strategy: ScanStrategy,
        /// Stop after collecting this many matches — sound only on
        /// id-ordered candidate streams, which is where the planner
        /// plants it (see [`SetPlan::push_limit`]). Strategies that
        /// collect out of order (the resident module scan) ignore it;
        /// the shaping stage re-truncates, so an ignored hint costs
        /// work but never correctness.
        limit: Option<u64>,
    },
    Walk {
        root: NodeId,
        dir: WalkDir,
        depth: Option<u32>,
        filter: Predicate,
        strategy: WalkStrategy,
    },
    Subgraph {
        root: NodeId,
    },
    Union(Box<SetPlan>, Box<SetPlan>),
    Intersect(Box<SetPlan>, Box<SetPlan>),
}

impl SetPlan {
    /// The operands of the outermost run of one set operator, in source
    /// order: `((a UNION b) UNION c)` yields `[a, b, c]`. Operands of a
    /// *different* operator stay whole (they are one branch). These
    /// branches are independent — no branch reads another's output —
    /// which is what lets the executor fan them out across worker
    /// threads and still merge deterministically in source order.
    pub fn branches(&self) -> Vec<&SetPlan> {
        fn walk<'a>(plan: &'a SetPlan, union: bool, out: &mut Vec<&'a SetPlan>) {
            match plan {
                SetPlan::Union(a, b) if union => {
                    walk(a, union, out);
                    walk(b, union, out);
                }
                SetPlan::Intersect(a, b) if !union => {
                    walk(a, union, out);
                    walk(b, union, out);
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        match self {
            SetPlan::Union(..) => walk(self, true, &mut out),
            SetPlan::Intersect(..) => walk(self, false, &mut out),
            other => out.push(other),
        }
        out
    }
    /// Plant an early-exit limit where it is sound: id-ordered scans
    /// produce their matches ascending, so the first `n` matches *are*
    /// the query's first `n` rows; a union's first `n` members all sit
    /// within the first `n` of its operands. No hint goes where it
    /// would be unsound or ignored — the resident module scan (which
    /// collects in invocation-component order and sorts afterwards),
    /// intersections (a member may pair with an arbitrarily deep
    /// counterpart), walks, and subgraphs (BFS discovery order is not
    /// id order) all rely on the shaping stage's truncation instead,
    /// and their `EXPLAIN` output shows no early-exit marker.
    pub fn push_limit(&mut self, n: u64) {
        match self {
            SetPlan::Scan {
                strategy: ScanStrategy::ModuleScan { .. },
                ..
            } => {}
            SetPlan::Scan { limit, .. } => *limit = Some(n),
            SetPlan::Union(a, b) => {
                a.push_limit(n);
                b.push_limit(n);
            }
            SetPlan::Walk { .. } | SetPlan::Subgraph { .. } | SetPlan::Intersect(..) => {}
        }
    }
}

/// How a `DEPENDS` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependsStrategy {
    /// Full §4.2 deletion propagation on a scratch copy.
    Propagation,
    /// Consult the reachability closure first: if `n` is not a
    /// descendant of `n'`, deleting `n'` cannot touch it — answer
    /// `false` in O(1). The bidirectional index answers the same bit
    /// from either side (`n ∈ desc(n')` ⇔ `n' ∈ anc(n)`), so the test
    /// costs one word probe whichever closure is consulted. Fall back
    /// to propagation only on reachable pairs.
    ReachPrefilter,
    /// Paged session: propagate over the log, faulting in only the
    /// records the cascade actually examines.
    PagedPropagation,
}

/// A fully planned statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtPlan {
    /// A node-set query plus the shaping (aggregate / group / order /
    /// limit) applied to the produced set.
    Set {
        plan: SetPlan,
        shaping: Shaping,
    },
    /// `est_cone` is the ancestor-cone size read off the reach index at
    /// plan time (`None` without an index): expression extraction walks
    /// exactly the root's visible ancestors, so the index bounds the
    /// work before execution.
    Why {
        n: NodeId,
        est_cone: Option<usize>,
    },
    Depends {
        n: NodeId,
        n_prime: NodeId,
        strategy: DependsStrategy,
    },
    Delete(NodeId),
    /// Possibly several source-level `ZOOM OUT` statements fused into
    /// one atomic multi-module ZoomOut.
    ZoomOut {
        modules: Vec<String>,
        fused_from: usize,
    },
    /// `None` = every currently zoomed module (resolved at execution).
    ZoomIn {
        modules: Option<Vec<String>>,
        fused_from: usize,
    },
    Eval(NodeId, SemiringName),
    BuildIndex,
    DropIndex,
    /// `COMPACT` — merge the append backend's tail segment into a
    /// fresh sealed base segment (a no-op elsewhere).
    Compact,
    Stats,
    Explain(Box<StmtPlan>),
    /// Execute the inner plan under a span tracer and render the plan
    /// annotated with per-operator actuals.
    ExplainAnalyze(Box<StmtPlan>),
    /// `CHECK stmt` — run the static analyzer over the captured source
    /// text. The statement under analysis is never planned here: it may
    /// not even parse, and planning it would leak backend-specific
    /// strategies into output that must stay byte-identical everywhere.
    Check {
        source: String,
    },
    /// `EXPLAIN LINT stmt` — same analysis, `EXPLAIN`-family spelling.
    ExplainLint {
        source: String,
    },
}

impl fmt::Display for SetPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl SetPlan {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            SetPlan::Scan {
                class,
                filter,
                strategy,
                limit,
            } => {
                write!(f, "{pad}scan {}", class.name())?;
                if !filter.is_empty() {
                    write!(f, " where {filter}")?;
                }
                if let Some(n) = limit {
                    write!(f, " [early-exit after {n} match(es)]")?;
                }
                match strategy {
                    ScanStrategy::FullScan { est_visited } => {
                        write!(f, " [full scan, est visited {est_visited}]")
                    }
                    ScanStrategy::ModuleScan {
                        module,
                        invocations,
                        est_visited,
                    } => write!(
                        f,
                        " [module scan of '{module}' via invocation table, {invocations} \
                         invocations, est visited {est_visited}]"
                    ),
                    ScanStrategy::PostingsScan {
                        key,
                        postings,
                        total_records,
                    } => write!(
                        f,
                        " [paged postings scan on {key}, reads {postings} of {total_records} \
                         records]"
                    ),
                    ScanStrategy::PagedFullScan { total_records } => {
                        write!(f, " [paged full scan, reads {total_records} records]")
                    }
                }
            }
            SetPlan::Walk {
                root,
                dir,
                depth,
                filter,
                strategy,
            } => {
                let what = match dir {
                    WalkDir::Ancestors => "ancestors",
                    WalkDir::Descendants => "descendants",
                };
                write!(f, "{pad}walk {what} of {root}")?;
                match depth {
                    Some(d) => write!(f, " depth {d}")?,
                    None => write!(f, " depth unbounded")?,
                }
                if !filter.is_empty() {
                    write!(f, " where {filter} [filter pushed into traversal]")?;
                }
                match strategy {
                    WalkStrategy::Bfs { est_visited } => {
                        write!(f, " [bfs, est visited {est_visited}]")
                    }
                    WalkStrategy::ReachIndex { est_visited } => {
                        let closure = match dir {
                            WalkDir::Ancestors => "ancestor",
                            WalkDir::Descendants => "descendant",
                        };
                        write!(
                            f,
                            " [reach-index lookup, {closure} closure, cone {est_visited} node(s)]"
                        )
                    }
                    WalkStrategy::PagedBfs { total_records } => write!(
                        f,
                        " [paged bfs over footer adjacency, ≤ {total_records} records]"
                    ),
                }
            }
            SetPlan::Subgraph { root } => write!(f, "{pad}subgraph of {root}"),
            SetPlan::Union(a, b) => {
                writeln!(f, "{pad}union")?;
                a.fmt_indented(f, indent + 1)?;
                writeln!(f)?;
                b.fmt_indented(f, indent + 1)
            }
            SetPlan::Intersect(a, b) => {
                writeln!(f, "{pad}intersect")?;
                a.fmt_indented(f, indent + 1)?;
                writeln!(f)?;
                b.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for StmtPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmtPlan::Set { plan, shaping } => {
                write!(f, "{plan}")?;
                if !shaping.is_plain() {
                    // One backend-independent line: the resident and
                    // paged planners must describe identical shapes.
                    write!(f, "\n  shape: {}", shaping.describe())?;
                }
                Ok(())
            }
            StmtPlan::Why { n, est_cone } => {
                write!(f, "why {n} [graph expression extraction")?;
                if let Some(k) = est_cone {
                    write!(f, ", ancestor cone {k} node(s) via reach index")?;
                }
                f.write_str("]")
            }
            StmtPlan::Depends {
                n,
                n_prime,
                strategy,
            } => match strategy {
                DependsStrategy::Propagation => write!(
                    f,
                    "depends({n}, {n_prime}) [deletion propagation on scratch copy]"
                ),
                DependsStrategy::ReachPrefilter => write!(
                    f,
                    "depends({n}, {n_prime}) [reach-index prefilter, propagation only if \
                     reachable]"
                ),
                DependsStrategy::PagedPropagation => write!(
                    f,
                    "depends({n}, {n_prime}) [paged propagation over faulted neighbourhood]"
                ),
            },
            StmtPlan::Delete(n) => write!(f, "delete {n} propagate [in-place §4.2 deletion]"),
            StmtPlan::ZoomOut {
                modules,
                fused_from,
            } => {
                write!(f, "zoom out to {}", modules.join(", "))?;
                if *fused_from > 1 {
                    write!(f, " [fused from {fused_from} statements]")?;
                }
                Ok(())
            }
            StmtPlan::ZoomIn {
                modules,
                fused_from,
            } => {
                match modules {
                    Some(ms) => write!(f, "zoom in to {}", ms.join(", "))?,
                    None => write!(f, "zoom in to all zoomed modules")?,
                }
                if *fused_from > 1 {
                    write!(f, " [fused from {fused_from} statements]")?;
                }
                Ok(())
            }
            StmtPlan::Eval(n, s) => write!(f, "eval {n} in {} semiring", s.name()),
            StmtPlan::BuildIndex => write!(
                f,
                "build reach index [bidirectional closure, incrementally maintained]"
            ),
            StmtPlan::DropIndex => write!(f, "drop reach index"),
            StmtPlan::Compact => {
                write!(f, "compact [merge tail segment into a fresh sealed base]")
            }
            StmtPlan::Stats => write!(f, "graph statistics"),
            StmtPlan::Explain(inner) => write!(f, "explain\n  {inner}"),
            StmtPlan::ExplainAnalyze(inner) => write!(f, "explain analyze\n  {inner}"),
            StmtPlan::Check { .. } => {
                write!(f, "check [static analysis only, statement never executes]")
            }
            StmtPlan::ExplainLint { .. } => write!(
                f,
                "explain lint [static analysis only, statement never executes]"
            ),
        }
    }
}
