//! End-to-end evaluator tests, including the paper's running example.

use lipstick_core::graph::{GraphTracker, NoTracker};
use lipstick_core::semiring::eval::{eval_expr, Valuation};
use lipstick_core::semiring::natural::Natural;
use lipstick_core::semiring::Polynomial;
use lipstick_core::{NodeId, NodeKind, Semiring};
use lipstick_nrel::{bag, tuple, Bag, DataType, Schema, Tuple, Value};

use crate::eval::{run_script, Env};
use crate::udf::UdfRegistry;

fn cars_schema() -> Schema {
    Schema::named(&[("CarId", DataType::Str), ("Model", DataType::Str)])
}

fn requests_schema() -> Schema {
    Schema::named(&[
        ("UserId", DataType::Str),
        ("BidId", DataType::Str),
        ("Model", DataType::Str),
    ])
}

fn sold_schema() -> Schema {
    Schema::named(&[("CarId", DataType::Str), ("BidId", DataType::Str)])
}

/// The dealer state of Example 2.3.
fn dealer_env<T: lipstick_core::Tracker>(tracker: &mut T) -> Env<T::Ref> {
    let mut env = Env::new();
    env.bind_with_token_fn(
        "Cars",
        cars_schema(),
        vec![
            tuple!["C1", "Accord"],
            tuple!["C2", "Civic"],
            tuple!["C3", "Civic"],
        ],
        tracker,
        |_, _, t| t.get(0).unwrap().to_text().into_owned(),
    )
    .unwrap();
    env.bind_with_token_fn("SoldCars", sold_schema(), vec![], tracker, |_, i, _| {
        format!("S{i}")
    })
    .unwrap();
    env.bind_with_token_fn(
        "Requests",
        requests_schema(),
        vec![tuple!["P1", "B1", "Civic"]],
        tracker,
        |_, _, _| "I1".to_string(),
    )
    .unwrap();
    env
}

/// The state-manipulation query of Mdealer1, nearly verbatim from §2.2.
const DEALER_QSTATE: &str = r#"
    ReqModel = FOREACH Requests GENERATE Model;
    Inventory = JOIN Cars BY Model, ReqModel BY Model;
    SoldInventory = JOIN Inventory BY Cars::CarId, SoldCars BY CarId;
    CarsByModel = GROUP Inventory BY Cars::Model;
    SoldByModel = GROUP SoldInventory BY Inventory::Cars::Model;
    NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
    NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model, COUNT(SoldInventory) AS NumSold;
    AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model, NumSoldByModel BY Model;
    InventoryBids = FOREACH AllInfoByModel GENERATE FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel));
"#;

fn dealer_udfs() -> UdfRegistry {
    let mut udfs = UdfRegistry::new();
    let out_schema = Schema::named(&[
        ("BidId", DataType::Str),
        ("UserId", DataType::Str),
        ("Model", DataType::Str),
        ("Amount", DataType::Float),
    ]);
    // CalcBid(requests_bag, numcars_bag, numsold_bag) → bag of one bid
    // tuple per request. Price: base 20k, minus availability discount,
    // plus scarcity premium from sales.
    udfs.register("CalcBid", true, Some(out_schema), |args| {
        let requests = args[0].as_bag().map_err(|e| e.to_string())?;
        let avail = first_int(&args[1], 1)?;
        let sold = first_int(&args[2], 2)?;
        let mut out = Bag::empty();
        for req in requests.iter() {
            let user = req.get(0).map_err(|e| e.to_string())?.clone();
            let bid_id = req.get(1).map_err(|e| e.to_string())?.clone();
            let model = req.get(2).map_err(|e| e.to_string())?.clone();
            let amount = 20_000.0 - 500.0 * avail as f64 + 750.0 * sold as f64;
            out.push(Tuple::new(vec![bid_id, user, model, Value::Float(amount)]));
        }
        Ok(Value::Bag(out))
    });
    udfs
}

fn first_int(bag: &Value, field: usize) -> Result<i64, String> {
    let b = bag.as_bag().map_err(|e| e.to_string())?;
    match b.iter().next() {
        Some(t) => t
            .get(field)
            .map_err(|e| e.to_string())?
            .as_i64()
            .map_err(|e| e.to_string()),
        None => Ok(0),
    }
}

#[test]
fn example_2_3_intermediate_tables() {
    let mut tracker = NoTracker;
    let mut env = dealer_env(&mut tracker);
    run_script(DEALER_QSTATE, &mut env, &mut tracker, &dealer_udfs()).unwrap();

    // ReqModel = {(Civic)}
    let req_model = env.relation("ReqModel").unwrap();
    assert_eq!(req_model.tuples(), vec![tuple!["Civic"]]);

    // Inventory = {(C2, Civic, Civic), (C3, Civic, Civic)} (join keeps
    // both Model columns)
    let inv = env.relation("Inventory").unwrap();
    assert_eq!(inv.len(), 2);
    let ids: Vec<String> = inv
        .rows
        .iter()
        .map(|r| r.tuple.get(0).unwrap().to_text().into_owned())
        .collect();
    assert_eq!(ids, vec!["C2", "C3"]);

    // SoldInventory is empty
    assert!(env.relation("SoldInventory").unwrap().is_empty());

    // NumCarsByModel = {(Civic, 2)}
    let ncbm = env.relation("NumCarsByModel").unwrap();
    assert_eq!(ncbm.tuples(), vec![tuple!["Civic", 2i64]]);

    // NumSoldByModel is empty (GROUP of empty input)
    assert!(env.relation("NumSoldByModel").unwrap().is_empty());

    // AllInfoByModel: one Civic group with the request, the count, and
    // an empty sold bag
    let all = env.relation("AllInfoByModel").unwrap();
    assert_eq!(all.len(), 1);
    let row = &all.rows[0].tuple;
    assert_eq!(row.get(0).unwrap(), &Value::str("Civic"));
    assert_eq!(row.get(1).unwrap().as_bag().unwrap().len(), 1);
    assert_eq!(row.get(2).unwrap().as_bag().unwrap().len(), 1);
    assert_eq!(row.get(3).unwrap().as_bag().unwrap().len(), 0);

    // InventoryBids: one bid for B1/P1/Civic at 20000 - 500*2 = 19000
    let bids = env.relation("InventoryBids").unwrap();
    assert_eq!(bids.len(), 1);
    assert_eq!(bids.rows[0].tuple, tuple!["B1", "P1", "Civic", 19_000.0f64]);
}

#[test]
fn example_2_3_provenance_graph_shape() {
    let mut tracker = GraphTracker::new();
    let mut env = dealer_env(&mut tracker);
    run_script(DEALER_QSTATE, &mut env, &mut tracker, &dealer_udfs()).unwrap();
    let bid_prov = env.relation("InventoryBids").unwrap().rows[0].ann.prov;
    let g = tracker.finish();

    // The bid's provenance mentions the request and both Civics — but
    // not the Accord and not the (empty) sold tables.
    let expr = g.expr_of(bid_prov);
    let toks: Vec<&str> = expr.tokens().iter().map(|t| t.as_str()).collect();
    assert!(toks.contains(&"I1"), "expr: {expr}");
    assert!(toks.contains(&"C2"), "expr: {expr}");
    assert!(toks.contains(&"C3"), "expr: {expr}");
    assert!(!toks.contains(&"C1"), "expr: {expr}");

    // The graph contains the expected structural pieces: a COUNT agg
    // v-node with two tensors (C2, C3), a calcBid black box, δ nodes for
    // the GROUP/COGROUP stages.
    let count_nodes: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| matches!(n.kind, NodeKind::AggResult { .. }))
        .map(|(id, _)| id)
        .collect();
    assert!(!count_nodes.is_empty());
    let two_tensor_count = count_nodes.iter().any(|id| g.node(*id).preds().len() == 2);
    assert!(two_tensor_count, "COUNT over the two Civics");
    assert!(g.iter().any(
        |(_, n)| matches!(&n.kind, NodeKind::BlackBox { name, is_value: true } if name == "CalcBid")
    ));
    assert!(g.iter().any(|(_, n)| matches!(n.kind, NodeKind::Delta)));

    // The recorded aggregate value recomputes to 2 available Civics.
    let agg_id = count_nodes
        .into_iter()
        .find(|id| g.node(*id).preds().len() == 2)
        .unwrap();
    let av = g.agg_value_of(agg_id).unwrap();
    assert_eq!(av.current_value().unwrap(), Value::Int(2));
    // What-if: without C2 the count drops to 1 (Example 4.3).
    let v = Valuation::with_default(Natural(1)).set("C2", Natural(0));
    assert_eq!(av.evaluate(&v).unwrap(), Value::Int(1));
}

#[test]
fn counting_oracle_for_spju_scripts() {
    // Provenance specialized to the counting semiring must reproduce
    // bag multiplicities: run a script with duplicate inputs and check.
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_tokens(
        "R",
        Schema::named(&[("x", DataType::Int), ("y", DataType::Str)]),
        vec![
            tuple![1i64, "a"],
            tuple![1i64, "a"], // duplicate
            tuple![2i64, "b"],
        ],
        &mut tracker,
    )
    .unwrap();
    env.bind_with_tokens(
        "S",
        Schema::named(&[("x", DataType::Int), ("z", DataType::Str)]),
        vec![tuple![1i64, "p"], tuple![1i64, "q"], tuple![2i64, "r"]],
        &mut tracker,
    )
    .unwrap();
    run_script(
        "J = JOIN R BY x, S BY x; P = FOREACH J GENERATE R::y, S::z;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let p = env.relation("P").unwrap();
    let g = tracker.finish();
    // multiplicity of ('a','p') in P should be 2 (two copies of R row)
    let target = tuple!["a", "p"];
    let mult: usize = p.rows.iter().filter(|r| r.tuple == target).count();
    assert_eq!(mult, 2);
    // each such row's provenance evaluates to 1 under all-ones (each
    // row is one derivation), and the sum over equal rows gives the
    // multiplicity
    let total: u64 = p
        .rows
        .iter()
        .filter(|r| r.tuple == target)
        .map(|r| {
            let expr = g.expr_of(r.ann.prov);
            eval_expr(&expr, &Valuation::<Natural>::ones()).0
        })
        .sum();
    assert_eq!(total, 2);
}

#[test]
fn join_provenance_is_product() {
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![1i64]],
        &mut tracker,
        |_, i, _| format!("a{i}"),
    )
    .unwrap();
    env.bind_with_token_fn(
        "B",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![1i64]],
        &mut tracker,
        |_, i, _| format!("b{i}"),
    )
    .unwrap();
    run_script(
        "J = JOIN A BY x, B BY x;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let j = env.relation("J").unwrap();
    let g = tracker.finish();
    let poly = Polynomial::from_expr(&g.expr_of(j.rows[0].ann.prov)).unwrap();
    assert_eq!(poly.to_string(), "a0·b0");
}

#[test]
fn union_preserves_annotations_and_multiplicity() {
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    for name in ["A", "B"] {
        env.bind_with_token_fn(
            name,
            Schema::named(&[("x", DataType::Int)]),
            vec![tuple![7i64]],
            &mut tracker,
            move |n, _, _| format!("{n}tok"),
        )
        .unwrap();
    }
    run_script(
        "U = UNION A, B;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let u = env.relation("U").unwrap();
    assert_eq!(u.len(), 2);
    let g = tracker.finish();
    let exprs: Vec<String> = u
        .rows
        .iter()
        .map(|r| g.expr_of(r.ann.prov).to_string())
        .collect();
    assert!(exprs.contains(&"Atok".to_string()));
    assert!(exprs.contains(&"Btok".to_string()));
}

#[test]
fn distinct_delta_over_duplicates() {
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![1i64], tuple![1i64], tuple![2i64]],
        &mut tracker,
        |_, i, _| format!("t{i}"),
    )
    .unwrap();
    run_script(
        "D = DISTINCT A;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let d = env.relation("D").unwrap();
    assert_eq!(d.len(), 2);
    let g = tracker.finish();
    let expr = g.expr_of(d.rows[0].ann.prov).to_string();
    assert_eq!(expr, "δ(t0 + t1)");
}

#[test]
fn group_then_flatten_roundtrip() {
    // FLATTEN(GROUP x) reproduces the rows (with group key prepended);
    // the provenance of each flattened row is ·(δ(members), member).
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("m", DataType::Str), ("v", DataType::Int)]),
        vec![tuple!["x", 1i64], tuple!["x", 2i64], tuple!["y", 3i64]],
        &mut tracker,
        |_, i, _| format!("t{i}"),
    )
    .unwrap();
    run_script(
        "G = GROUP A BY m; F = FOREACH G GENERATE group, FLATTEN(A);",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let f = env.relation("F").unwrap();
    assert_eq!(f.len(), 3);
    assert_eq!(f.rows[0].tuple, tuple!["x", "x", 1i64]);
    let g = tracker.finish();
    let expr = g.expr_of(f.rows[0].ann.prov).to_string();
    assert!(expr.contains("δ(t0 + t1)"), "expr: {expr}");
    assert!(expr.contains("·"), "joint with member: {expr}");
}

#[test]
fn filter_passes_provenance_through() {
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![1i64], tuple![5i64]],
        &mut tracker,
        |_, i, _| format!("t{i}"),
    )
    .unwrap();
    let nodes_before = tracker.graph().len();
    run_script(
        "B = FILTER A BY x > 3;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let b = env.relation("B").unwrap();
    assert_eq!(b.len(), 1);
    // FILTER created no provenance nodes
    assert_eq!(tracker.graph().len(), nodes_before);
    let g = tracker.finish();
    assert_eq!(g.expr_of(b.rows[0].ann.prov).to_string(), "t1");
}

#[test]
fn order_and_limit_keep_annotations() {
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![3i64], tuple![1i64], tuple![2i64]],
        &mut tracker,
        |_, i, _| format!("t{i}"),
    )
    .unwrap();
    run_script(
        "S = ORDER A BY x DESC; T = LIMIT S 2;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let t = env.relation("T").unwrap();
    assert_eq!(t.tuples(), vec![tuple![3i64], tuple![2i64]]);
    let g = tracker.finish();
    assert_eq!(g.expr_of(t.rows[0].ann.prov).to_string(), "t0");
    assert_eq!(g.expr_of(t.rows[1].ann.prov).to_string(), "t2");
}

#[test]
fn group_all_min_aggregation() {
    // The aggregator module Magg: best (minimum) bid via GROUP ALL.
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "Bids",
        Schema::named(&[("Model", DataType::Str), ("Price", DataType::Float)]),
        vec![
            tuple!["Civic", 19_000.0f64],
            tuple!["Civic", 21_500.0f64],
            tuple!["Civic", 18_250.0f64],
        ],
        &mut tracker,
        |_, i, _| format!("bid{i}"),
    )
    .unwrap();
    run_script(
        "G = GROUP Bids ALL; Best = FOREACH G GENERATE MIN(Bids.Price) AS Best;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let best = env.relation("Best").unwrap();
    assert_eq!(best.rows[0].tuple, tuple![18_250.0f64]);
    // The MIN v-node has three tensors; deleting bid2's token makes the
    // recomputed minimum 19000.
    let vref = best.rows[0].ann.vref(0).unwrap();
    let g = tracker.finish();
    let av = g.agg_value_of(vref).unwrap();
    assert_eq!(av.terms.len(), 3);
    let v = Valuation::with_default(Natural(1)).set("bid2", Natural(0));
    assert_eq!(av.evaluate(&v).unwrap(), Value::Float(19_000.0));
}

#[test]
fn empty_group_of_empty_input_is_empty() {
    let mut tracker = NoTracker;
    let mut env = Env::new();
    env.bind_with_tokens(
        "A",
        Schema::named(&[("x", DataType::Int)]),
        vec![],
        &mut tracker,
    )
    .unwrap();
    run_script(
        "G = GROUP A BY x; C = FOREACH G GENERATE group, COUNT(A);",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    assert!(env.relation("G").unwrap().is_empty());
    assert!(env.relation("C").unwrap().is_empty());
}

#[test]
fn no_tracker_and_graph_tracker_agree_on_data() {
    // The two tracker instantiations must compute identical relations.
    let mut t1 = NoTracker;
    let mut env1 = dealer_env(&mut t1);
    run_script(DEALER_QSTATE, &mut env1, &mut t1, &dealer_udfs()).unwrap();

    let mut t2 = GraphTracker::new();
    let mut env2 = dealer_env(&mut t2);
    run_script(DEALER_QSTATE, &mut env2, &mut t2, &dealer_udfs()).unwrap();

    for alias in [
        "ReqModel",
        "Inventory",
        "SoldInventory",
        "NumCarsByModel",
        "NumSoldByModel",
        "AllInfoByModel",
        "InventoryBids",
    ] {
        let b1 = Bag::from_tuples(env1.relation(alias).unwrap().tuples());
        let b2 = Bag::from_tuples(env2.relation(alias).unwrap().tuples());
        assert_eq!(b1, b2, "relation {alias} differs between trackers");
    }
}

#[test]
fn self_join_squares_annotation() {
    // Joining a relation with a renamed copy of itself squares tokens.
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![1i64]],
        &mut tracker,
        |_, _, _| "a".into(),
    )
    .unwrap();
    run_script(
        "B = FOREACH A GENERATE x; J = JOIN A BY x, B BY x;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let j = env.relation("J").unwrap();
    let g = tracker.finish();
    let poly = Polynomial::from_expr(&g.expr_of(j.rows[0].ann.prov)).unwrap();
    assert_eq!(poly.to_string(), "a^2");
}

#[test]
fn agg_over_projected_group_bag() {
    // Projecting the nested bag keeps member annotations, so a later
    // FOREACH can still aggregate with correct tensors.
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "A",
        Schema::named(&[("m", DataType::Str), ("v", DataType::Int)]),
        vec![tuple!["x", 10i64], tuple!["x", 20i64]],
        &mut tracker,
        |_, i, _| format!("t{i}"),
    )
    .unwrap();
    run_script(
        "G = GROUP A BY m; H = FOREACH G GENERATE group, A; S = FOREACH H GENERATE group, SUM(A.v);",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let s = env.relation("S").unwrap();
    assert_eq!(s.rows[0].tuple, tuple!["x", 30i64]);
    let vref = s.rows[0].ann.vref(1).unwrap();
    let g = tracker.finish();
    let av = g.agg_value_of(vref).unwrap();
    // tensors pair t0⊗10 and t1⊗20
    assert_eq!(av.terms.len(), 2);
    let v = Valuation::with_default(Natural(1)).set("t1", Natural(0));
    assert_eq!(av.evaluate(&v).unwrap(), Value::Int(10));
}

#[test]
fn eval_errors_are_reported_not_panicked() {
    let mut tracker = NoTracker;
    let mut env = Env::new();
    env.bind_with_tokens(
        "A",
        Schema::named(&[("x", DataType::Str)]),
        vec![tuple!["abc"]],
        &mut tracker,
    )
    .unwrap();
    // negating a string is a runtime type error
    let err = run_script(
        "B = FOREACH A GENERATE -x;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("negate"));
}

#[test]
fn bag_equality_of_nested_results_is_order_insensitive() {
    let mut tracker = NoTracker;
    let mut env = Env::new();
    env.bind_with_tokens(
        "A",
        Schema::named(&[("m", DataType::Str)]),
        vec![tuple!["x"], tuple!["y"]],
        &mut tracker,
    )
    .unwrap();
    run_script(
        "G = GROUP A BY m;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let g = env.relation("G").unwrap();
    let got = Bag::from_tuples(g.tuples());
    let want = bag![
        tuple![Value::str("y"), Value::Bag(bag![tuple!["y"]])],
        tuple![Value::str("x"), Value::Bag(bag![tuple!["x"]])],
    ];
    assert_eq!(got, want);
}

mod proptests {
    use super::*;
    use lipstick_core::semiring::boolean::Bools;
    use lipstick_core::ProvGraph;
    use proptest::prelude::*;

    const SPJ_SCRIPT: &str =
        "F = FILTER R BY b > 0; J = JOIN F BY a, S BY a; P = FOREACH J GENERATE F::b, S::c;";

    /// Run the fixed SPJ pipeline with provenance; return the output
    /// relation and graph.
    fn run_pipeline(
        rows_r: &[(i64, i64)],
        rows_s: &[(i64, i64)],
    ) -> (super::super::context::ARelation<NodeId>, ProvGraph) {
        let mut tracker = GraphTracker::new();
        let mut env = Env::new();
        env.bind_with_token_fn(
            "R",
            Schema::named(&[("a", DataType::Int), ("b", DataType::Int)]),
            rows_r.iter().map(|(a, b)| tuple![*a, *b]).collect(),
            &mut tracker,
            |_, i, _| format!("r{i}"),
        )
        .unwrap();
        env.bind_with_token_fn(
            "S",
            Schema::named(&[("a", DataType::Int), ("c", DataType::Int)]),
            rows_s.iter().map(|(a, c)| tuple![*a, *c]).collect(),
            &mut tracker,
            |_, i, _| format!("s{i}"),
        )
        .unwrap();
        run_script(SPJ_SCRIPT, &mut env, &mut tracker, &UdfRegistry::new()).unwrap();
        let p = env.take("P").unwrap();
        (p, tracker.finish())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// What-if oracle: evaluating each output's provenance in the
        /// boolean semiring with one input token deleted must agree with
        /// re-running the pipeline on the input minus that tuple.
        #[test]
        fn deletion_agrees_with_reexecution(
            rows_r in prop::collection::vec((0i64..4, -2i64..4), 1..6),
            rows_s in prop::collection::vec((0i64..4, 0i64..4), 0..6),
            victim_seed in 0usize..6,
        ) {
            let victim = victim_seed % rows_r.len();
            let victim_token = format!("r{victim}");

            let (p, g) = run_pipeline(&rows_r, &rows_s);
            let survived: Vec<Tuple> = p
                .rows
                .iter()
                .filter(|row| {
                    let expr = g.expr_of(row.ann.prov);
                    eval_expr(
                        &expr,
                        &Valuation::<Bools>::with_default(Bools::one())
                            .set(&victim_token, Bools(false)),
                    )
                    .0
                })
                .map(|row| row.tuple.clone())
                .collect();

            let mut reduced = rows_r.clone();
            reduced.remove(victim);
            let (p_reduced, _) = run_pipeline(&reduced, &rows_s);

            prop_assert_eq!(
                Bag::from_tuples(survived),
                Bag::from_tuples(p_reduced.tuples())
            );
        }

        /// Counting oracle: under the all-ones valuation every output
        /// row's polynomial evaluates to exactly 1 (one derivation per
        /// emitted row in an SPJ pipeline).
        #[test]
        fn each_row_has_one_derivation(
            rows_r in prop::collection::vec((0i64..3, -2i64..4), 0..5),
            rows_s in prop::collection::vec((0i64..3, 0i64..4), 0..5),
        ) {
            let (p, g) = run_pipeline(&rows_r, &rows_s);
            for row in &p.rows {
                let expr = g.expr_of(row.ann.prov);
                let n = eval_expr(&expr, &Valuation::<Natural>::ones());
                prop_assert_eq!(n, Natural(1));
            }
        }
    }
}
