//! # lipstick-workflow — the workflow model (paper §2.2, §3.1)
//!
//! Workflows are connected DAGs whose nodes are *module instances*: a
//! module is specified by input/state/output schemas plus two Pig Latin
//! queries, `Qstate : Sin × Sstate → Sstate` (state manipulation) and
//! `Qout : Sin × Sstate → Sout` (output). Edges carry relation names
//! from a producer's `Sout` to a consumer's `Sin`. Input nodes receive
//! their `Sin` from outside.
//!
//! [`exec`] implements the reference semantics of Definition 2.3: pick
//! a topological order, run each module's queries on its input and
//! current state, commit the new state, copy outputs along edges —
//! and, with a [`lipstick_core::GraphTracker`], capture workflow-level
//! provenance: `m` nodes per invocation, `i`/`o` nodes per module
//! input/output tuple, `s` nodes per state tuple (§3.1).
//!
//! [`parallel`] is the Hadoop substitute for the paper's Figure 5(c):
//! ready modules execute on a pool of `reducers` worker threads, each
//! building a local provenance fragment that is merged into the global
//! graph when the module commits (serializable, so the input-output
//! semantics equals a reference order — §2.2's serializability note).

pub mod dag;
pub mod error;
pub mod exec;
pub mod module;
pub mod parallel;
#[cfg(test)]
mod tests;

pub use dag::{NodeIdx, Workflow, WorkflowBuilder};
pub use error::{Result, WfError};
pub use exec::{execute_once, execute_sequence, ExecutionOutput, WorkflowInput, WorkflowState};
pub use module::ModuleSpec;
