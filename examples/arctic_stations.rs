//! Arctic stations: run a dense-topology workflow, persist the
//! provenance graph through the storage layer, reload it, and query it
//! — the full Tracker → disk → Query Processor pipeline of §5.1.
//!
//! ```sh
//! cargo run --example arctic_stations
//! ```

use lipstick::core::query::subgraph;
use lipstick::core::{GraphTracker, NodeKind};
use lipstick::prelude::stats;
use lipstick::storage::{load_graph, write_graph};
use lipstick::workflowgen::arctic::{self, ArcticParams, Selectivity, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ArcticParams {
        stations: 9,
        topology: Topology::Dense { fanout: 3 },
        selectivity: Selectivity::Month,
        num_exec: 4,
        seed: 17,
    };
    let mut tracker = GraphTracker::new();
    let (_, _, outputs) = arctic::run(&params, &mut tracker)?;
    for (e, out) in outputs.iter().enumerate() {
        let row = &out.relation("Mout", "MinTemp").expect("output").rows[0];
        println!("execution {e}: overall minimum temperature = {}", row.tuple);
    }

    // Persist through the provenance log and load it back (the Query
    // Processor's path, whose cost Figure 6 measures).
    let graph = tracker.finish();
    let path = std::env::temp_dir().join("arctic.lpstk");
    write_graph(&graph, &path)?;
    let loaded = load_graph(&path)?;
    println!(
        "\npersisted {} bytes; reloaded graph: {}",
        std::fs::metadata(&path)?.len(),
        stats(&loaded)
    );

    // Query the reloaded graph: subgraph of the highest-fanout node
    // (typically a station's query input or a hot observation).
    let root = loaded.top_fanout_nodes(1)[0];
    let sg = subgraph(&loaded, root)?;
    println!(
        "subgraph of {} ({}): {} nodes, {} ancestors, {} descendants",
        root,
        loaded.node(root).kind.label(),
        sg.len(),
        sg.ancestor_count,
        sg.descendant_count
    );

    // The provenance is fine-grained: the last minimum depends only on
    // the month-matching observations, not all 480×9.
    let obs_total = loaded
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::BaseTuple { .. }))
        .count();
    let last_out = loaded
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .last()
        .expect("outputs exist");
    let anc = lipstick::core::query::subgraph::ancestors(&loaded, last_out)?;
    let obs_used = anc
        .iter()
        .filter(|id| matches!(loaded.node(**id).kind, NodeKind::BaseTuple { .. }))
        .count();
    println!(
        "final output depends on {obs_used} of {obs_total} observation tuples ({:.1}%)",
        100.0 * obs_used as f64 / obs_total as f64
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
