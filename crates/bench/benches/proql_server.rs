//! lipstick-serve throughput: the plan-keyed result cache and the
//! worker pool under repeated interactive workloads.
//!
//! - `proql_server_cache`: one client replaying the same `MATCH`-heavy
//!   statement mix against two servers — cache enabled vs disabled.
//!   Hits skip planning, execution, and rendering, so the hot-cache
//!   server must win.
//! - `proql_server_clients`: the same fixed query volume issued by 1
//!   vs N concurrent clients against a paged backend; the worker pool
//!   and the `Send + Sync` paged log let N clients share the work.
//!   The speedup tracks the machine's core count (printed with the
//!   results): on a single-core box the expected result is parity —
//!   i.e. concurrency costs nothing — not a linear win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipstick_bench::run_dealers;
use lipstick_proql::Session;
use lipstick_serve::{Client, Server, ServerConfig, ServerHandle};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::DealersParams;

/// A ~10k-node dealers provenance log on disk, served paged.
fn serve_paged(workers: usize, cache_capacity: usize) -> ServerHandle {
    let params = DealersParams {
        num_cars: 200,
        num_exec: 10,
        seed: 1_000_003,
    };
    let graph = run_dealers(&params, true).graph.expect("tracking on");
    let path = std::env::temp_dir().join(format!(
        "lipstick-bench-server-{workers}-{cache_capacity}.lpstk"
    ));
    write_graph_v2(&graph, &path).unwrap();
    let session = Session::open(&path).unwrap();
    assert!(session.is_paged());
    Server::new(
        session,
        ServerConfig {
            workers,
            cache_capacity,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap()
}

/// The repeated interactive mix: module-filtered and kind-filtered
/// MATCHes plus a ranged predicate — the queries an exploring user
/// re-issues while narrowing in.
const WORKLOAD: &[&str] = &[
    "MATCH m-nodes WHERE module = 'Mdealer1'",
    "MATCH base-nodes",
    "MATCH nodes WHERE module = 'Mdealer1' AND execution < 3",
    "MATCH o-nodes WHERE execution >= 5",
];

fn proql_server_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_server_cache");
    group.sample_size(10);
    for (label, capacity) in [("uncached", 0usize), ("hot_cache", 256)] {
        let handle = serve_paged(2, capacity);
        let mut client = Client::connect(handle.addr()).unwrap();
        // Prime: the hot-cache server answers everything once so the
        // timed loop measures steady-state hits.
        for stmt in WORKLOAD {
            assert!(client.query(stmt).unwrap().is_ok());
        }
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                for _ in 0..5 {
                    for stmt in WORKLOAD {
                        let reply = client.query(stmt).unwrap();
                        assert!(reply.is_ok());
                    }
                }
            })
        });
        let (hits, misses) = handle.cache_stats();
        println!("  {label}: {hits} hits / {misses} misses");
        if capacity > 0 {
            assert!(hits > misses, "hot server must serve mostly hits");
        } else {
            assert_eq!(hits, 0, "disabled cache must never hit");
        }
        drop(client);
        handle.shutdown();
    }
    group.finish();
}

fn proql_server_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_server_clients");
    group.sample_size(10);
    println!(
        "  (available parallelism: {} core(s); expect ~parity on 1)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    // Fixed total volume, split across the clients; the cache is off so
    // every query costs real execution and the pool has work to share.
    // Volume is high enough that per-iteration connect/spawn overhead
    // does not drown the serving time being measured.
    const TOTAL_QUERIES: usize = 512;
    for clients in [1usize, 4] {
        let handle = serve_paged(4, 0);
        let addr = handle.addr();
        group.bench_function(BenchmarkId::from_parameter(clients), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..clients {
                        scope.spawn(|| {
                            let mut client = Client::connect(addr).unwrap();
                            for i in 0..TOTAL_QUERIES / clients {
                                let stmt = WORKLOAD[i % WORKLOAD.len()];
                                assert!(client.query(stmt).unwrap().is_ok());
                            }
                        });
                    }
                });
            })
        });
        handle.shutdown();
    }
    group.finish();
}

criterion_group!(benches, proql_server_cache, proql_server_clients);
criterion_main!(benches);
