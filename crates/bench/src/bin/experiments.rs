//! Regenerate every figure of the Lipstick paper's evaluation (§5.4–5.6).
//!
//! ```text
//! experiments [fig5a|fig5b|fig5c|fig6a|fig6b|fig6c|fig7a|fig7b|fig7c|del|fine|all] [--scale S]
//! ```
//!
//! `--scale` multiplies workload sizes (default 1 ≈ laptop-friendly;
//! the paper's full sizes correspond to roughly `--scale 20`). Output
//! is aligned text tables — the same rows/series the paper plots.

use std::env;

use lipstick_bench::*;
use lipstick_workflowgen::{ArcticParams, DealersParams, Selectivity, Topology};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale: f64 = 1.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            name => {
                which = name.to_string();
                i += 1;
            }
        }
    }
    let run = |name: &str| which == "all" || which == name;

    if run("fig5a") {
        fig5a(scale);
    }
    if run("fig5b") {
        fig5b(scale);
    }
    if run("fig5c") {
        fig5c(scale);
    }
    if run("fig6a") {
        fig6a(scale);
    }
    if run("fig6b") {
        fig6b(scale);
    }
    if run("fig6c") {
        fig6c(scale);
    }
    if run("fig7a") {
        fig7a(scale);
    }
    if run("fig7b") {
        fig7b(scale);
    }
    if run("fig7c") {
        fig7c(scale);
    }
    if run("del") {
        exp_del(scale);
    }
    if run("fine") {
        exp_fine(scale);
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(1.0) as usize
}

/// Fig 5(a): dealership execution time vs number of executions,
/// with and without provenance.
fn fig5a(scale: f64) {
    println!("\n== FIG5a: Car dealerships, execution time vs numExec ==");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "numExec", "no-prov (ms)", "prov (ms)", "overhead"
    );
    let num_cars = scaled(1000, scale);
    for num_exec in [10, 20, 40, 60, 80, 100] {
        let params = DealersParams {
            num_cars,
            num_exec,
            seed: 1_000_003, // picky buyer: runs use all executions
        };
        let without = run_dealers(&params, false);
        let with = run_dealers(&params, true);
        println!(
            "{:>8} {:>16.2} {:>16.2} {:>8.2}x",
            num_exec,
            ms(without.elapsed),
            ms(with.elapsed),
            ms(with.elapsed) / ms(without.elapsed).max(1e-9)
        );
    }
}

/// Fig 5(b): Arctic stations execution time by topology, with and
/// without provenance (24 stations, month selectivity).
fn fig5b(scale: f64) {
    println!("\n== FIG5b: Arctic stations (24 modules, selectivity=month) ==");
    println!(
        "{:>18} {:>8} {:>16} {:>16} {:>9}",
        "topology", "numExec", "no-prov (ms)", "prov (ms)", "overhead"
    );
    let num_exec = scaled(20, scale);
    for topology in [
        Topology::Parallel,
        Topology::Dense { fanout: 6 },
        Topology::Serial,
    ] {
        let params = ArcticParams {
            stations: 24,
            topology,
            selectivity: Selectivity::Month,
            num_exec,
            seed: 7,
        };
        let without = run_arctic(&params, false);
        let with = run_arctic(&params, true);
        println!(
            "{:>18} {:>8} {:>16.2} {:>16.2} {:>8.1}%",
            topology.to_string(),
            num_exec,
            ms(without.elapsed),
            ms(with.elapsed),
            (ms(with.elapsed) / ms(without.elapsed).max(1e-9) - 1.0) * 100.0
        );
    }
}

/// Fig 5(c): % improvement vs number of reducers (parallel executor).
fn fig5c(scale: f64) {
    println!("\n== FIG5c: Car dealerships, % improvement vs reducers ==");
    println!(
        "{:>9} {:>16} {:>16} {:>14} {:>14}",
        "reducers", "no-prov (ms)", "prov (ms)", "no-prov impr", "prov impr"
    );
    // The paper's full inventory (20 000 cars) makes the four dealer
    // modules the dominant cost — the portion the parallel phase can
    // absorb. Each point is the best of three trials (the paper notes
    // same-reducer-count differences are noise).
    let params = DealersParams {
        num_cars: scaled(20_000, scale),
        num_exec: 2,
        seed: 1_000_003,
    };
    let best_of = |reducers: usize, with_prov: bool| {
        (0..3)
            .map(|_| ms(run_dealers_parallel(&params, reducers, with_prov)))
            .fold(f64::INFINITY, f64::min)
    };
    let base_no = best_of(1, false);
    let base_yes = best_of(1, true);
    for reducers in [1usize, 2, 3, 4, 6, 8, 16, 32, 54] {
        let no = best_of(reducers, false);
        let yes = best_of(reducers, true);
        println!(
            "{:>9} {:>16.2} {:>16.2} {:>13.1}% {:>13.1}%",
            reducers,
            no,
            yes,
            (1.0 - no / base_no) * 100.0,
            (1.0 - yes / base_yes) * 100.0
        );
    }
}

/// Fig 6(a): graph building time vs number of nodes (dealers).
fn fig6a(scale: f64) {
    println!("\n== FIG6a: graph build time vs #nodes (Car dealerships) ==");
    println!("{:>10} {:>12} {:>14}", "numExec", "nodes", "build (ms)");
    let num_cars = scaled(1000, scale);
    for num_exec in [5, 10, 20, 40, 80] {
        let params = DealersParams {
            num_cars,
            num_exec,
            seed: 1_000_003,
        };
        let run = run_dealers(&params, true);
        let g = run.graph.expect("tracking on");
        let (build, nodes) = measure_graph_build(&g);
        println!("{:>10} {:>12} {:>14.2}", num_exec, nodes, ms(build));
    }
}

/// Fig 6(b): build time by selectivity, dense fan-out 2, varying
/// module count.
fn fig6b(scale: f64) {
    println!("\n== FIG6b: graph build time, Arctic dense fan-out 2 ==");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12}",
        "modules", "all (ms)", "season (ms)", "month (ms)", "year (ms)"
    );
    let num_exec = scaled(10, scale);
    for stations in [2usize, 6, 12, 24] {
        let mut row = format!("{stations:>9}");
        for selectivity in [
            Selectivity::All,
            Selectivity::Season,
            Selectivity::Month,
            Selectivity::Year,
        ] {
            let params = ArcticParams {
                stations,
                topology: Topology::Dense { fanout: 2 },
                selectivity,
                num_exec,
                seed: 7,
            };
            let run = run_arctic(&params, true);
            let g = run.graph.expect("tracking on");
            let (build, _) = measure_graph_build(&g);
            row.push_str(&format!(" {:>12.2}", ms(build)));
        }
        println!("{row}");
    }
}

/// Fig 6(c): build time by selectivity across topologies, 24 modules.
fn fig6c(scale: f64) {
    println!("\n== FIG6c: graph build time, Arctic 24 modules ==");
    println!(
        "{:>18} {:>12} {:>12} {:>12} {:>12}",
        "topology", "all (ms)", "season (ms)", "month (ms)", "year (ms)"
    );
    let num_exec = scaled(10, scale);
    for topology in [
        Topology::Serial,
        Topology::Parallel,
        Topology::Dense { fanout: 2 },
        Topology::Dense { fanout: 3 },
        Topology::Dense { fanout: 6 },
        Topology::Dense { fanout: 12 },
    ] {
        let mut row = format!("{:>18}", topology.to_string());
        for selectivity in [
            Selectivity::All,
            Selectivity::Season,
            Selectivity::Month,
            Selectivity::Year,
        ] {
            let params = ArcticParams {
                stations: 24,
                topology,
                selectivity,
                num_exec,
                seed: 7,
            };
            let run = run_arctic(&params, true);
            let g = run.graph.expect("tracking on");
            let (build, _) = measure_graph_build(&g);
            row.push_str(&format!(" {:>12.2}", ms(build)));
        }
        println!("{row}");
    }
}

/// Fig 7(a): ZoomOut/ZoomIn time vs graph size, dealer vs aggregate.
fn fig7a(scale: f64) {
    println!("\n== FIG7a: zoom time vs graph size (Car dealerships) ==");
    println!(
        "{:>8} {:>10} {:>18} {:>17} {:>18} {:>17}",
        "numExec", "nodes", "dealer zoomout", "dealer zoomin", "agg zoomout", "agg zoomin"
    );
    let num_cars = scaled(1000, scale);
    for num_exec in [10, 20, 40, 80] {
        let params = DealersParams {
            num_cars,
            num_exec,
            seed: 1_000_003,
        };
        let run = run_dealers(&params, true);
        let mut g = run.graph.expect("tracking on");
        let nodes = g.len();
        let (d_out, d_in) = measure_zoom(&mut g, "Mdealer1");
        let (a_out, a_in) = measure_zoom(&mut g, "Magg");
        println!(
            "{:>8} {:>10} {:>15.2}ms {:>14.2}ms {:>15.2}ms {:>14.2}ms",
            num_exec,
            nodes,
            ms(d_out),
            ms(d_in),
            ms(a_out),
            ms(a_in)
        );
    }
}

/// Fig 7(b): subgraph query time vs result size (dealers, 50 roots).
fn fig7b(scale: f64) {
    println!("\n== FIG7b: subgraph time vs result size (Car dealerships) ==");
    let params = DealersParams {
        num_cars: scaled(1000, scale),
        num_exec: scaled(40, scale),
        seed: 1_000_003,
    };
    let run = run_dealers(&params, true);
    let g = run.graph.expect("tracking on");
    println!("graph: {}", graph_summary(&g));
    println!("{:>16} {:>14}", "subgraph nodes", "time (ms)");
    let mut pairs = measure_subgraphs(&g, 50);
    pairs.sort();
    for (size, t) in pairs.iter().step_by((pairs.len() / 12).max(1)) {
        println!("{:>16} {:>14.3}", size, ms(*t));
    }
}

/// Fig 7(c): subgraph time by selectivity and topology (Arctic, 24
/// modules).
fn fig7c(scale: f64) {
    println!("\n== FIG7c: subgraph time, Arctic 24 modules (mean of 50 roots) ==");
    println!(
        "{:>18} {:>12} {:>12} {:>12} {:>12}",
        "topology", "all (ms)", "season (ms)", "month (ms)", "year (ms)"
    );
    let num_exec = scaled(10, scale);
    for topology in [
        Topology::Serial,
        Topology::Parallel,
        Topology::Dense { fanout: 2 },
        Topology::Dense { fanout: 3 },
        Topology::Dense { fanout: 6 },
        Topology::Dense { fanout: 12 },
    ] {
        let mut row = format!("{:>18}", topology.to_string());
        for selectivity in [
            Selectivity::All,
            Selectivity::Season,
            Selectivity::Month,
            Selectivity::Year,
        ] {
            let params = ArcticParams {
                stations: 24,
                topology,
                selectivity,
                num_exec,
                seed: 7,
            };
            let run = run_arctic(&params, true);
            let g = run.graph.expect("tracking on");
            let pairs = measure_subgraphs(&g, 50);
            let mean = pairs.iter().map(|(_, t)| ms(*t)).sum::<f64>() / pairs.len().max(1) as f64;
            row.push_str(&format!(" {:>12.3}", mean));
        }
        println!("{row}");
    }
}

/// §5.6 in-text: deletion propagation timings.
fn exp_del(scale: f64) {
    println!("\n== EXP-DEL: deletion propagation (Car dealerships, 50 roots) ==");
    let params = DealersParams {
        num_cars: scaled(1000, scale),
        num_exec: scaled(40, scale),
        seed: 1_000_003,
    };
    let run = run_dealers(&params, true);
    let g = run.graph.expect("tracking on");
    let pairs = measure_deletions(&g, 50);
    let times: Vec<f64> = pairs.iter().map(|(_, t)| ms(*t)).collect();
    let max = times.iter().cloned().fold(0.0, f64::max);
    let sub_ms = times.iter().filter(|t| **t < 1.0).count();
    println!(
        "graph: {} | {} deletions, {} under 1 ms, max {:.2} ms",
        graph_summary(&g),
        times.len(),
        sub_ms,
        max
    );
}

/// §5.5 in-text: fine-grainedness of output dependencies.
fn exp_fine(scale: f64) {
    println!("\n== EXP-FINE: fraction of state tuples an output depends on ==");
    let params = DealersParams {
        num_cars: scaled(2000, scale),
        num_exec: scaled(20, scale),
        seed: 1_000_003,
    };
    let run = run_dealers(&params, true);
    let g = run.graph.expect("tracking on");
    let fractions = fine_grained_fractions(&g);
    let (min, max) = fractions
        .iter()
        .fold((1.0f64, 0.0f64), |(lo, hi), f| (lo.min(*f), hi.max(*f)));
    println!(
        "graph: {} | outputs sampled: {} | dependency fraction: {:.2}%..{:.2}% of base tuples (coarse-grained would be 100%)",
        graph_summary(&g),
        fractions.len(),
        min * 100.0,
        max * 100.0
    );
}
