//! End-to-end ProQL coverage over a real WorkflowGen provenance graph:
//! every statement form, planner cost-awareness, and agreement between
//! planned and naive execution.

use lipstick_core::graph::stats::stats;
use lipstick_core::query::{ancestors_bounded, depends_on, propagate_deletion, subgraph};
use lipstick_core::{GraphTracker, NodeId, NodeKind, ProvGraph};
use lipstick_proql::{ProqlError, QueryOutput, Session};
use lipstick_workflowgen::dealers::{self, DealersParams};

/// A small Car-dealerships provenance graph (the paper's running
/// example workload).
fn dealers_graph() -> ProvGraph {
    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 7,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn dealers_session() -> Session {
    Session::new(dealers_graph())
}

/// Any base-tuple token present in the graph.
fn some_base_token(g: &ProvGraph) -> (NodeId, String) {
    g.iter_visible()
        .find_map(|(id, n)| match &n.kind {
            NodeKind::BaseTuple { token } => Some((id, token.as_str().to_string())),
            _ => None,
        })
        .expect("dealers graph has base tuples")
}

/// A module name with at least one invocation.
fn some_module(g: &ProvGraph) -> String {
    g.invocations()[0].module.clone()
}

#[test]
fn subgraph_form_matches_core_query() {
    let mut s = dealers_session();
    let root = s.graph().top_fanout_nodes(1)[0];
    let expected = subgraph(s.graph(), root).unwrap();
    let out = s.run_one(&format!("SUBGRAPH OF #{}", root.0)).unwrap();
    let ns = out.nodes().expect("node set");
    assert_eq!(ns.nodes, expected.nodes);
    assert!(!ns.is_empty());
}

#[test]
fn why_form_names_contributing_tokens() {
    let mut s = dealers_session();
    let (_, token) = some_base_token(s.graph());
    let out = s.run_one(&format!("WHY '{token}'")).unwrap();
    let text = out.text().expect("text output");
    assert!(text.contains(&token), "got: {text}");
}

#[test]
fn depends_form_agrees_with_core_and_with_index() {
    let mut s = dealers_session();
    let roots = s.graph().top_fanout_nodes(4);
    let targets: Vec<NodeId> = s.graph().iter_visible().map(|(id, _)| id).take(8).collect();
    let mut expected = Vec::new();
    for &r in &roots {
        for &t in &targets {
            expected.push(depends_on(s.graph(), t, r).unwrap());
        }
    }
    // Without an index: propagation plan.
    let mut got = Vec::new();
    for &r in &roots {
        for &t in &targets {
            let out = s.run_one(&format!("DEPENDS(#{}, #{})", t.0, r.0)).unwrap();
            got.push(out.bool_value().unwrap());
        }
    }
    assert_eq!(got, expected);
    // With an index: prefiltered plan must answer identically.
    s.run_one("BUILD INDEX").unwrap();
    let mut got_indexed = Vec::new();
    for &r in &roots {
        for &t in &targets {
            let out = s.run_one(&format!("DEPENDS(#{}, #{})", t.0, r.0)).unwrap();
            got_indexed.push(out.bool_value().unwrap());
        }
    }
    assert_eq!(got_indexed, expected);
}

#[test]
fn explain_shows_dependency_plan_switching_to_index() {
    let mut s = dealers_session();
    let before = s.explain("DEPENDS(#1, #0)").unwrap();
    assert!(
        before.contains("deletion propagation"),
        "without index: {before}"
    );
    s.run_one("BUILD INDEX").unwrap();
    let after = s.explain("DEPENDS(#1, #0)").unwrap();
    assert!(
        after.contains("reach-index prefilter"),
        "with index: {after}"
    );
    // EXPLAIN as a statement goes through the same path.
    let out = s.run_one("EXPLAIN DEPENDS(#1, #0)").unwrap();
    assert!(out.text().unwrap().contains("reach-index prefilter"));
}

#[test]
fn delete_form_matches_core_propagation() {
    let mut s = dealers_session();
    let (victim, token) = some_base_token(s.graph());
    let (_, expected) = propagate_deletion(s.graph(), victim).unwrap();
    let out = s.run_one(&format!("DELETE '{token}' PROPAGATE")).unwrap();
    let QueryOutput::Deleted { nodes } = out else {
        panic!("expected deletion output, got {out:?}");
    };
    assert_eq!(nodes, expected.deleted);
    assert!(
        !s.graph().node(victim).is_visible(),
        "deletion is in place on the session graph"
    );
}

#[test]
fn zoom_out_and_in_round_trip() {
    let mut s = dealers_session();
    let module = some_module(s.graph());
    let before = s.graph().visible_signature();
    s.run_one(&format!("ZOOM OUT TO {module}")).unwrap();
    assert_ne!(s.graph().visible_signature(), before);
    assert_eq!(s.graph().zoomed_out_modules(), vec![module.as_str()]);
    s.run_one("ZOOM IN").unwrap();
    assert_eq!(s.graph().visible_signature(), before);
}

#[test]
fn consecutive_zoom_outs_fuse_into_one_statement() {
    let mut s = dealers_session();
    // Two distinct modules with invocations.
    let modules: Vec<String> = {
        let mut seen = std::collections::BTreeSet::new();
        s.graph()
            .invocations()
            .iter()
            .map(|i| i.module.clone())
            .filter(|m| seen.insert(m.clone()))
            .take(2)
            .collect()
    };
    assert_eq!(modules.len(), 2, "dealers workflow has several modules");
    let script = format!("ZOOM OUT TO {}; ZOOM OUT TO {};", modules[0], modules[1]);
    let outputs = s.run(&script).unwrap();
    assert_eq!(outputs.len(), 1, "two zoom statements fused into one");
    let msg = outputs[0].text().unwrap();
    assert!(msg.contains("fused from 2 statements"), "got: {msg}");
    let mut zoomed = s.graph().zoomed_out_modules();
    zoomed.sort_unstable();
    let mut want: Vec<&str> = modules.iter().map(String::as_str).collect();
    want.sort_unstable();
    assert_eq!(zoomed, want);
}

#[test]
fn fused_duplicate_zooms_error_like_sequential_execution() {
    let mut s = dealers_session();
    let module = some_module(s.graph());
    let before = s.graph().visible_signature();
    // Sequentially the second ZOOM OUT errors AlreadyZoomedOut; the
    // fused plan must preserve that instead of zooming twice.
    let err = s
        .run(&format!("ZOOM OUT TO {module}; ZOOM OUT TO {module};"))
        .unwrap_err();
    assert!(matches!(err, ProqlError::Query(_)), "got {err:?}");
    assert_eq!(s.graph().visible_signature(), before, "atomic failure");

    s.run_one(&format!("ZOOM OUT TO {module}")).unwrap();
    let err = s
        .run(&format!("ZOOM IN TO {module}; ZOOM IN TO {module};"))
        .unwrap_err();
    assert!(matches!(err, ProqlError::Query(_)), "errors, not panics");
    s.run_one("ZOOM IN").unwrap();
    assert_eq!(s.graph().visible_signature(), before);
}

#[test]
fn eval_form_covers_every_semiring() {
    let mut s = dealers_session();
    let (id, _) = some_base_token(s.graph());
    for (semiring, needle) in [
        ("counting", "derivation"),
        ("boolean", "true"),
        ("tropical", "tropical"),
        ("lineage", "lineage"),
        ("why", "why"),
    ] {
        let out = s.run_one(&format!("EVAL #{} IN {semiring}", id.0)).unwrap();
        let text = out.text().expect("text output");
        assert!(text.contains(needle), "{semiring}: {text}");
    }
}

#[test]
fn eval_semantics_on_a_known_graph() {
    // (a + b)·c — two derivations; lineage {a,b,c}; witnesses {a,c},{b,c}.
    let mut g = ProvGraph::new();
    let a = g.add_base("a");
    let b = g.add_base("b");
    let c = g.add_base("c");
    let p = g.add_plus(&[a, b]);
    let t = g.add_times(&[p, c]);
    let mut s = Session::new(g);
    let out = s.run_one(&format!("EVAL #{} IN counting", t.0)).unwrap();
    assert!(out.text().unwrap().contains("2 derivation(s)"));
    let out = s.run_one(&format!("EVAL #{} IN lineage", t.0)).unwrap();
    assert!(out.text().unwrap().contains("{a, b, c}"));
    let out = s.run_one(&format!("EVAL #{} IN why", t.0)).unwrap();
    let text = out.text().unwrap().to_string();
    assert!(text.contains("{a, c}") && text.contains("{b, c}"), "{text}");
    let out = s.run_one(&format!("EVAL #{} IN tropical", t.0)).unwrap();
    assert!(
        out.text().unwrap().contains("2"),
        "min-cost derivation uses 2 tuples"
    );
}

#[test]
fn match_module_scan_agrees_with_naive_full_scan_and_visits_fewer() {
    let mut s = dealers_session();
    let module = some_module(s.graph());
    let visible = s.graph().visible_count();

    // Naive reference: full sweep + post-filter.
    let naive: Vec<NodeId> = s
        .graph()
        .iter_visible()
        .filter(|(_, n)| {
            n.role
                .invocation()
                .is_some_and(|inv| s.graph().invocation(inv).module == module)
        })
        .map(|(id, _)| id)
        .collect();
    assert!(!naive.is_empty());

    let explain = s
        .explain(&format!("MATCH nodes WHERE module = '{module}'"))
        .unwrap();
    assert!(explain.contains("module scan"), "planner chose: {explain}");

    let out = s
        .run_one(&format!("MATCH nodes WHERE module = '{module}'"))
        .unwrap();
    let ns = out.nodes().unwrap();
    assert_eq!(ns.nodes, naive, "module scan returns the full-scan answer");
    assert!(
        ns.visited < visible,
        "pushdown visited {} of {} visible nodes",
        ns.visited,
        visible
    );

    // m-nodes via the invocation table touch only the invocations.
    let out = s
        .run_one(&format!("MATCH m-nodes WHERE module = '{module}'"))
        .unwrap();
    let ns = out.nodes().unwrap();
    assert_eq!(ns.len(), s.graph().invocations_of(&module).len());
    assert_eq!(
        ns.visited,
        ns.len(),
        "m-node scan reads the invocation table"
    );
}

#[test]
fn match_without_module_filter_full_scans() {
    let mut s = dealers_session();
    let explain = s.explain("MATCH base-nodes").unwrap();
    assert!(explain.contains("full scan"), "got: {explain}");
    let out = s.run_one("MATCH base-nodes").unwrap();
    let ns = out.nodes().unwrap();
    let base = stats(s.graph()).by_kind["base_tuple"];
    assert_eq!(ns.len(), base);
    assert_eq!(ns.visited, s.graph().visible_count());
}

#[test]
fn walk_forms_respect_depth_and_filters() {
    let mut s = dealers_session();
    // Pick a root that has base tuples among its ancestors, so the
    // filtered walk below has something to return.
    let root = s
        .graph()
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .find(|&id| {
            ancestors_bounded(s.graph(), id, None)
                .unwrap()
                .nodes
                .iter()
                .any(|&a| matches!(s.graph().node(a).kind, NodeKind::BaseTuple { .. }))
        })
        .expect("some module output depends on a base tuple");
    let all = s.run_one(&format!("ANCESTORS OF #{}", root.0)).unwrap();
    let bounded = s
        .run_one(&format!("ANCESTORS OF #{} DEPTH 2", root.0))
        .unwrap();
    let all = all.nodes().unwrap().clone();
    let bounded = bounded.nodes().unwrap().clone();
    assert!(bounded.len() <= all.len());
    assert!(bounded.nodes.iter().all(|n| all.contains(*n)));
    let expected = ancestors_bounded(s.graph(), root, Some(2)).unwrap();
    assert_eq!(bounded.nodes, expected.nodes);

    // Filtered walk: only base tuples among the ancestors.
    let filtered = s
        .run_one(&format!(
            "ANCESTORS OF #{} WHERE kind = 'base_tuple'",
            root.0
        ))
        .unwrap();
    let filtered = filtered.nodes().unwrap();
    assert!(filtered
        .nodes
        .iter()
        .all(|n| matches!(s.graph().node(*n).kind, NodeKind::BaseTuple { .. })));
    assert!(!filtered.is_empty());
    // The filter prunes output, not traversal: same visited count.
    assert_eq!(filtered.visited, all.visited);
}

#[test]
fn descendants_via_index_match_bfs() {
    let mut s = dealers_session();
    let roots = s.graph().top_fanout_nodes(4);
    let bfs: Vec<_> = roots
        .iter()
        .map(|r| {
            s.run_one(&format!("DESCENDANTS OF #{}", r.0))
                .unwrap()
                .nodes()
                .unwrap()
                .clone()
        })
        .collect();
    s.run_one("BUILD INDEX").unwrap();
    let explain = s.explain("DESCENDANTS OF #0").unwrap();
    assert!(explain.contains("reach-index lookup"), "got: {explain}");
    for (r, bfs_result) in roots.iter().zip(&bfs) {
        let indexed = s.run_one(&format!("DESCENDANTS OF #{}", r.0)).unwrap();
        assert_eq!(indexed.nodes().unwrap().nodes, bfs_result.nodes);
    }
    // Bounded walks still BFS (the closure holds no depth information).
    let explain = s.explain("DESCENDANTS OF #0 DEPTH 2").unwrap();
    assert!(explain.contains("bfs"), "got: {explain}");
}

#[test]
fn ancestors_via_index_match_bfs() {
    let mut s = dealers_session();
    // Deep nodes (largest ancestor cones) stress the upward direction.
    let mut roots: Vec<NodeId> = s.graph().iter_visible().map(|(id, _)| id).collect();
    roots.sort_by_key(|r| std::cmp::Reverse(ancestors_bounded(s.graph(), *r, None).unwrap().len()));
    roots.truncate(4);
    let bfs: Vec<_> = roots
        .iter()
        .map(|r| {
            s.run_one(&format!("ANCESTORS OF #{}", r.0))
                .unwrap()
                .nodes()
                .unwrap()
                .clone()
        })
        .collect();
    s.run_one("BUILD INDEX").unwrap();
    // The upward walk is now index-served, symmetrically with
    // DESCENDANTS — no BFS — and EXPLAIN names the closure direction.
    let explain = s.explain(&format!("ANCESTORS OF #{}", roots[0].0)).unwrap();
    assert!(
        explain.contains("reach-index lookup") && explain.contains("ancestor closure"),
        "got: {explain}"
    );
    assert!(!explain.contains("bfs"), "got: {explain}");
    for (r, bfs_result) in roots.iter().zip(&bfs) {
        let indexed = s.run_one(&format!("ANCESTORS OF #{}", r.0)).unwrap();
        assert_eq!(indexed.nodes().unwrap().nodes, bfs_result.nodes);
    }
    // Predicates still push into the indexed lookup.
    let filtered = s
        .run_one(&format!(
            "ANCESTORS OF #{} WHERE kind = 'base_tuple'",
            roots[0].0
        ))
        .unwrap();
    assert!(filtered
        .nodes()
        .unwrap()
        .nodes
        .iter()
        .all(|n| matches!(s.graph().node(*n).kind, NodeKind::BaseTuple { .. })));
    // Bounded walks still BFS (the closure holds no depth information).
    let explain = s
        .explain(&format!("ANCESTORS OF #{} DEPTH 2", roots[0].0))
        .unwrap();
    assert!(explain.contains("bfs"), "got: {explain}");
    // WHY plans report the ancestor-cone bound read off the index.
    let explain = s.explain(&format!("WHY #{}", roots[0].0)).unwrap();
    assert!(explain.contains("ancestor cone"), "got: {explain}");
}

#[test]
fn parallel_set_operations_match_sequential_byte_for_byte() {
    let g = dealers_graph();
    let roots = g.top_fanout_nodes(4);
    let union_stmt = roots
        .iter()
        .map(|r| format!("DESCENDANTS OF #{}", r.0))
        .collect::<Vec<_>>()
        .join(" UNION ");
    let intersect_stmt = roots
        .iter()
        .map(|r| format!("SUBGRAPH OF #{}", r.0))
        .collect::<Vec<_>>()
        .join(" INTERSECT ");
    let mixed_stmt = format!(
        "(MATCH base-nodes UNION ANCESTORS OF #{}) INTERSECT MATCH p-nodes ORDER BY id DESC \
         LIMIT 9",
        roots[0].0
    );
    let err_stmt = format!(
        "DESCENDANTS OF #{} UNION SUBGRAPH OF #999999 UNION MATCH nodes",
        roots[0].0
    );

    let mut sequential = Session::new(g.clone());
    sequential.set_parallelism_policy(lipstick_proql::Parallelism::SEQUENTIAL);
    let mut parallel = Session::new(g.clone());
    // Force engagement despite the small test graph.
    parallel.set_parallelism_policy(lipstick_proql::Parallelism {
        threads: 4,
        min_nodes: 0,
    });

    for stmt in [&union_stmt, &intersect_stmt, &mixed_stmt] {
        let a = sequential.run_one(stmt).unwrap();
        let b = parallel.run_one(stmt).unwrap();
        // to_string covers nodes AND the visited figure: the parallel
        // merge must reproduce the sequential cost sum exactly.
        assert_eq!(a.to_string(), b.to_string(), "{stmt}");
    }
    // Failing statements reject identically under either policy.
    let ea = sequential.run_one(&err_stmt).unwrap_err().to_string();
    let eb = parallel.run_one(&err_stmt).unwrap_err().to_string();
    assert_eq!(ea, eb);
}

#[test]
fn set_operations_compose_node_sets() {
    let mut s = dealers_session();
    let root = s.graph().top_fanout_nodes(1)[0];
    let base = s
        .run_one("MATCH base-nodes")
        .unwrap()
        .nodes()
        .unwrap()
        .clone();
    let anc = s
        .run_one(&format!("ANCESTORS OF #{}", root.0))
        .unwrap()
        .nodes()
        .unwrap()
        .clone();
    let inter = s
        .run_one(&format!(
            "MATCH base-nodes INTERSECT ANCESTORS OF #{}",
            root.0
        ))
        .unwrap()
        .nodes()
        .unwrap()
        .clone();
    let expected: Vec<NodeId> = base
        .nodes
        .iter()
        .copied()
        .filter(|n| anc.contains(*n))
        .collect();
    assert_eq!(inter.nodes, expected);

    let uni = s
        .run_one(&format!("MATCH base-nodes UNION ANCESTORS OF #{}", root.0))
        .unwrap()
        .nodes()
        .unwrap()
        .clone();
    let mut expected: Vec<NodeId> = base.nodes.iter().chain(anc.nodes.iter()).copied().collect();
    expected.sort_unstable();
    expected.dedup();
    assert_eq!(uni.nodes, expected);
    assert_eq!(uni.visited, base.visited + anc.visited);
}

#[test]
fn stats_and_index_lifecycle() {
    let mut s = dealers_session();
    let out = s.run_one("STATS").unwrap();
    assert!(out.text().unwrap().contains("reach index: absent"));
    s.run_one("BUILD INDEX").unwrap();
    assert!(s.has_reach_index());
    let out = s.run_one("STATS").unwrap();
    assert!(out.text().unwrap().contains("reach index: present"));
    // Mutation repairs the closure in place instead of dropping it,
    // and the repaired index keeps serving indexed plans.
    let (_, token) = some_base_token(s.graph());
    s.run_one(&format!("DELETE '{token}' PROPAGATE")).unwrap();
    assert!(s.has_reach_index(), "index repaired in place after DELETE");
    let root = s.graph().iter_visible().next().unwrap().0;
    assert!(s
        .explain(&format!("DESCENDANTS OF #{}", root.0))
        .unwrap()
        .contains("reach-index lookup"));
    // A redundant BUILD INDEX is deduped (the repaired index is exact).
    assert_eq!(s.index_builds(), 1);
    s.run_one("BUILD INDEX").unwrap();
    assert_eq!(s.index_builds(), 1, "present index must not rebuild");
    // DROP INDEX remains the only way to lose the closure.
    s.run_one("DROP INDEX").unwrap();
    assert!(!s.has_reach_index());
    s.run_one("BUILD INDEX").unwrap();
    assert_eq!(s.index_builds(), 2);
}

#[test]
fn session_loads_graph_from_provenance_log() {
    let g = dealers_graph();
    let dir = std::env::temp_dir().join("lipstick-proql-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dealers.lpstk");
    lipstick_storage::write_graph(&g, &path).unwrap();
    let mut s = Session::load(&path).unwrap();
    assert_eq!(s.graph().visible_signature(), g.visible_signature());
    let out = s.run_one("MATCH m-nodes").unwrap();
    assert_eq!(out.nodes().unwrap().len(), g.invocations().len());
    std::fs::remove_file(&path).ok();

    assert!(matches!(
        Session::load(dir.join("missing.lpstk")),
        Err(ProqlError::Storage(_))
    ));
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut s = dealers_session();
    assert!(matches!(
        s.run_one("WHY 'no-such-token'"),
        Err(ProqlError::UnknownNode(_))
    ));
    assert!(matches!(
        s.run_one("SUBGRAPH OF #999999"),
        Err(ProqlError::UnknownNode(_))
    ));
    assert!(matches!(
        s.run_one("ZOOM OUT TO NoSuchModule"),
        Err(ProqlError::Query(_))
    ));
    assert!(s.run_one("FROBNICATE #1").is_err());
}

#[test]
fn like_predicates_match_wildcards() {
    let mut s = dealers_session();
    let (_, token) = some_base_token(s.graph());
    let prefix: String = token.chars().take(1).collect();

    // token LIKE '<first-char>%' selects exactly the base/workflow-input
    // nodes whose token starts with that character.
    let expected: Vec<NodeId> = s
        .graph()
        .iter_visible()
        .filter(|(_, n)| match &n.kind {
            NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                token.as_str().starts_with(&prefix)
            }
            _ => false,
        })
        .map(|(id, _)| id)
        .collect();
    assert!(!expected.is_empty());
    let out = s
        .run_one(&format!("MATCH nodes WHERE token LIKE '{prefix}%'"))
        .unwrap();
    assert_eq!(out.nodes().unwrap().nodes, expected);

    // NOT LIKE holds for every node the pattern does not match —
    // token-less nodes included.
    let out = s
        .run_one(&format!("MATCH nodes WHERE token NOT LIKE '{prefix}%'"))
        .unwrap();
    let complement = out.nodes().unwrap();
    assert_eq!(complement.len() + expected.len(), s.graph().visible_count());

    // module LIKE with a prefix pattern selects module-owned nodes.
    let module = some_module(s.graph());
    let like = s
        .run_one(&format!("MATCH nodes WHERE module LIKE '{module}%'"))
        .unwrap();
    let eq = s
        .run_one(&format!("MATCH nodes WHERE module = '{module}'"))
        .unwrap();
    assert!(like.nodes().unwrap().len() >= eq.nodes().unwrap().len());
}

#[test]
fn group_by_counts_match_manual_aggregation() {
    let mut s = dealers_session();
    let out = s.run_one("MATCH o-nodes GROUP BY module").unwrap();
    let table = out.table().expect("grouped output is a table");
    assert_eq!(table.columns, vec!["module", "count"]);

    let mut manual: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (_, n) in s.graph().iter_visible() {
        if matches!(n.kind, NodeKind::ModuleOutput) {
            let module = n
                .role
                .invocation()
                .map(|inv| s.graph().invocation(inv).module.clone())
                .unwrap_or_else(|| "(none)".into());
            *manual.entry(module).or_insert(0) += 1;
        }
    }
    let got: Vec<(String, u64)> = table
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string().parse().unwrap()))
        .collect();
    let want: Vec<(String, u64)> = manual.into_iter().collect();
    assert_eq!(got, want, "group rows in group-value order");

    // ORDER BY count DESC LIMIT 1 yields the largest group.
    let out = s
        .run_one("MATCH o-nodes GROUP BY module ORDER BY count DESC LIMIT 1")
        .unwrap();
    let top = out.table().unwrap();
    assert_eq!(top.len(), 1);
    let max = want.iter().map(|(_, c)| *c).max().unwrap();
    assert_eq!(top.rows[0][1].to_string(), max.to_string());
}

#[test]
fn count_aggregates_project_scalars() {
    let mut s = dealers_session();
    let all = s.run_one("MATCH base-nodes").unwrap();
    let n = all.nodes().unwrap().len();
    let out = s.run_one("COUNT(*) MATCH base-nodes").unwrap();
    let table = out.table().unwrap();
    assert_eq!(table.columns, vec!["count"]);
    assert_eq!(
        table.rows,
        vec![vec![lipstick_proql::result::Cell::Int(n as u64)]]
    );

    let distinct_modules = {
        let mut set = std::collections::BTreeSet::new();
        for info in s.graph().invocations() {
            set.insert(info.module.clone());
        }
        set.len() as u64
    };
    let out = s.run_one("COUNT(DISTINCT module) MATCH nodes").unwrap();
    assert_eq!(
        out.table().unwrap().rows[0][0],
        lipstick_proql::result::Cell::Int(distinct_modules)
    );
}

#[test]
fn order_by_and_limit_shape_node_sets() {
    let mut s = dealers_session();
    let all = s.run_one("MATCH m-nodes").unwrap().nodes().unwrap().clone();
    assert!(all.len() > 3);

    // ORDER BY id DESC reverses the canonical order.
    let desc = s.run_one("MATCH m-nodes ORDER BY id DESC").unwrap();
    let mut reversed = all.nodes.clone();
    reversed.reverse();
    assert_eq!(desc.nodes().unwrap().nodes, reversed);

    // LIMIT keeps the first n of the result order.
    let limited = s.run_one("MATCH m-nodes LIMIT 3").unwrap();
    assert_eq!(limited.nodes().unwrap().nodes, all.nodes[..3].to_vec());
    let limited_desc = s.run_one("MATCH m-nodes ORDER BY id DESC LIMIT 3").unwrap();
    assert_eq!(limited_desc.nodes().unwrap().nodes, reversed[..3].to_vec());

    // ORDER BY execution DESC: executions are non-increasing down the
    // list, ties broken deterministically.
    let by_exec = s.run_one("MATCH m-nodes ORDER BY execution DESC").unwrap();
    let execs: Vec<u32> = by_exec
        .nodes()
        .unwrap()
        .nodes
        .iter()
        .map(|&id| {
            let inv = s.graph().node(id).role.invocation().unwrap();
            s.graph().invocation(inv).execution
        })
        .collect();
    assert!(execs.windows(2).all(|w| w[0] >= w[1]), "{execs:?}");
    assert_eq!(by_exec.nodes().unwrap().len(), all.len());
}

#[test]
fn limit_bounded_scan_visits_fewer_nodes_than_unbounded() {
    let mut s = dealers_session();
    let unbounded = s.run_one("MATCH nodes").unwrap().nodes().unwrap().clone();
    let bounded = s
        .run_one("MATCH nodes LIMIT 5")
        .unwrap()
        .nodes()
        .unwrap()
        .clone();
    assert_eq!(bounded.nodes, unbounded.nodes[..5].to_vec());
    assert!(
        bounded.visited < unbounded.visited,
        "early exit must stop the scan: visited {} of {}",
        bounded.visited,
        unbounded.visited
    );
    // The plan says so, too.
    let plan = s.explain("MATCH nodes LIMIT 5").unwrap();
    assert!(plan.contains("early-exit after 5"), "{plan}");
    assert!(plan.contains("shape: limit 5"), "{plan}");
}

#[test]
fn limit_zero_and_empty_aggregates_are_well_formed() {
    let mut s = dealers_session();

    // LIMIT 0: an empty node set, not an error — and the early-exit
    // scan does no work at all.
    let out = s.run_one("MATCH nodes LIMIT 0").unwrap();
    let ns = out.nodes().unwrap();
    assert!(ns.is_empty());
    assert_eq!(ns.visited, 0);

    // COUNT over an empty match: one row holding 0.
    let out = s
        .run_one("COUNT(*) MATCH nodes WHERE module = 'NoSuchModule'")
        .unwrap();
    assert_eq!(
        out.table().unwrap().rows,
        vec![vec![lipstick_proql::result::Cell::Int(0)]]
    );
    let out = s
        .run_one("COUNT(DISTINCT module) MATCH nodes WHERE module = 'NoSuchModule'")
        .unwrap();
    assert_eq!(
        out.table().unwrap().rows,
        vec![vec![lipstick_proql::result::Cell::Int(0)]]
    );

    // GROUP BY over an empty match: a zero-row table with its header.
    let out = s
        .run_one("MATCH nodes WHERE module = 'NoSuchModule' GROUP BY kind")
        .unwrap();
    let table = out.table().unwrap();
    assert!(table.is_empty());
    assert_eq!(table.columns, vec!["kind", "count"]);

    // Shaped empty walks behave the same.
    let out = s.run_one("ANCESTORS OF #0 GROUP BY module").unwrap();
    assert!(out.table().is_some());
}

#[test]
fn display_round_trips_generated_statements() {
    use lipstick_proql::parser::parse_statement;
    use lipstick_proql::testgen::{self, Rng, Vocab};

    let vocab = Vocab::from_graph(&dealers_graph());
    let mut rng = Rng::new(0xd15b_1a4f_600d_cafe);
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    for _ in 0..cases {
        let stmt = testgen::statement(&vocab, &mut rng);
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("canonical form must parse: {printed}\n  {e}"));
        assert_eq!(reparsed, stmt, "parse(display(s)) == s for {printed}");
        // Display is a fixpoint: one more round changes nothing.
        assert_eq!(reparsed.to_string(), printed);
    }
}

#[test]
fn script_runs_multiple_statements_in_order() {
    let mut s = dealers_session();
    let module = some_module(s.graph());
    let outputs = s
        .run(&format!(
            "STATS; BUILD INDEX; MATCH m-nodes WHERE module = '{module}'; DROP INDEX;"
        ))
        .unwrap();
    assert_eq!(outputs.len(), 4);
    assert!(outputs[2].nodes().is_some());
}
