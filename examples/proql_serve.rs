//! Serve ProQL over the network.
//!
//! With no graph argument it executes the Car-dealerships workflow and
//! serves the captured provenance; `--open PATH` serves a v2 log paged
//! (queries fault in only the records they touch), `--load PATH`
//! decodes a v1/v2 log fully first.
//!
//! ```sh
//! cargo run --release --example proql_serve -- --open prov.lpstk --addr 127.0.0.1:7433
//! # then, from another terminal:
//! printf "MATCH base-nodes;\n" | nc 127.0.0.1 7433
//! curl -s -X POST --data "MATCH base-nodes" http://127.0.0.1:7433/query
//! curl -s "http://127.0.0.1:7433/explain?q=MATCH+base-nodes"
//! ```
//!
//! `--self-test` writes the demo graph to a temp v2 log, serves it
//! **paged** on an ephemeral port, drives a scripted client through
//! both protocols, and exits non-zero on any mismatch — the CI smoke
//! test.

use lipstick::core::GraphTracker;
use lipstick::proql::Session;
use lipstick::serve::client::{http_get_explain, http_post_query};
use lipstick::serve::{Client, Server, ServerConfig};
use lipstick::workflowgen::dealers::{self, DealersParams};

struct Args {
    session: Session,
    addr: String,
    workers: usize,
    self_test: bool,
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut session = None;
    let mut addr = "127.0.0.1:7433".to_string();
    let mut workers = 4;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--open" => {
                let path = args.next().ok_or("--open requires a path")?;
                eprintln!("opening provenance log {path} lazily (v2 footer index)");
                session = Some(Session::open(path)?);
            }
            "--load" => {
                let path = args.next().ok_or("--load requires a path")?;
                eprintln!("loading provenance log {path}");
                session = Some(Session::load(path)?);
            }
            "--addr" => addr = args.next().ok_or("--addr requires HOST:PORT")?,
            "--workers" => {
                workers = args
                    .next()
                    .ok_or("--workers requires a count")?
                    .parse()
                    .map_err(|_| "--workers requires a number")?;
            }
            "--self-test" => {
                self_test = true;
                addr = "127.0.0.1:0".to_string();
            }
            other => return Err(format!("unknown argument '{other}'").into()),
        }
    }
    let session = match session {
        Some(s) => s,
        None => {
            eprintln!("running the Car-dealerships workflow (24 cars, 3 executions)…");
            let params = DealersParams {
                num_cars: 24,
                num_exec: 3,
                seed: 7,
            };
            let mut tracker = GraphTracker::new();
            dealers::run_declining(&params, &mut tracker)?;
            let graph = tracker.finish();
            if self_test {
                // The smoke test exercises the paged path end to end:
                // demo graph → temp v2 log → Session::open.
                let path = std::env::temp_dir().join("lipstick-serve-selftest.lpstk");
                lipstick::storage::write_graph_v2(&graph, &path)?;
                let session = Session::open(&path)?;
                assert!(session.is_paged());
                session
            } else {
                Session::new(graph)
            }
        }
    };
    Ok(Args {
        session,
        addr,
        workers,
        self_test,
    })
}

fn self_test(handle: &lipstick::serve::ServerHandle) -> Result<(), Box<dyn std::error::Error>> {
    let addr = handle.addr();
    let mut client = Client::connect(addr)?;

    let cold = client.query("MATCH base-nodes")?;
    if !cold.is_ok() || cold.cache_hit() {
        return Err(format!("cold query misbehaved: {cold:?}").into());
    }
    let warm = client.query("match BASE-NODES ;")?;
    if !warm.cache_hit() || warm.body() != cold.body() {
        return Err(format!("normalized re-query must hit the cache: {warm:?}").into());
    }
    for stmt in [
        "STATS",
        "EXPLAIN MATCH m-nodes",
        "MATCH m-nodes WHERE execution < 1",
    ] {
        let reply = client.query(stmt)?;
        if !reply.is_ok() {
            return Err(format!("{stmt} failed: {reply:?}").into());
        }
    }
    let analyze = client.query("EXPLAIN ANALYZE MATCH base-nodes")?;
    if !analyze.is_ok() || !analyze.body().contains("actuals:") {
        return Err(format!("EXPLAIN ANALYZE misbehaved: {analyze:?}").into());
    }

    let (status, body) = http_post_query(addr, "MATCH base-nodes")?;
    if status != "HTTP/1.1 200 OK" || !body.contains(r#""cache_hit":true"#) {
        return Err(format!("HTTP query misbehaved: {status} {body}").into());
    }
    if !body.contains(r#""time_us":"#) || !body.contains(r#""reads":"#) {
        return Err(format!("HTTP query must carry timing fields: {body}").into());
    }
    let (status, body) = http_get_explain(addr, "MATCH+base-nodes")?;
    if status != "HTTP/1.1 200 OK" || !body.contains(r#""plan":"#) {
        return Err(format!("HTTP explain misbehaved: {status} {body}").into());
    }

    // The observability surface: /metrics must be a valid Prometheus
    // exposition naming the serve series, /slow must answer JSON.
    let (status, metrics) = lipstick::serve::client::http_get(addr, "/metrics")?;
    if status != "HTTP/1.1 200 OK" {
        return Err(format!("GET /metrics: {status}").into());
    }
    lipstick::core::obs::validate_prometheus_text(&metrics)
        .map_err(|e| format!("/metrics invalid: {e}"))?;
    if !metrics.contains("lipstick_serve_queries_total") {
        return Err(format!("/metrics must name the serve series:\n{metrics}").into());
    }
    let (status, slow) = lipstick::serve::client::http_get(addr, "/slow?n=5")?;
    if status != "HTTP/1.1 200 OK" || !slow.contains(r#""ok":true"#) {
        return Err(format!("GET /slow misbehaved: {status} {slow}").into());
    }

    let (hits, misses) = handle.cache_stats();
    eprintln!(
        "self-test ok: {} queries, {hits} cache hits, {misses} misses",
        handle.queries()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let paged = args.session.is_paged();
    let handle = Server::new(
        args.session,
        ServerConfig {
            workers: args.workers,
            ..ServerConfig::default()
        },
    )
    .serve(&args.addr)?;
    eprintln!(
        "lipstick-serve listening on {} ({} backend, {} workers)",
        handle.addr(),
        if paged { "paged" } else { "resident" },
        args.workers
    );
    if args.self_test {
        let result = self_test(&handle);
        handle.shutdown();
        return result;
    }
    eprintln!("line protocol: one statement per line; HTTP: POST /query, GET /explain?q=…");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
