//! # lipstick-serve — ProQL over the network
//!
//! After `lipstick-proql`, the planner and executors are still
//! library-only: nothing can query provenance without linking Rust.
//! This crate serves a [`lipstick_proql::Session`] — resident or paged
//! — over TCP, std-only (`std::net` plus the vendored crossbeam
//! channel), with two wire formats on **one listener**:
//!
//! - a newline-delimited **line protocol** (persistent connections, one
//!   statement per line, counted-line response framing), and
//! - a minimal **HTTP/1.1 shim** (`POST /query`, `GET /explain?q=…`)
//!   answering JSON, one request per connection.
//!
//! Read-only statements (`MATCH`, walks, `WHY`, `DEPENDS`, `EVAL`,
//! `EXPLAIN`, `STATS`, set ops) execute concurrently on a worker pool
//! through the session's shared-reference path
//! ([`lipstick_proql::Session::run_read`]); mutating statements
//! (`DELETE … PROPAGATE`, zooms, index maintenance) serialize through a
//! write lock and bump the **write epoch**.
//!
//! Repeated exploratory queries are the interactive workload's common
//! case, so results are cached in a **plan-keyed LRU**
//! ([`cache::QueryCache`]): the key is the parsed statement (spelling
//! differences normalize away), the value is the fully rendered output,
//! and every entry is stamped with the write epoch — a mutation
//! invalidates the whole cache by making every stamp stale. (The
//! session's reach index, by contrast, *survives* mutations: it is
//! repaired in place, so post-mutation misses re-execute against an
//! index that is still warm.) Responses report `cache_hit` so clients
//! (and the `proql_server` bench) can see the cache working.
//!
//! ```no_run
//! use lipstick_proql::Session;
//! use lipstick_serve::{Server, ServerConfig};
//!
//! fn main() -> Result<(), Box<dyn std::error::Error>> {
//!     let session = Session::open("provenance.lpstk")?;
//!     let handle = Server::new(session, ServerConfig::default()).serve("127.0.0.1:0")?;
//!     println!("serving ProQL on {}", handle.addr());
//!     handle.shutdown();
//!     Ok(())
//! }
//! ```
//!
//! The request paths are **panic-free by construction**: malformed
//! wire bytes surface as typed [`proto::ProtoError`] values, and
//! `xtask lint` (run in CI) fails the build on any `unwrap()` /
//! `expect()` / `panic!` reintroduced into this crate's non-test code.

pub mod cache;
pub mod client;
pub mod proto;
pub mod qlog;
pub mod server;

pub use cache::QueryCache;
pub use client::Client;
pub use proto::{ProtoError, Reply};
pub use qlog::{QueryEvent, QueryLog, QueryLogConfig};
pub use server::{Server, ServerConfig, ServerHandle};
