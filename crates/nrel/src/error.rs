//! Error types for the data model.

use std::fmt;

/// Errors raised by the nested relational data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NrelError {
    /// A positional field access exceeded the tuple's arity.
    FieldOutOfRange { index: usize, arity: usize },
    /// A name did not resolve against a schema.
    UnknownField { name: String, schema: String },
    /// A name matched multiple fields of a schema.
    AmbiguousField { name: String, schema: String },
    /// A tuple's arity did not match its schema.
    ArityMismatch { expected: usize, found: usize },
    /// A field's value did not conform to the schema type.
    FieldTypeMismatch {
        index: usize,
        expected: String,
        found: &'static str,
    },
    /// A value had the wrong runtime type for an operation.
    TypeMismatch {
        expected: &'static str,
        found: &'static str,
    },
}

impl fmt::Display for NrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrelError::FieldOutOfRange { index, arity } => {
                write!(f, "field ${index} out of range for tuple of arity {arity}")
            }
            NrelError::UnknownField { name, schema } => {
                write!(f, "unknown field '{name}' in schema {schema}")
            }
            NrelError::AmbiguousField { name, schema } => {
                write!(f, "ambiguous field '{name}' in schema {schema}")
            }
            NrelError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} fields, tuple has {found}"
                )
            }
            NrelError::FieldTypeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "field ${index}: expected type {expected}, found value of type {found}"
            ),
            NrelError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for NrelError {}

/// Result alias for this crate.
pub type Result<T, E = NrelError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = NrelError::FieldOutOfRange { index: 2, arity: 1 };
        assert!(e.to_string().contains("$2"));
        let e = NrelError::UnknownField {
            name: "x".into(),
            schema: "(y: int)".into(),
        };
        assert!(e.to_string().contains('x'));
        assert!(e.to_string().contains("(y: int)"));
    }
}
