//! A blocking line-protocol client, used by `proql_shell --connect`,
//! the server's tests, and the `proql_server` bench.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{read_reply, Reply};

/// One persistent line-protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one statement and wait for its framed reply. Newlines in
    /// the statement collapse to spaces (the protocol is one statement
    /// per line).
    pub fn query(&mut self, statement: &str) -> std::io::Result<Reply> {
        let flat = statement.replace(['\n', '\r'], " ");
        self.writer.write_all(flat.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        read_reply(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )
        })
    }
}

/// Issue one HTTP `POST /query` on a fresh connection (the shim is
/// one-shot) and return `(status line, body)`.
pub fn http_post_query(
    addr: impl ToSocketAddrs,
    statement: &str,
) -> std::io::Result<(String, String)> {
    http_request(addr, &{
        let body = statement.as_bytes();
        let mut req = format!(
            "POST /query HTTP/1.1\r\nHost: lipstick\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        req.push_str(statement);
        req
    })
}

/// Issue one HTTP `GET /explain?q=…` (statement percent-encoded by the
/// caller or plain if it needs no escaping).
pub fn http_get_explain(
    addr: impl ToSocketAddrs,
    encoded_query: &str,
) -> std::io::Result<(String, String)> {
    http_request(
        addr,
        &format!("GET /explain?q={encoded_query} HTTP/1.1\r\nHost: lipstick\r\n\r\n"),
    )
}

/// Issue one HTTP `GET` for an arbitrary target (`/metrics`,
/// `/slow?n=…`) and return `(status line, body)`.
pub fn http_get(addr: impl ToSocketAddrs, target: &str) -> std::io::Result<(String, String)> {
    http_request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: lipstick\r\n\r\n"),
    )
}

fn http_request(addr: impl ToSocketAddrs, raw: &str) -> std::io::Result<(String, String)> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split")
    })?;
    let status = head.lines().next().unwrap_or_default().to_string();
    Ok((status, body.to_string()))
}
