//! The Car dealerships workflow (paper §2.2, §5.2).
//!
//! Topology (unfolded — the dealers appear twice, sharing state):
//!
//! ```text
//! Mreq ─▶ Mand ─▶ Mdealer1..4 (bid) ─▶ Magg ─▶ Mxor ─▶ Mdealer1..4 (buy) ─▶ Mcar
//!                                        ▲
//!                                     Mchoice
//! ```
//!
//! Each dealer keeps `Cars`, `SoldCars` and `InventoryBids` state; the
//! bid is computed by the `CalcBid` black box from the number of
//! available cars, recent sales, and the dealer's own previous bids for
//! the model (re-requests are answered with the same or a lower bid,
//! per §1). The buyer is fixed per run with a desired model, reserve
//! price and acceptance probability (§5.2).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::{Bag, DataType, Schema, Tuple, Value};
use lipstick_piglatin::udf::UdfRegistry;
use lipstick_workflow::{
    execute_once, ExecutionOutput, ModuleSpec, Result, Workflow, WorkflowBuilder, WorkflowInput,
    WorkflowState,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The twelve German car models of §5.2.
pub const MODELS: [&str; 12] = [
    "Golf", "Passat", "Polo", "Tiguan", "Jetta", "A3", "A4", "A6", "C-Class", "E-Class",
    "3-Series", "5-Series",
];

/// Number of dealerships (fixed topology, §5.2).
pub const NUM_DEALERS: usize = 4;

/// Benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DealersParams {
    /// Total cars across all dealerships (`numCars`).
    pub num_cars: usize,
    /// Maximum executions per run (`numExec`).
    pub num_exec: usize,
    /// RNG seed (buyer, inventory assignment, coin flips).
    pub seed: u64,
}

impl Default for DealersParams {
    fn default() -> Self {
        DealersParams {
            num_cars: 200,
            num_exec: 10,
            seed: 42,
        }
    }
}

/// Deterministic base price per model (the paper leaves pricing to the
/// opaque `CalcBid`; any stable function works).
pub fn base_price(model: &str) -> f64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    model.hash(&mut h);
    18_000.0 + (h.finish() % 28) as f64 * 1_000.0
}

fn requests_schema() -> Schema {
    Schema::named(&[
        ("UserId", DataType::Str),
        ("BidId", DataType::Str),
        ("Model", DataType::Str),
    ])
}

fn cars_schema() -> Schema {
    Schema::named(&[("CarId", DataType::Str), ("Model", DataType::Str)])
}

fn sold_schema() -> Schema {
    Schema::named(&[("CarId", DataType::Str), ("BidId", DataType::Str)])
}

fn inventory_bids_schema() -> Schema {
    Schema::named(&[
        ("BidId", DataType::Str),
        ("UserId", DataType::Str),
        ("Model", DataType::Str),
        ("Amount", DataType::Float),
    ])
}

fn bids_schema() -> Schema {
    Schema::named(&[
        ("Dealer", DataType::Str),
        ("BidId", DataType::Str),
        ("Model", DataType::Str),
        ("Price", DataType::Float),
    ])
}

fn choice_schema() -> Schema {
    Schema::named(&[
        ("Reserve", DataType::Float),
        ("Coin", DataType::Float),
        ("AcceptP", DataType::Float),
    ])
}

fn win_schema() -> Schema {
    Schema::named(&[
        ("Dealer", DataType::Str),
        ("BidId", DataType::Str),
        ("Model", DataType::Str),
    ])
}

fn sold_out_schema() -> Schema {
    Schema::named(&[
        ("Dealer", DataType::Str),
        ("CarId", DataType::Str),
        ("BidId", DataType::Str),
    ])
}

/// Register the `CalcBid` black box (§2.2): price from availability,
/// recent sales, and the dealer's previous bids for the model.
pub fn register_udfs(udfs: &mut UdfRegistry) {
    udfs.register("CalcBid", true, Some(inventory_bids_schema()), |args| {
        let requests = args[0].as_bag().map_err(|e| e.to_string())?;
        let avail = first_count(&args[1], 1)?;
        let sold = first_count(&args[2], 1)?;
        let prev_min = bag_min_amount(&args[3], 3)?;
        let mut out = Bag::empty();
        for req in requests.iter() {
            let user = req.get(0).map_err(|e| e.to_string())?.clone();
            let bid_id = req.get(1).map_err(|e| e.to_string())?.clone();
            let model_v = req.get(2).map_err(|e| e.to_string())?.clone();
            let model = model_v.to_text().into_owned();
            let base = base_price(&model);
            let mut amount = base - 500.0 * avail as f64 + 750.0 * sold as f64;
            if let Some(prev) = prev_min {
                // a re-request is answered with the same or a lower
                // amount (§1)
                amount = amount.min(prev - 250.0);
            }
            amount = amount.max(base * 0.5);
            out.push(Tuple::new(vec![
                bid_id,
                user,
                model_v,
                Value::Float(amount),
            ]));
        }
        Ok(Value::Bag(out))
    });
}

fn first_count(bag: &Value, field: usize) -> std::result::Result<i64, String> {
    let b = bag.as_bag().map_err(|e| e.to_string())?;
    match b.iter().next() {
        Some(t) => t
            .get(field)
            .map_err(|e| e.to_string())?
            .as_i64()
            .map_err(|e| e.to_string()),
        None => Ok(0),
    }
}

fn bag_min_amount(bag: &Value, field: usize) -> std::result::Result<Option<f64>, String> {
    let b = bag.as_bag().map_err(|e| e.to_string())?;
    let mut min = None;
    for t in b.iter() {
        let v = t
            .get(field)
            .map_err(|e| e.to_string())?
            .as_f64()
            .map_err(|e| e.to_string())?;
        min = Some(match min {
            None => v,
            Some(m) if v < m => v,
            Some(m) => m,
        });
    }
    Ok(min)
}

/// The dealer's bid-phase state query — the paper's §2.2 `Qstate`,
/// extended with previous-bid consultation and state persistence.
fn dealer_bid_qstate() -> String {
    r#"
    ReqModel = FOREACH Requests GENERATE Model;
    Inventory = JOIN Cars BY Model, ReqModel BY Model;
    SoldInventory = JOIN Inventory BY Cars::CarId, SoldCars BY CarId;
    CarsByModel = GROUP Inventory BY Cars::Model;
    SoldByModel = GROUP SoldInventory BY Inventory::Cars::Model;
    NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
    NumSoldByModel = FOREACH SoldByModel GENERATE group AS Model, COUNT(SoldInventory) AS NumSold;
    PrevBids = FILTER InventoryBids BY Amount > 0.0;
    AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model, NumSoldByModel BY Model, PrevBids BY Model;
    NewBids = FOREACH AllInfoByModel GENERATE FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel, PrevBids));
    InventoryBids = UNION InventoryBids, NewBids;
    "#
    .to_string()
}

fn dealer_bid_spec(k: usize) -> Arc<ModuleSpec> {
    Arc::new(ModuleSpec {
        name: format!("Mdealer{k}"),
        input_schema: vec![("Requests".into(), requests_schema())],
        state_schema: vec![
            ("Cars".into(), cars_schema()),
            ("SoldCars".into(), sold_schema()),
            ("InventoryBids".into(), inventory_bids_schema()),
        ],
        output_schema: vec![(format!("Bids{k}"), bids_schema())],
        q_state: dealer_bid_qstate(),
        q_out: format!(
            "Bids{k} = FOREACH NewBids GENERATE 'dealer{k}' AS Dealer, BidId, Model, Amount AS Price;"
        ),
    })
}

fn dealer_buy_spec(k: usize) -> Arc<ModuleSpec> {
    Arc::new(ModuleSpec {
        name: format!("Mdealer{k}"),
        input_schema: vec![("Win".into(), win_schema())],
        state_schema: vec![
            ("Cars".into(), cars_schema()),
            ("SoldCars".into(), sold_schema()),
        ],
        output_schema: vec![(format!("Sold{k}"), sold_out_schema())],
        q_state: format!(
            r#"
            MyWin = FILTER Win BY Dealer == 'dealer{k}';
            Avail = JOIN Cars BY Model, MyWin BY Model;
            Pick0 = FOREACH Avail GENERATE Cars::CarId AS CarId, MyWin::BidId AS BidId;
            PickOrd = ORDER Pick0 BY CarId;
            Pick = LIMIT PickOrd 1;
            SoldCars = UNION SoldCars, Pick;
            "#
        ),
        q_out: format!("Sold{k} = FOREACH Pick GENERATE 'dealer{k}' AS Dealer, CarId, BidId;"),
    })
}

/// Build the car-dealership workflow and register its UDFs.
pub fn build(udfs: &mut UdfRegistry) -> Workflow {
    register_udfs(udfs);
    let mut b = WorkflowBuilder::new();

    let mreq = b.add_node(
        "Mreq",
        Arc::new(ModuleSpec {
            name: "Mreq".into(),
            input_schema: vec![("BidRequest".into(), requests_schema())],
            state_schema: vec![],
            output_schema: vec![("Requests0".into(), requests_schema())],
            q_state: String::new(),
            q_out: "Requests0 = FILTER BidRequest BY Model != '';".into(),
        }),
    );
    let mand = b.add_node(
        "Mand",
        Arc::new(ModuleSpec {
            name: "Mand".into(),
            input_schema: vec![("Requests0".into(), requests_schema())],
            state_schema: vec![],
            output_schema: vec![("Requests".into(), requests_schema())],
            q_state: String::new(),
            q_out: "Requests = FILTER Requests0 BY true;".into(),
        }),
    );
    b.add_edge(mreq, mand, &["Requests0"]);

    let mut bid_nodes = Vec::new();
    for k in 1..=NUM_DEALERS {
        let d = b.add_node(format!("Mdealer{k}.bid"), dealer_bid_spec(k));
        b.add_edge(mand, d, &["Requests"]);
        bid_nodes.push(d);
    }

    let magg = b.add_node(
        "Magg",
        Arc::new(ModuleSpec {
            name: "Magg".into(),
            input_schema: (1..=NUM_DEALERS)
                .map(|k| (format!("Bids{k}"), bids_schema()))
                .collect(),
            state_schema: vec![],
            output_schema: vec![
                ("Winner".into(), bids_schema()),
                ("Best".into(), Schema::named(&[("Price", DataType::Float)])),
            ],
            q_state: String::new(),
            q_out: r#"
                AllBids = UNION Bids1, Bids2, Bids3, Bids4;
                G = GROUP AllBids ALL;
                Best = FOREACH G GENERATE MIN(AllBids.Price) AS Price;
                Sorted = ORDER AllBids BY Price;
                Winner = LIMIT Sorted 1;
            "#
            .into(),
        }),
    );
    for (k, d) in bid_nodes.iter().enumerate() {
        let rel = format!("Bids{}", k + 1);
        b.add_edge(*d, magg, &[rel.as_str()]);
    }

    let mchoice = b.add_node(
        "Mchoice",
        Arc::new(ModuleSpec {
            name: "Mchoice".into(),
            input_schema: vec![("ChoiceIn".into(), choice_schema())],
            state_schema: vec![],
            output_schema: vec![("ChoiceOut".into(), choice_schema())],
            q_state: String::new(),
            q_out: "ChoiceOut = FILTER ChoiceIn BY true;".into(),
        }),
    );

    let mxor = b.add_node(
        "Mxor",
        Arc::new(ModuleSpec {
            name: "Mxor".into(),
            input_schema: vec![
                ("Winner".into(), bids_schema()),
                ("ChoiceOut".into(), choice_schema()),
            ],
            state_schema: vec![],
            output_schema: vec![("Win".into(), win_schema())],
            q_state: String::new(),
            q_out: r#"
                W = FOREACH Winner GENERATE 1 AS k, Dealer, BidId, Model, Price;
                C = FOREACH ChoiceOut GENERATE 1 AS j, Reserve, Coin, AcceptP;
                J = JOIN W BY k, C BY j;
                Acc = FILTER J BY Price <= Reserve AND Coin < AcceptP;
                Win = FOREACH Acc GENERATE Dealer, BidId, Model;
            "#
            .into(),
        }),
    );
    b.add_edge(magg, mxor, &["Winner"]);
    b.add_edge(mchoice, mxor, &["ChoiceOut"]);

    let mcar = b.add_node(
        "Mcar",
        Arc::new(ModuleSpec {
            name: "Mcar".into(),
            input_schema: (1..=NUM_DEALERS)
                .map(|k| (format!("Sold{k}"), sold_out_schema()))
                .collect(),
            state_schema: vec![],
            output_schema: vec![("Car".into(), sold_out_schema())],
            q_state: String::new(),
            q_out: "Car = UNION Sold1, Sold2, Sold3, Sold4;".into(),
        }),
    );
    for k in 1..=NUM_DEALERS {
        let buy = b.add_node(format!("Mdealer{k}.buy"), dealer_buy_spec(k));
        b.add_edge(mxor, buy, &["Win"]);
        let rel = format!("Sold{k}");
        b.add_edge(buy, mcar, &[rel.as_str()]);
    }

    b.build().expect("dealership workflow is statically valid")
}

/// Seed the dealers' `Cars` state: `num_cars` split evenly, each car a
/// random model, tokens `C{dealer}.{i}` (the paper's `C2`-style ids).
pub fn seed_state<T: Tracker>(
    wf: &Workflow,
    state: &mut WorkflowState<T::Ref>,
    tracker: &mut T,
    params: &DealersParams,
) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let per_dealer = params.num_cars / NUM_DEALERS;
    for k in 1..=NUM_DEALERS {
        let cars: Vec<Tuple> = (0..per_dealer)
            .map(|i| {
                let model = MODELS[rng.random_range(0..MODELS.len())];
                Tuple::new(vec![Value::str(format!("C{k}.{i}")), Value::str(model)])
            })
            .collect();
        state.seed(
            wf,
            &format!("Mdealer{k}"),
            "Cars",
            cars,
            tracker,
            move |i, _| format!("C{k}.{i}"),
        )?;
    }
    Ok(())
}

/// The buyer fixed for one run (§5.2).
#[derive(Debug, Clone)]
pub struct Buyer {
    pub user: String,
    pub model: String,
    pub reserve: f64,
    pub accept_p: f64,
}

impl Buyer {
    /// Draw a buyer from the run's RNG.
    pub fn draw(rng: &mut StdRng) -> Buyer {
        let model = MODELS[rng.random_range(0..MODELS.len())].to_string();
        let base = base_price(&model);
        Buyer {
            user: "P1".into(),
            reserve: base * rng.random_range(0.85..1.15),
            accept_p: rng.random_range(0.3..0.9),
            model,
        }
    }
}

/// What [`run`] and [`run_declining`] return: the workflow, final
/// state, and the run's outcome.
pub type DealersRun<R> = (Workflow, WorkflowState<R>, RunOutcome<R>);

/// Result of a full run (a sequence of executions).
#[derive(Debug)]
pub struct RunOutcome<R: Copy> {
    /// Number of executions performed.
    pub executions: usize,
    /// The purchased car `(Dealer, CarId, BidId)`, if the run ended in
    /// a sale.
    pub purchased: Option<Tuple>,
    /// Per-execution outputs.
    pub outputs: Vec<ExecutionOutput<R>>,
}

/// Execute a run whose buyer always declines (reserve 0), so exactly
/// `num_exec` executions happen — the protocol of the paper's timing
/// experiments ("10 bids per dealership" means 10 full executions).
pub fn run_declining<T: Tracker>(
    params: &DealersParams,
    tracker: &mut T,
) -> Result<DealersRun<T::Ref>> {
    let mut udfs = UdfRegistry::new();
    let wf = build(&mut udfs);
    let mut state = WorkflowState::empty(&wf);
    seed_state(&wf, &mut state, tracker, params)?;
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut buyer = Buyer::draw(&mut rng);
    buyer.reserve = 0.0; // no bid is ever accepted
    let mut outputs = Vec::with_capacity(params.num_exec);
    for e in 0..params.num_exec {
        let input = execution_input(&buyer, e as u32, 0.99);
        outputs.push(execute_once(
            &wf, &input, &mut state, tracker, &udfs, e as u32,
        )?);
    }
    let executions = outputs.len();
    Ok((
        wf,
        state,
        RunOutcome {
            executions,
            purchased: None,
            outputs,
        },
    ))
}

/// Execute a full run: consecutive executions with a fixed buyer until
/// purchase or `num_exec`.
pub fn run<T: Tracker>(params: &DealersParams, tracker: &mut T) -> Result<DealersRun<T::Ref>> {
    let mut udfs = UdfRegistry::new();
    let wf = build(&mut udfs);
    let mut state = WorkflowState::empty(&wf);
    seed_state(&wf, &mut state, tracker, params)?;
    let outcome = run_with(&wf, &udfs, &mut state, tracker, params)?;
    Ok((wf, state, outcome))
}

/// Execute a run against pre-built workflow/state (lets callers reuse
/// the workflow across runs, as the benchmark driver does).
pub fn run_with<T: Tracker>(
    wf: &Workflow,
    udfs: &UdfRegistry,
    state: &mut WorkflowState<T::Ref>,
    tracker: &mut T,
    params: &DealersParams,
) -> Result<RunOutcome<T::Ref>> {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let buyer = Buyer::draw(&mut rng);
    let mut outputs = Vec::new();
    let mut purchased = None;
    let mut executions = 0;
    for e in 0..params.num_exec {
        let input = execution_input(&buyer, e as u32, rng.random_range(0.0..1.0));
        let out = execute_once(wf, &input, state, tracker, udfs, e as u32)?;
        executions += 1;
        let car = out.relation("Mcar", "Car").expect("Mcar always outputs");
        if let Some(row) = car.rows.first() {
            purchased = Some(row.tuple.clone());
            outputs.push(out);
            break;
        }
        outputs.push(out);
    }
    Ok(RunOutcome {
        executions,
        purchased,
        outputs,
    })
}

/// The workflow input of one execution: the bid request and the buyer's
/// choice parameters (reserve, a coin flip, acceptance probability).
pub fn execution_input(buyer: &Buyer, execution: u32, coin: f64) -> WorkflowInput {
    WorkflowInput::new()
        .provide(
            "Mreq",
            "BidRequest",
            vec![Tuple::new(vec![
                Value::str(&buyer.user),
                Value::str(format!("B{execution}")),
                Value::str(&buyer.model),
            ])],
        )
        .provide(
            "Mchoice",
            "ChoiceIn",
            vec![Tuple::new(vec![
                Value::Float(buyer.reserve),
                Value::Float(coin),
                Value::Float(buyer.accept_p),
            ])],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_core::graph::{GraphTracker, NoTracker};
    use lipstick_core::query::subgraph::ancestors;
    use lipstick_core::NodeKind;

    #[test]
    fn workflow_builds_and_validates() {
        let mut udfs = UdfRegistry::new();
        let wf = build(&mut udfs);
        // Mreq + Mchoice + Mand + 4 bid + Magg + Mxor + 4 buy + Mcar = 14
        assert_eq!(wf.len(), 14);
        assert_eq!(wf.input_nodes().len(), 2);
        assert_eq!(wf.output_nodes().len(), 1);
    }

    #[test]
    fn run_produces_bids_every_execution() {
        let params = DealersParams {
            num_cars: 48,
            num_exec: 4,
            seed: 7,
        };
        let mut tracker = NoTracker;
        let (_, _, outcome) = run(&params, &mut tracker).unwrap();
        assert!(outcome.executions >= 1);
        assert_eq!(outcome.outputs.len(), outcome.executions);
    }

    #[test]
    fn a_patient_buyer_eventually_purchases() {
        // With many executions, declining bids fall until they pass the
        // reserve, so some seed in a small range must produce a sale.
        let mut any_sale = false;
        for seed in 0..6 {
            let params = DealersParams {
                num_cars: 48,
                num_exec: 30,
                seed,
            };
            let mut tracker = NoTracker;
            let (wf, state, outcome) = run(&params, &mut tracker).unwrap();
            if let Some(car) = &outcome.purchased {
                any_sale = true;
                assert_eq!(car.arity(), 3);
                // the sale was recorded in some dealer's SoldCars state
                let sold_somewhere = (1..=NUM_DEALERS).any(|k| {
                    state
                        .relation(&wf, &format!("Mdealer{k}"), "SoldCars")
                        .is_some_and(|r| !r.is_empty())
                });
                assert!(sold_somewhere);
                break;
            }
        }
        assert!(any_sale, "no seed in 0..6 produced a sale");
    }

    #[test]
    fn rerequest_bids_do_not_increase() {
        let params = DealersParams {
            num_cars: 48,
            num_exec: 5,
            seed: 3,
        };
        let mut tracker = NoTracker;
        let mut udfs = UdfRegistry::new();
        let wf = build(&mut udfs);
        let mut state = WorkflowState::empty(&wf);
        seed_state(&wf, &mut state, &mut tracker, &params).unwrap();
        let buyer = Buyer {
            user: "P1".into(),
            model: "Golf".into(),
            reserve: 0.0, // never accepts → forces re-requests
            accept_p: 1.0,
        };
        let mut last_best: Option<f64> = None;
        for e in 0..params.num_exec {
            let input = execution_input(&buyer, e as u32, 0.99);
            let out = execute_once(&wf, &input, &mut state, &mut tracker, &udfs, e as u32).unwrap();
            let best = out.relation("Magg", "Best");
            // Magg is not an output node; read Winner via Mcar path
            // instead: use the winner staged nowhere — so check dealer
            // state: last InventoryBids amount per execution.
            let _ = best;
            let bids = state.relation(&wf, "Mdealer1", "InventoryBids").unwrap();
            let latest = bids
                .rows
                .iter()
                .map(|r| r.tuple.get(3).unwrap().as_f64().unwrap())
                .fold(f64::INFINITY, f64::min);
            if let Some(prev) = last_best {
                assert!(
                    latest <= prev,
                    "re-request bid increased: {latest} > {prev}"
                );
            }
            last_best = Some(latest);
        }
    }

    #[test]
    fn provenance_run_matches_plain_run() {
        let params = DealersParams {
            num_cars: 24,
            num_exec: 3,
            seed: 11,
        };
        let mut t1 = NoTracker;
        let (_, _, o1) = run(&params, &mut t1).unwrap();
        let mut t2 = GraphTracker::new();
        let (_, _, o2) = run(&params, &mut t2).unwrap();
        assert_eq!(o1.executions, o2.executions);
        assert_eq!(o1.purchased, o2.purchased);
    }

    #[test]
    fn fine_grained_dependencies_are_sparse() {
        // §5.5: an output depends on a small fraction of state tuples,
        // not on all of them.
        let params = DealersParams {
            num_cars: 120,
            num_exec: 2,
            seed: 5,
        };
        let mut tracker = GraphTracker::new();
        let (_, _, _outcome) = run(&params, &mut tracker).unwrap();
        let g = tracker.finish();
        // Count the base-tuple ancestors of the last module output in
        // the graph (a late-stage tuple, after aggregation).
        let some_output = g
            .iter_visible()
            .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
            .map(|(id, _)| id)
            .last()
            .unwrap();
        let anc = ancestors(&g, some_output).unwrap();
        let base_deps = anc
            .iter()
            .filter(|id| matches!(g.node(**id).kind, NodeKind::BaseTuple { .. }))
            .count();
        let total_base = g
            .iter_visible()
            .filter(|(_, n)| matches!(n.kind, NodeKind::BaseTuple { .. }))
            .count();
        assert!(
            base_deps < total_base / 2,
            "output depends on {base_deps}/{total_base} state tuples — not fine-grained"
        );
    }

    #[test]
    fn base_price_is_stable_and_bounded() {
        for m in MODELS {
            let p = base_price(m);
            assert_eq!(p, base_price(m));
            assert!((18_000.0..=45_000.0).contains(&p));
        }
    }
}
