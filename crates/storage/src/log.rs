//! The provenance log: graph serialization and loading.
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic  "LPSTK"          5 bytes
//! version u8              currently 1
//! node_count
//! per node (in id order):
//!   flags u8              bit0 = deleted tombstone
//!   role                  tag + optional invocation id
//!   kind                  tag + payload
//!   pred_count, pred ids  (edges are stored once, as predecessors)
//! invocation_count
//! per invocation: module string, execution, m-node id
//! ```
//!
//! Figure 6 of the paper measures exactly this path: reading
//! provenance-annotated data from disk and building the in-memory
//! graph.

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use lipstick_core::{NodeId, ProvGraph};

use crate::codec::{get_kind, get_role, put_kind, put_retired_zoom, put_role};
use crate::error::{Result, StorageError};
use crate::footer::FooterWriter;
use crate::io::{default_io, StorageIo};
use crate::varint::{get_count, get_str, get_u32, put_str, put_u64};
use lipstick_core::graph::{InvocationInfo, RETIRED_STASH};
use lipstick_core::NodeKind;

pub(crate) const MAGIC: &[u8; 5] = b"LPSTK";
/// Original format: header + records + invocation table, full decode
/// only.
pub const VERSION_V1: u8 = 1;
/// Footer-indexed format: identical records, plus a trailing
/// [`crate::footer::LogIndex`] enabling lazy per-record reads.
pub const VERSION_V2: u8 = 2;

/// Serialize a graph to bytes.
///
/// Graphs with active ZoomOuts are rejected: zoom is a query-time view;
/// persist the underlying graph (ZoomIn first) and re-apply zooming
/// after loading.
pub fn encode_graph(graph: &ProvGraph) -> Result<Vec<u8>> {
    encode_graph_versioned(graph, VERSION_V1)
}

/// Serialize a graph in the v2 indexed format: the same records as v1
/// followed by a node-table footer ([`crate::footer::LogIndex`]) that
/// lets readers fault in individual records without a full decode.
pub fn encode_graph_v2(graph: &ProvGraph) -> Result<Vec<u8>> {
    encode_graph_versioned(graph, VERSION_V2)
}

fn encode_graph_versioned(graph: &ProvGraph, version: u8) -> Result<Vec<u8>> {
    let zoomed: Vec<String> = graph
        .zoomed_out_modules()
        .into_iter()
        .map(String::from)
        .collect();
    if !zoomed.is_empty() {
        return Err(StorageError::ZoomedGraph(zoomed));
    }
    let mut buf = BytesMut::with_capacity(64 + graph.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u8(version);
    put_u64(&mut buf, graph.len() as u64);
    let mut footer = FooterWriter::new(graph.len());
    for (_, node) in graph.iter() {
        footer.record_starts_at(buf.len() as u64);
        let flags = u8::from(node.is_deleted());
        buf.put_u8(flags);
        put_role(&mut buf, &node.role);
        // Composite zoom nodes retired by ZoomIn stay in the arena as
        // unlinked tombstones; persist them as such so a graph that
        // went through a zoom cycle remains storable.
        if let NodeKind::Zoomed { stash } = node.kind {
            if !node.is_deleted() {
                // Unreachable given the zoomed-modules rejection above,
                // but kept as a hard invariant.
                return Err(StorageError::Corrupt(
                    "zoomed composite nodes are views and cannot be persisted".into(),
                ));
            }
            if stash != RETIRED_STASH {
                // A dead composite must carry the reserved sentinel
                // (ZoomIn remaps it); a live index here would decode to
                // a different kind than was encoded.
                return Err(StorageError::Corrupt(format!(
                    "retired zoom composite carries live stash index {stash}"
                )));
            }
            put_retired_zoom(&mut buf);
        } else {
            put_kind(&mut buf, &node.kind)?;
        }
        put_u64(&mut buf, node.preds().len() as u64);
        for p in node.preds() {
            put_u64(&mut buf, u64::from(p.0));
        }
    }
    footer.records_end_at(buf.len() as u64);
    put_u64(&mut buf, graph.invocations().len() as u64);
    for info in graph.invocations() {
        put_str(&mut buf, &info.module);
        put_u64(&mut buf, u64::from(info.execution));
        put_u64(&mut buf, u64::from(info.m_node.0));
    }
    if version == VERSION_V2 {
        footer.finish(graph, &mut buf);
    }
    Ok(buf.to_vec())
}

/// The format version of an encoded log, if the header is recognisable
/// (`None` = not a Lipstick provenance file). Lets callers choose
/// between a full decode and a lazy open without reading twice.
pub fn log_version(data: &[u8]) -> Option<u8> {
    if data.len() >= 6 && &data[..5] == MAGIC {
        Some(data[5])
    } else {
        None
    }
}

/// Decode the invocation table section (shared by the full loader and
/// the paged reader).
pub(crate) fn decode_invocations(
    buf: &mut impl Buf,
    node_count: usize,
) -> Result<Vec<InvocationInfo>> {
    let inv_count = get_count(buf)?;
    let mut invocations = Vec::with_capacity(inv_count);
    for _ in 0..inv_count {
        let module = get_str(buf)?;
        let execution = get_u32(buf)?;
        let m_node = get_u32(buf)?;
        if m_node as usize >= node_count {
            return Err(StorageError::Corrupt(format!(
                "invocation m-node {m_node} beyond node count"
            )));
        }
        invocations.push(InvocationInfo {
            module,
            execution,
            m_node: NodeId(m_node),
        });
    }
    Ok(invocations)
}

/// Deserialize a graph from bytes.
pub fn decode_graph(bytes: &[u8]) -> Result<ProvGraph> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 6 {
        return Err(StorageError::BadMagic);
    }
    let mut magic = [0u8; 5];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(StorageError::BadVersion(version));
    }
    // v2 records are identical to v1; the sequential decode simply
    // stops before the trailing footer, which only lazy readers parse.
    let node_count = get_count(&mut buf)?;
    let mut graph = ProvGraph::new();
    // First pass: create nodes; collect pred lists.
    let mut pred_lists: Vec<Vec<NodeId>> = Vec::with_capacity(node_count);
    let mut deleted_flags: Vec<bool> = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        if !buf.has_remaining() {
            return Err(StorageError::Corrupt("truncated node record".into()));
        }
        let flags = buf.get_u8();
        let role = get_role(&mut buf)?;
        let kind = get_kind(&mut buf)?;
        let preds = decode_pred_list(&mut buf, node_count)?;
        graph.add_node(kind, role);
        pred_lists.push(preds);
        deleted_flags.push(flags & 1 != 0);
    }
    // Second pass: edges (both directions) and tombstones.
    for (idx, preds) in pred_lists.into_iter().enumerate() {
        let to = NodeId(idx as u32);
        for from in preds {
            if from == to {
                return Err(StorageError::Corrupt(format!("self-loop on node {idx}")));
            }
            graph.add_edge(from, to);
        }
    }
    for (idx, deleted) in deleted_flags.into_iter().enumerate() {
        if deleted {
            graph.set_node_deleted(NodeId(idx as u32), true);
        }
    }
    for info in decode_invocations(&mut buf, node_count)? {
        graph.register_invocation(info.module, info.execution, info.m_node);
    }
    Ok(graph)
}

/// Decode one record's predecessor list, validating ids against the
/// node count.
pub(crate) fn decode_pred_list(buf: &mut impl Buf, node_count: usize) -> Result<Vec<NodeId>> {
    let pred_count = get_count(buf)?;
    let mut preds = Vec::with_capacity(pred_count);
    for _ in 0..pred_count {
        let p = get_u32(buf)?;
        if p as usize >= node_count {
            return Err(StorageError::Corrupt(format!(
                "edge references node {p} beyond node count {node_count}"
            )));
        }
        preds.push(NodeId(p));
    }
    Ok(preds)
}

/// Write a graph to a file.
pub fn write_graph(graph: &ProvGraph, path: impl AsRef<Path>) -> Result<()> {
    default_io().create(path.as_ref(), &encode_graph(graph)?)?;
    Ok(())
}

/// Write a graph to a file in the v2 indexed format (see
/// [`encode_graph_v2`]).
pub fn write_graph_v2(graph: &ProvGraph, path: impl AsRef<Path>) -> Result<()> {
    write_graph_v2_io(graph, path.as_ref(), default_io().as_ref())
}

/// [`write_graph_v2`] through an explicit IO implementation. Writes the
/// bytes but does *not* sync — callers needing durability (COMPACT's
/// temp segment) issue the sync themselves, so it stays a distinct
/// injectable fault point.
pub fn write_graph_v2_io(graph: &ProvGraph, path: &Path, io: &dyn StorageIo) -> Result<()> {
    io.create(path, &encode_graph_v2(graph)?)?;
    Ok(())
}

/// Load a graph from a file — the Query Processor's first step (§5.1).
pub fn load_graph(path: impl AsRef<Path>) -> Result<ProvGraph> {
    decode_graph(&default_io().read(path.as_ref())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_core::agg::AggOp;
    use lipstick_core::graph::{GraphTracker, Tracker};
    use lipstick_core::query::{propagate_deletion_inplace, zoom_out};
    use lipstick_nrel::Value;

    fn sample_graph() -> ProvGraph {
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        let c2 = t.base("C2");
        let c3 = t.base("C3");
        t.begin_invocation("Mdealer1", 0);
        let i = t.module_input(wi);
        let s2 = t.state_node(c2);
        let s3 = t.state_node(c3);
        let join = t.times(&[i, s2]);
        let grp = t.delta(&[join, s3]);
        let agg = t.agg(
            AggOp::Count,
            &[
                (
                    join,
                    lipstick_core::graph::tracker::AggItemValue::Const(Value::Int(1)),
                ),
                (
                    s3,
                    lipstick_core::graph::tracker::AggItemValue::Const(Value::Int(1)),
                ),
            ],
        );
        let bb = t.blackbox("CalcBid", &[grp, agg], true);
        let proj = t.plus(&[grp]);
        t.module_output(proj, &[bb]);
        t.end_invocation();
        t.finish()
    }

    #[test]
    fn graph_round_trip_exact() {
        let g = sample_graph();
        let bytes = encode_graph(&g).unwrap();
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g.visible_signature(), g2.visible_signature());
        assert_eq!(g.invocations().len(), g2.invocations().len());
        assert_eq!(
            g.invocation(lipstick_core::InvocationId(0)).module,
            g2.invocation(lipstick_core::InvocationId(0)).module
        );
        // roles survive (ZoomOut works on the loaded graph)
        let mut g3 = g2.clone();
        zoom_out(&mut g3, &["Mdealer1"]).unwrap();
        assert!(g3.visible_count() < g2.visible_count());
    }

    #[test]
    fn tombstones_survive_round_trip() {
        let mut g = sample_graph();
        let victim = g
            .iter_visible()
            .find(|(_, n)| matches!(&n.kind, lipstick_core::NodeKind::BaseTuple { token } if token.as_str() == "C2"))
            .map(|(id, _)| id)
            .unwrap();
        propagate_deletion_inplace(&mut g, victim).unwrap();
        let bytes = encode_graph(&g).unwrap();
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g.visible_count(), g2.visible_count());
        assert_eq!(g.visible_signature(), g2.visible_signature());
    }

    #[test]
    fn zoomed_graph_rejected() {
        let mut g = sample_graph();
        zoom_out(&mut g, &["Mdealer1"]).unwrap();
        assert!(matches!(
            encode_graph(&g),
            Err(StorageError::ZoomedGraph(_))
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        assert!(matches!(
            decode_graph(b"NOPEx"),
            Err(StorageError::BadMagic)
        ));
        let mut bytes = encode_graph(&sample_graph()).unwrap();
        bytes[5] = 99; // version byte
        assert!(matches!(
            decode_graph(&bytes),
            Err(StorageError::BadVersion(99))
        ));
    }

    #[test]
    fn corrupt_edge_rejected() {
        let g = sample_graph();
        let bytes = encode_graph(&g).unwrap();
        // Truncate mid-file: must error, not panic.
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_graph(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_round_trip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("lipstick-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.lpstk");
        write_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g.visible_signature(), g2.visible_signature());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn expr_extraction_survives_round_trip() {
        let g = sample_graph();
        let bytes = encode_graph(&g).unwrap();
        let g2 = decode_graph(&bytes).unwrap();
        for (id, n) in g.iter_visible() {
            if !n.kind.is_value_node() {
                assert_eq!(
                    g.expr_of(id).to_string(),
                    g2.expr_of(id).to_string(),
                    "expr of {id} differs"
                );
            }
        }
    }
}
