//! The resident/paged/server differential harness.
//!
//! Random WorkflowGen graphs (Car-dealerships and Arctic-stations
//! parameter sweeps) are written as v2 logs; random well-formed
//! read-only statements (see `lipstick_proql::testgen`) then run
//! four ways —
//!
//! 1. a **resident** session (`Session::load`),
//! 2. a **paged** session (`Session::open`),
//! 3. an **append** session (`Session::open_append`), whose mutations
//!    commit durable tail records instead of promoting — the harness
//!    asserts `promotions() == 0` stays true throughout, and
//!    occasionally issues `COMPACT` on this engine alone (a physical
//!    reorganization the other engines have no counterpart for), and
//! 4. a round trip through **`lipstick-serve`** (line protocol, over a
//!    second paged session),
//!
//! and every answer must agree byte-for-byte once the one sanctioned
//! difference — the backend-dependent `(visited N)` work figure — is
//! masked. Error paths are differential too: if one engine rejects a
//! statement, all three must reject it with the same message. On
//! divergence the harness *shrinks* the statement (dropping clauses,
//! conjuncts, and operands while the divergence persists) and reports
//! the minimal failing statement.
//!
//! Statement sequences are **mutation-interleaved**: every few
//! read-only statements, one random mutation (`DELETE … PROPAGATE`,
//! `ZOOM OUT`/`ZOOM IN`, `BUILD INDEX`) is applied to all three engines
//! and its answer compared like any other. That exercises paged→
//! resident promotion, the write path of the server (epoch bumps and
//! cache invalidation), and — once a `BUILD INDEX` has run — the
//! incremental in-place repair of the reach index, whose debug
//! assertion cross-checks every repaired closure against a fresh build
//! while the harness checks answers across engines.
//!
//! The case budget comes from `PROPTEST_CASES` (default 256), so CI
//! pins a deterministic, bounded run; generation itself is seeded and
//! deterministic.

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::ast::Statement;
use lipstick_proql::testgen::{self, Rng, Vocab};
use lipstick_proql::Session;
use lipstick_serve::{Client, Reply, Server, ServerConfig};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::arctic::{self, ArcticParams, Selectivity, Topology};
use lipstick_workflowgen::dealers::{self, DealersParams};

/// Statements per generated graph (each graph pays for a log write,
/// two session opens, and a server start).
const STMTS_PER_GRAPH: usize = 32;

/// One mutation is interleaved after every run of this many read-only
/// statements.
const MUTATE_EVERY: usize = 8;

fn case_budget() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// A random small WorkflowGen graph: alternate the two workload
/// families, varying their shape parameters.
fn random_graph(rng: &mut Rng) -> ProvGraph {
    let mut tracker = GraphTracker::new();
    if rng.chance(50) {
        let params = DealersParams {
            num_cars: 6 + rng.below(20),
            num_exec: 1 + rng.below(3),
            seed: rng.next_u64(),
        };
        dealers::run_declining(&params, &mut tracker).expect("dealers run");
    } else {
        let params = ArcticParams {
            stations: 2 + rng.below(4),
            topology: match rng.below(3) {
                0 => Topology::Serial,
                1 => Topology::Parallel,
                _ => Topology::Dense { fanout: 2 },
            },
            selectivity: [
                Selectivity::All,
                Selectivity::Season,
                Selectivity::Month,
                Selectivity::Year,
            ][rng.below(4)],
            num_exec: 1 + rng.below(2),
            seed: rng.next_u64(),
        };
        arctic::run(&params, &mut tracker).expect("arctic run");
    }
    tracker.finish()
}

fn temp_log(graph: &ProvGraph, tag: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lipstick-proql-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("graph-{tag}.lpstk"));
    write_graph_v2(graph, &path).unwrap();
    path
}

/// Mask the backend-dependent `(visited N)` figure: resident scans
/// count swept nodes, paged scans count postings candidates, and both
/// are legitimate costs of the *same* answer.
fn mask_visited(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find("(visited ") {
        let tail = &rest[at + "(visited ".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 && tail[digits..].starts_with(')') {
            out.push_str(&rest[..at]);
            out.push_str("(visited _)");
            rest = &tail[digits + 1..];
        } else {
            out.push_str(&rest[..at + "(visited ".len()]);
            rest = tail;
        }
    }
    out.push_str(rest);
    out
}

/// One engine's answer, comparable across engines: the rendered
/// payload (visited-masked) or the error message (newlines flattened
/// the way the server's `ERR` frame flattens them).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Answer {
    Ok(String),
    Err(String),
}

fn local_answer(session: &Session, text: &str) -> Answer {
    match session.run_read(text) {
        Ok(out) => Answer::Ok(mask_visited(&out.to_string())),
        Err(e) => Answer::Err(e.to_string().replace('\n', "; ")),
    }
}

/// Mutations go through the exclusive path (the server routes them
/// through its write lock on its own).
fn local_mutation_answer(session: &mut Session, text: &str) -> Answer {
    match session.run_one(text) {
        Ok(out) => Answer::Ok(mask_visited(&out.to_string())),
        Err(e) => Answer::Err(e.to_string().replace('\n', "; ")),
    }
}

fn server_answer(client: &mut Client, text: &str) -> Answer {
    match client.query(text).expect("server connection") {
        Reply::Ok { body, .. } => Answer::Ok(mask_visited(&body)),
        Reply::Err(m) => Answer::Err(m),
        // The harness server has no write-queue limit, so it never
        // sheds; a BUSY here is itself a divergence worth failing on.
        Reply::Busy { retry_after_ms } => {
            panic!("unexpected BUSY retry_after_ms={retry_after_ms} from an unbounded server")
        }
    }
}

/// Where the four engines disagree on a statement, if anywhere.
fn divergence(
    resident: &Session,
    paged: &Session,
    append: &Session,
    client: &mut Client,
    stmt: &Statement,
) -> Option<String> {
    let text = stmt.to_string();
    let r = local_answer(resident, &text);
    let p = local_answer(paged, &text);
    if r != p {
        return Some(format!("resident: {r:?}\n  paged:    {p:?}"));
    }
    let a = local_answer(append, &text);
    if p != a {
        return Some(format!("paged:  {p:?}\n  append: {a:?}"));
    }
    let s = server_answer(client, &text);
    if p != s {
        return Some(format!("paged:  {p:?}\n  server: {s:?}"));
    }
    // Ask again: the reply must be reproducible through the server's
    // result cache (grouped/shaped payloads included).
    let s2 = server_answer(client, &text);
    if s != s2 {
        return Some(format!("server first: {s:?}\n  server again: {s2:?}"));
    }
    None
}

/// Shrink to a minimal still-diverging statement.
fn shrink_divergence(
    resident: &Session,
    paged: &Session,
    append: &Session,
    client: &mut Client,
    start: Statement,
) -> Statement {
    let mut current = start;
    loop {
        let simpler = testgen::shrink(&current)
            .into_iter()
            .find(|s| divergence(resident, paged, append, client, s).is_some());
        match simpler {
            Some(s) => current = s,
            None => return current,
        }
    }
}

/// Replace the digits after every occurrence of `key` with `_`.
fn mask_digits_after(s: &str, key: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find(key) {
        let tail = &rest[at + key.len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..at]);
        out.push_str(key);
        out.push('_');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Drop every ` reads=N` attribute: only paged backends charge record
/// decodes, so the resident rendering has no such field at all.
fn strip_reads(s: &str) -> String {
    let key = " reads=";
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find(key) {
        let tail = &rest[at + key.len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        out.push_str(&rest[..at]);
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Reduce an `EXPLAIN ANALYZE` answer to its cross-engine-comparable
/// core: the `actuals:` section onward (the plan section above it is
/// legitimately backend-specific), with wall times masked, visited
/// figures masked (resident scans sweep nodes, paged scans count
/// postings candidates), and paged-only `reads=` attributes dropped.
/// What remains — the span tree's shape, labels, and `rows=` values —
/// must agree byte-for-byte across engines.
fn comparable_actuals(answer: Answer) -> Answer {
    match answer {
        Answer::Ok(body) => {
            let at = body
                .find("actuals:")
                .unwrap_or_else(|| panic!("no actuals section in: {body}"));
            Answer::Ok(strip_reads(&mask_digits_after(
                &mask_digits_after(
                    // The summary line's wall time: `total: N row(s), T µs`.
                    &mask_digits_after(&body[at..], "row(s), "),
                    "time_us=",
                ),
                "visited=",
            )))
        }
        err => err,
    }
}

/// `EXPLAIN ANALYZE` is differential too: for every generated read-only
/// statement, the span tree of actuals (structure, labels, row counts)
/// must be identical across the resident executor, the paged executor,
/// and a server round trip — only timings, visited costs, and paged
/// fault counts are backend-dependent.
#[test]
fn explain_analyze_actuals_agree_across_engines() {
    let budget = (case_budget() / 4).max(16);
    let mut rng = Rng::new(0x0b5e_12ab_1e0a_c715);
    let mut executed = 0usize;
    let mut graph_tag = 1_000usize; // distinct temp-file range from the main test

    while executed < budget {
        let graph = random_graph(&mut rng);
        let vocab = Vocab::from_graph(&graph);
        let path = temp_log(&graph, graph_tag);
        graph_tag += 1;

        let resident = Session::load(&path).unwrap();
        let paged = Session::open(&path).unwrap();
        let handle = Server::new(
            Session::open(&path).unwrap(),
            ServerConfig {
                workers: 2,
                cache_capacity: 128,
                ..ServerConfig::default()
            },
        )
        .serve("127.0.0.1:0")
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        for _ in 0..(STMTS_PER_GRAPH / 2).min(budget - executed) {
            let stmt = testgen::statement(&vocab, &mut rng);
            let text = format!("EXPLAIN ANALYZE {stmt}");
            let r = comparable_actuals(local_answer(&resident, &text));
            let p = comparable_actuals(local_answer(&paged, &text));
            let s = comparable_actuals(server_answer(&mut client, &text));
            assert!(
                r == p && p == s,
                "ANALYZE actuals diverged.\n  statement: {text}\n  resident: {r:?}\n  \
                 paged:    {p:?}\n  server:   {s:?}"
            );
            executed += 1;
        }

        drop(client);
        handle.shutdown();
        std::fs::remove_file(&path).ok();
    }
}

/// Broken and lint-worthy statements whose diagnostics must be
/// byte-identical across engines: one per diagnostic family, plus lex
/// errors and mutating statements under CHECK.
const INVALID_CORPUS: &[&str] = &[
    "MATCH q-nodes",
    "MATCH nodes WHERE size = 3",
    "MATCH nodes WHERE kind = 'detla'",
    "MATCH nodes WHERE module = 'NoSuchModule'",
    "MATCH nodes WHERE",
    "EVAL #0 IN countng",
    "MATCH nodes WHERE execution = 'two'",
    "MATCH m-nodes WHERE token = 'C2'",
    "SUBGRAPH OF #999999",
    "MATCH nodes WHERE module = 'a' AND module = 'b'",
    "MATCH nodes WHERE execution > 5 AND execution < 3",
    "MATCH nodes",
    "ANCESTORS OF #0",
    "DESCENDANTS OF #0 DEPTH 0",
    "MATCH nodes WHERE kind LIKE 'delta'",
    "MATCH base-nodes WHERE kind != 'base_tuple'",
    "MATCH nodes WHERE role = 'free' AND role = 'free'",
    "DELETE #0 PROPAGATE",
    "MATCH nodes @",
    "MATCH nodes WHERE execution = 99999",
];

/// `CHECK` / `EXPLAIN LINT` are differential too, with **no masking**:
/// diagnostics carry no visited figures or backend state by design, so
/// the rendering must agree byte-for-byte across the resident session,
/// the paged session, and a server round trip — for a seeded corpus of
/// invalid statements and for a seeded stream of generated valid ones.
#[test]
fn check_diagnostics_agree_byte_for_byte_across_engines() {
    let mut rng = Rng::new(0xc4ec_d1a6_0357_11ab);
    let graph = random_graph(&mut rng);
    let vocab = Vocab::from_graph(&graph);
    let path = temp_log(&graph, 9_000);

    let resident = Session::load(&path).unwrap();
    let paged = Session::open(&path).unwrap();
    assert!(paged.is_paged());
    let handle = Server::new(
        Session::open(&path).unwrap(),
        ServerConfig {
            workers: 2,
            cache_capacity: 128,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let generated: Vec<String> = (0..24)
        .map(|_| testgen::statement(&vocab, &mut rng).to_string())
        .collect();
    let corpus = INVALID_CORPUS
        .iter()
        .map(|s| s.to_string())
        .chain(generated);

    for inner in corpus {
        for prefix in ["CHECK", "EXPLAIN LINT"] {
            let text = format!("{prefix} {inner}");
            let r = local_answer(&resident, &text);
            let p = local_answer(&paged, &text);
            let s = server_answer(&mut client, &text);
            assert!(
                r == p && p == s,
                "diagnostics diverged.\n  statement: {text}\n  resident: {r:?}\n  \
                 paged:    {p:?}\n  server:   {s:?}"
            );
            // Inner text that doesn't even lex is rejected by the
            // *outer* statement lexer before CHECK can capture it —
            // identically on every engine, per the agreement assert
            // above. Everything else must come back as diagnostics.
            if !inner.contains('@') {
                assert!(
                    matches!(&r, Answer::Ok(_)),
                    "CHECK itself must succeed, returning diagnostics: {text} -> {r:?}"
                );
            }
        }
    }
    assert!(paged.is_paged(), "CHECK must not promote the paged session");

    drop(client);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn differential_resident_paged_server() {
    let budget = case_budget();
    let mut rng = Rng::new(0x11f5_71c4_d1ff_e001);
    let mut executed = 0usize;
    let mut graph_tag = 0usize;

    while executed < budget {
        let graph = random_graph(&mut rng);
        let vocab = Vocab::from_graph(&graph);
        let path = temp_log(&graph, graph_tag);
        graph_tag += 1;

        let mut resident = Session::load(&path).unwrap();
        let mut paged = Session::open(&path).unwrap();
        assert!(paged.is_paged());
        let mut append = Session::open_append(&path).unwrap();
        assert!(append.is_append());
        let handle = Server::new(
            Session::open(&path).unwrap(),
            ServerConfig {
                workers: 2,
                cache_capacity: 128,
                ..ServerConfig::default()
            },
        )
        .serve("127.0.0.1:0")
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        for i in 0..STMTS_PER_GRAPH.min(budget - executed) {
            // Interleave mutations between runs of read-only
            // statements: the three engines must stay in lock-step
            // through promotion, epoch bumps, and in-place reach-index
            // repair.
            let mutating = i % MUTATE_EVERY == MUTATE_EVERY - 1;
            let stmt = if mutating {
                testgen::mutation(&vocab, &mut rng)
            } else {
                testgen::statement(&vocab, &mut rng)
            };
            // The canonical rendering must survive a parse round trip
            // before the engines even run it — otherwise the three
            // engines would be answering different statements.
            let text = stmt.to_string();
            let reparsed = lipstick_proql::parser::parse_statement(&text)
                .unwrap_or_else(|e| panic!("canonical form failed to parse: {text}\n  {e}"));
            assert_eq!(reparsed, stmt, "display/parse round trip for {text}");

            if mutating {
                let r = local_mutation_answer(&mut resident, &text);
                let p = local_mutation_answer(&mut paged, &text);
                let a = local_mutation_answer(&mut append, &text);
                let s = server_answer(&mut client, &text);
                assert!(
                    r == p && p == a && p == s,
                    "engines diverged on mutation.\n  statement: {stmt}\n  resident: {r:?}\n  \
                     paged:    {p:?}\n  append:   {a:?}\n  server:   {s:?}"
                );
                // Occasionally fold the append session's tail into a
                // fresh sealed segment mid-stream. COMPACT is issued on
                // this engine alone (the others have no tail), so its
                // answer is asserted directly, not compared: it must
                // succeed whenever no module is zoomed out, and the
                // statements that follow must still agree across all
                // four engines.
                let zoomed = append
                    .append_log()
                    .map(|log| !log.zoomed_out_modules().is_empty())
                    .unwrap_or(true);
                if !zoomed && rng.chance(33) {
                    append.run_one("COMPACT").expect("mid-stream COMPACT");
                }
            } else if let Some(detail) = divergence(&resident, &paged, &append, &mut client, &stmt)
            {
                let minimal =
                    shrink_divergence(&resident, &paged, &append, &mut client, stmt.clone());
                let minimal_detail = divergence(&resident, &paged, &append, &mut client, &minimal)
                    .unwrap_or_default();
                panic!(
                    "engines diverged.\n  statement: {stmt}\n  {detail}\n  \
                     shrunk to: {minimal}\n  {minimal_detail}"
                );
            }
            executed += 1;
        }

        // The whole point of the append backend: an entire mutation
        // stream (plus compactions) without a single promotion.
        assert_eq!(
            append.promotions(),
            0,
            "append session must never promote to resident"
        );
        assert!(append.is_append());

        drop(client);
        drop(append);
        handle.shutdown();
        std::fs::remove_file(&path).ok();
        let mut tail = path.clone().into_os_string();
        tail.push(".tail");
        std::fs::remove_file(tail).ok();
    }

    assert!(
        executed >= budget,
        "harness must exercise the full case budget ({executed} of {budget})"
    );
}
