//! # ProQL — a declarative query language over provenance graphs
//!
//! The paper's Query Processor (§5.1) exposes three hard-coded queries:
//! subgraph extraction, dependency tests, and deletion propagation.
//! ProQL turns those primitives — plus zooming, semiring evaluation,
//! predicate-based node selection, bounded-depth traversals, and set
//! operations — into a small composable language, so new provenance
//! workloads don't require new engine code.
//!
//! ## Statement forms
//!
//! ```text
//! SUBGRAPH OF #42                          -- §5.1 subgraph query
//! WHY 'C2'                                 -- symbolic provenance expression
//! DEPENDS(#42, 'C2')                       -- §4.3 dependency test
//! DELETE 'C2' PROPAGATE                    -- §4.2 deletion propagation
//! ZOOM OUT TO Mdealer1, Magg               -- §4.1 ZoomOut
//! ZOOM IN                                  -- §4.1 ZoomIn (all zoomed modules)
//! EVAL #42 IN counting                     -- semiring evaluation
//! MATCH m-nodes WHERE module = 'Mdealer1'  -- node selection
//! MATCH base-nodes WHERE token LIKE 'C%'   -- %/_ patterns (also NOT LIKE)
//! MATCH o-nodes GROUP BY module ORDER BY count DESC LIMIT 3
//! COUNT(*) MATCH base-nodes                -- scalar aggregates
//! COUNT(DISTINCT module) MATCH nodes
//! MATCH nodes ORDER BY execution DESC LIMIT 5
//! ANCESTORS OF #42 DEPTH 3                 -- bounded-depth traversal
//! DESCENDANTS OF 'C2' WHERE kind = 'module_output'
//! MATCH base-nodes INTERSECT ANCESTORS OF #42
//! BUILD INDEX / DROP INDEX                 -- §5.1 reachability closure
//! EXPLAIN DEPENDS(#42, 'C2')              -- show the chosen physical plan
//! EXPLAIN ANALYZE MATCH base-nodes        -- run it, report per-operator actuals
//! STATS                                    -- graph statistics
//! ```
//!
//! ## Pipeline
//!
//! Text goes through [`lexer`] → [`parser`] (typed [`ast`]) →
//! [`planner`] (cost-aware physical [`plan`]) → [`exec`]. The planner
//! consults [`lipstick_core::graph::stats`] and the session's optional
//! [`lipstick_core::query::ReachIndex`] — a bidirectional closure, so
//! unbounded `ANCESTORS OF` and `DESCENDANTS OF` are symmetric index
//! lookups — to pick traversal strategies, fuses consecutive zoom
//! statements, and pushes `WHERE` predicates into traversals instead of
//! post-filtering. Mutating statements repair the closure in place
//! (deletion subtracts the dead cone; zooms remap the affected region)
//! rather than dropping it, and independent `UNION`/`INTERSECT`
//! branches fan out over a crossbeam worker pool on large graphs (see
//! [`Session::set_parallelism`]). [`session::Session`] owns the graph
//! (in-memory or loaded from a provenance log via `lipstick-storage`)
//! and drives the pipeline.
//!
//! ## Resident vs. paged sessions
//!
//! [`Session::load`] decodes the whole log up front. [`Session::open`]
//! instead keeps a v2 (footer-indexed) log **paged**: the
//! [`planner::PagedPlanner`] turns `MATCH` into footer-postings reads
//! and walks into faulting BFS over the footer adjacency, so cold-start
//! cost scales with what the query touches, not with graph size.
//! `EXPLAIN` on a paged session reports how many of the log's records a
//! plan will read. The first mutating statement (`DELETE`, `ZOOM`,
//! `BUILD INDEX`) promotes the session to resident transparently.
//!
//! ## Result shaping
//!
//! Node-set statements accept `LIKE`/`NOT LIKE` wildcard patterns
//! (`%`/`_`, on any string field including the new `token`),
//! `COUNT(*)` / `COUNT(DISTINCT f)` projections, `GROUP BY`, `ORDER
//! BY`, and `LIMIT`. Shaping runs in one
//! [`GraphStore`](lipstick_core::store::GraphStore)-generic module
//! shared by both executors, so resident and paged answers cannot
//! drift; `tests/differential.rs` locks the property down by running
//! generated statements (see [`testgen`]) against a resident session,
//! a paged session, and a `lipstick-serve` round trip, shrinking any
//! divergence to a minimal failing statement. On the paged side, a
//! token-demanding predicate narrows the scan to the token-bearing
//! kind postings, `module LIKE` unions matching modules' postings, and
//! a pushed-down `LIMIT` early-exits id-ordered scans.
//!
//! ## Observability
//!
//! `EXPLAIN ANALYZE <stmt>` executes a read-only statement under a span
//! tracer ([`lipstick_core::obs`]) and renders the chosen plan next to
//! per-operator **actuals** — rows produced, nodes visited, backend
//! records decoded (paged sessions), wall time — on both executors.
//! Every statement a [`Session`] runs also feeds the process-wide
//! metrics registry (`lipstick_proql_statements_total`,
//! `lipstick_proql_statement_us`, index build/repair series), which
//! `lipstick-serve` exposes at `GET /metrics`.
//!
//! ## Static analysis
//!
//! `CHECK <stmt>` and `EXPLAIN LINT <stmt>` run the [`analyze`] pass —
//! name resolution against the session schema with did-you-mean
//! suggestions, type and satisfiability checking of predicates, and
//! cost lints — **without executing** the statement. Diagnostics are
//! typed values ([`analyze::Diagnostic`]: code, severity, byte span
//! into the original source, message, optional suggestion) rendered
//! byte-identically by every backend and both serve protocols; the
//! lexer tracks byte spans ([`lexer::lex_spanned`]) so each diagnostic
//! can underline the exact offending token.

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod paged;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod result;
pub mod session;
mod shape;
pub mod testgen;

pub use analyze::{Diagnostic, Diagnostics, Severity};
pub use error::ProqlError;
pub use exec::Parallelism;
pub use result::{NodeSetResult, QueryOutput, TableResult};
pub use session::{render_memory_report, MemoryComponent, Session};
