//! Annotated tuples, relations, and the execution environment.

use std::collections::HashMap;
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::{Schema, Tuple};

use crate::error::Result;
use crate::plan::SchemaMap;

/// A tuple's annotation: its provenance reference plus value references
/// for fields whose values were computed by aggregates or black boxes
/// (`(field position, v-node)` pairs, sparse and usually empty).
#[derive(Debug, Clone)]
pub struct Ann<R: Copy> {
    pub prov: R,
    pub vrefs: Vec<(u16, R)>,
}

impl<R: Copy> Ann<R> {
    /// Annotation with no value refs.
    pub fn plain(prov: R) -> Self {
        Ann {
            prov,
            vrefs: Vec::new(),
        }
    }

    /// Value reference of a field, if any.
    pub fn vref(&self, field: usize) -> Option<R> {
        self.vrefs
            .iter()
            .find(|(i, _)| *i as usize == field)
            .map(|(_, r)| *r)
    }

    /// All value-reference nodes (used when wiring module outputs and
    /// black-box inputs).
    pub fn vref_nodes(&self) -> impl Iterator<Item = R> + '_ {
        self.vrefs.iter().map(|(_, r)| *r)
    }
}

/// An annotated tuple.
#[derive(Debug, Clone)]
pub struct ATuple<R: Copy> {
    pub tuple: Tuple,
    pub ann: Ann<R>,
    /// For bag-valued fields produced by GROUP/COGROUP: the member
    /// tuples' annotations, positionally aligned with the bag's internal
    /// order. Shared via `Arc` so projections stay O(1).
    pub members: Vec<(u16, Arc<Vec<Ann<R>>>)>,
}

impl<R: Copy> ATuple<R> {
    /// Annotated tuple with no value refs or members.
    pub fn plain(tuple: Tuple, prov: R) -> Self {
        ATuple {
            tuple,
            ann: Ann::plain(prov),
            members: Vec::new(),
        }
    }

    /// Member annotations of a bag field, if recorded.
    pub fn member_anns(&self, field: usize) -> Option<&Arc<Vec<Ann<R>>>> {
        self.members
            .iter()
            .find(|(i, _)| *i as usize == field)
            .map(|(_, m)| m)
    }
}

/// An annotated relation: schema plus annotated rows.
#[derive(Debug, Clone)]
pub struct ARelation<R: Copy> {
    pub schema: Arc<Schema>,
    pub rows: Vec<ATuple<R>>,
}

impl<R: Copy> ARelation<R> {
    /// Empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        ARelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The bare tuples, in row order.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.rows.iter().map(|r| r.tuple.clone()).collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The execution environment: alias → annotated relation.
///
/// The workflow layer pre-binds module inputs and state relations here;
/// `execute` binds every statement's result.
#[derive(Debug, Clone, Default)]
pub struct Env<R: Copy> {
    rels: HashMap<String, ARelation<R>>,
}

impl<R: Copy> Env<R> {
    /// Empty environment.
    pub fn new() -> Self {
        Env {
            rels: HashMap::new(),
        }
    }

    /// Bind (or replace) a relation.
    pub fn bind(&mut self, alias: String, rel: ARelation<R>) {
        self.rels.insert(alias, rel);
    }

    /// Bind raw tuples, minting a base provenance token
    /// `"<name>.<row>"` per tuple. Tuples are validated against the
    /// schema.
    pub fn bind_with_tokens<T: Tracker<Ref = R>>(
        &mut self,
        name: &str,
        schema: Schema,
        tuples: Vec<Tuple>,
        tracker: &mut T,
    ) -> Result<()> {
        self.bind_with_token_fn(name, schema, tuples, tracker, |name, idx, _| {
            format!("{name}.{idx}")
        })
    }

    /// Bind raw tuples with a custom token-naming function (the paper
    /// uses domain tokens like `C2` for cars).
    pub fn bind_with_token_fn<T: Tracker<Ref = R>>(
        &mut self,
        name: &str,
        schema: Schema,
        tuples: Vec<Tuple>,
        tracker: &mut T,
        token_of: impl Fn(&str, usize, &Tuple) -> String,
    ) -> Result<()> {
        let schema = Arc::new(schema);
        let mut rows = Vec::with_capacity(tuples.len());
        for (idx, t) in tuples.into_iter().enumerate() {
            schema
                .admits_tuple(&t)
                .map_err(crate::error::PigError::from)?;
            let prov = if T::TRACKING {
                tracker.base(&token_of(name, idx, &t))
            } else {
                tracker.base("")
            };
            rows.push(ATuple::plain(t, prov));
        }
        self.bind(name.to_string(), ARelation { schema, rows });
        Ok(())
    }

    /// Look up a relation.
    pub fn relation(&self, alias: &str) -> Option<&ARelation<R>> {
        self.rels.get(alias)
    }

    /// Remove and return a relation.
    pub fn take(&mut self, alias: &str) -> Option<ARelation<R>> {
        self.rels.remove(alias)
    }

    /// Schemas of all bound relations (input to the planner).
    pub fn schemas(&self) -> SchemaMap {
        self.rels
            .iter()
            .map(|(k, v)| (k.clone(), v.schema.clone()))
            .collect()
    }

    /// Bound aliases, sorted.
    pub fn aliases(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.rels.keys().map(String::as_str).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_core::graph::{GraphTracker, NoTracker};
    use lipstick_core::NodeKind;
    use lipstick_nrel::{tuple, DataType};

    #[test]
    fn bind_with_tokens_creates_base_nodes() {
        let mut env: Env<lipstick_core::NodeId> = Env::new();
        let mut tracker = GraphTracker::new();
        env.bind_with_tokens(
            "Cars",
            Schema::named(&[("CarId", DataType::Str)]),
            vec![tuple!["C1"], tuple!["C2"]],
            &mut tracker,
        )
        .unwrap();
        let g = tracker.finish();
        let tokens: Vec<String> = g
            .iter()
            .filter_map(|(_, n)| match &n.kind {
                NodeKind::BaseTuple { token } => Some(token.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(tokens, vec!["Cars.0", "Cars.1"]);
    }

    #[test]
    fn bind_validates_schema() {
        let mut env: Env<()> = Env::new();
        let mut tracker = NoTracker;
        let res = env.bind_with_tokens(
            "Cars",
            Schema::named(&[("CarId", DataType::Int)]),
            vec![tuple!["not an int"]],
            &mut tracker,
        );
        assert!(res.is_err());
    }

    #[test]
    fn ann_vref_lookup() {
        let ann = Ann {
            prov: 1u32,
            vrefs: vec![(2, 42u32)],
        };
        assert_eq!(ann.vref(2), Some(42));
        assert_eq!(ann.vref(0), None);
        assert_eq!(ann.vref_nodes().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn env_schemas_and_aliases() {
        let mut env: Env<()> = Env::new();
        let mut tracker = NoTracker;
        env.bind_with_tokens(
            "B",
            Schema::named(&[("x", DataType::Int)]),
            vec![],
            &mut tracker,
        )
        .unwrap();
        env.bind_with_tokens(
            "A",
            Schema::named(&[("y", DataType::Int)]),
            vec![],
            &mut tracker,
        )
        .unwrap();
        assert_eq!(env.aliases(), vec!["A", "B"]);
        assert_eq!(env.schemas().len(), 2);
        assert!(env.take("A").is_some());
        assert!(env.relation("A").is_none());
    }
}
