//! Workload replay: re-run a captured structured query log (see
//! `lipstick_serve::qlog`) against any backend and check the results.
//!
//! Each captured event carries the statement as the client sent it and
//! an FNV-1a fingerprint of the rendered text payload. Replaying the
//! events *in capture order* re-executes the whole history — mutations
//! included — so a backend opened on the same starting log must
//! reproduce every payload byte-for-byte, except where the output is
//! measurement rather than data:
//!
//! - `STATS` reports live counters, timings, and memory — never stable;
//! - `EXPLAIN ANALYZE` embeds per-operator wall-clock actuals.
//!
//! Those events still replay (they advance caches and epochs exactly
//! like the originals) but are *skipped* in the byte-identity tally.

use std::time::Instant;

use lipstick_core::obs::{Histogram, LATENCY_BUCKETS_US};
use lipstick_proql::parser::parse_statement;
use lipstick_proql::Session;
use lipstick_serve::client::RetryPolicy;
use lipstick_serve::qlog::QueryEvent;
use lipstick_serve::{Client, Reply};

/// What one replayed statement produced: the text payload a
/// line-protocol client would see, and how it got there.
pub struct ReplayOutcome {
    pub payload: String,
    pub ok: bool,
    /// Only meaningful against a server target; local sessions have no
    /// result cache.
    pub cache_hit: bool,
    /// Resends this statement needed before it was answered (`BUSY`
    /// sheds and transient transport failures; 0 for local targets).
    pub retries: u64,
}

/// Anything a captured workload can be replayed against.
pub trait ReplayTarget {
    fn run(&mut self, input: &str) -> std::io::Result<ReplayOutcome>;
}

/// A remote `lipstick-serve` instance, driven over the line protocol —
/// the same path the capture was taken on. Sheds (`BUSY`) and
/// transient disconnects are retried with jittered backoff so an
/// overloaded server degrades a replay's latency report, not its
/// byte-identity verdict.
impl ReplayTarget for Client {
    fn run(&mut self, input: &str) -> std::io::Result<ReplayOutcome> {
        let before = self.retries();
        let reply = self.query_with_retry(input, &RetryPolicy::default())?;
        let retries = self.retries() - before;
        Ok(match reply {
            Reply::Ok {
                cache_hit, body, ..
            } => ReplayOutcome {
                payload: body,
                ok: true,
                cache_hit,
                retries,
            },
            Reply::Err(message) => ReplayOutcome {
                payload: message,
                ok: false,
                cache_hit: false,
                retries,
            },
            // Still shedding after every attempt: report it as the
            // payload (it will mismatch the capture, correctly — the
            // statement never executed).
            Reply::Busy { retry_after_ms } => ReplayOutcome {
                payload: format!("busy: write queue full; retry_after_ms={retry_after_ms}"),
                ok: false,
                cache_hit: false,
                retries,
            },
        })
    }
}

/// An in-process session (resident or paged), mirroring the server's
/// execution path: parse, then run — parse errors become the payload
/// exactly as the server would report them.
pub struct LocalTarget(pub Session);

impl ReplayTarget for LocalTarget {
    fn run(&mut self, input: &str) -> std::io::Result<ReplayOutcome> {
        Ok(match parse_statement(input) {
            Err(e) => ReplayOutcome {
                payload: e.to_string(),
                ok: false,
                cache_hit: false,
                retries: 0,
            },
            Ok(stmt) => match self.0.run_stmt(&stmt) {
                Ok(out) => ReplayOutcome {
                    payload: out.to_string(),
                    ok: true,
                    cache_hit: false,
                    retries: 0,
                },
                Err(e) => ReplayOutcome {
                    payload: e.to_string(),
                    ok: false,
                    cache_hit: false,
                    retries: 0,
                },
            },
        })
    }
}

/// Byte-identity is only asserted where the payload is data, not
/// measurement.
pub fn comparable(event: &QueryEvent) -> bool {
    !(event.key.starts_with("STATS") || event.key.starts_with("EXPLAIN ANALYZE"))
}

/// One mismatch, kept for the report (the payload itself may be large;
/// only the fingerprints and the statement are retained).
pub struct Mismatch {
    pub seq: u64,
    pub stmt: String,
    pub expected_fnv: u64,
    pub got_fnv: u64,
}

/// The replay verdict: counts, cache behaviour, and the latency shape.
pub struct ReplayReport {
    /// Events in the captured log.
    pub events: usize,
    /// Events actually re-executed.
    pub replayed: usize,
    /// Comparable events whose payload fingerprint matched the capture.
    pub matched: usize,
    pub mismatched: Vec<Mismatch>,
    /// Events replayed but excluded from the identity tally.
    pub skipped: usize,
    /// Cache hits recorded at capture time.
    pub captured_cache_hits: usize,
    /// Cache hits observed during this replay (0 for local targets).
    pub replay_cache_hits: usize,
    /// Total resends across the replay — `BUSY` sheds plus transient
    /// reconnects (0 for local targets).
    pub retries: u64,
    /// Per-bucket `(upper_bound_us, count)` replay latencies; the last
    /// bound is `u64::MAX` (+Inf).
    pub latency: Vec<(u64, u64)>,
    pub total_us: u64,
}

impl ReplayReport {
    pub fn identical(&self) -> bool {
        self.mismatched.is_empty()
    }

    /// Human-readable summary: tallies, hit rates, and the non-empty
    /// histogram buckets.
    pub fn render(&self) -> String {
        let mut out = format!(
            "replayed {}/{} event(s) in {:.1} ms: {} matched, {} mismatched, {} skipped \
             (measurement outputs)\n",
            self.replayed,
            self.events,
            self.total_us as f64 / 1e3,
            self.matched,
            self.mismatched.len(),
            self.skipped,
        );
        out.push_str(&format!(
            "cache hit rate: captured {}/{}, replay {}/{}\n",
            self.captured_cache_hits, self.events, self.replay_cache_hits, self.replayed,
        ));
        if self.retries > 0 {
            out.push_str(&format!(
                "retries: {} (BUSY sheds and transient reconnects)\n",
                self.retries
            ));
        }
        out.push_str("replay latency (µs):\n");
        for &(bound, count) in &self.latency {
            if count == 0 {
                continue;
            }
            if bound == u64::MAX {
                out.push_str(&format!("  le=+Inf    {count}\n"));
            } else {
                out.push_str(&format!("  le={bound:<8} {count}\n"));
            }
        }
        for m in self.mismatched.iter().take(5) {
            out.push_str(&format!(
                "MISMATCH seq={} stmt={:?}: captured fnv {} != replayed {}\n",
                m.seq, m.stmt, m.expected_fnv, m.got_fnv
            ));
        }
        out
    }

    pub fn to_json(&self) -> String {
        let latency: Vec<String> = self
            .latency
            .iter()
            .map(|&(bound, count)| {
                if bound == u64::MAX {
                    format!("{{ \"le\": \"+Inf\", \"count\": {count} }}")
                } else {
                    format!("{{ \"le\": {bound}, \"count\": {count} }}")
                }
            })
            .collect();
        format!(
            "{{\n  \"events\": {},\n  \"replayed\": {},\n  \"matched\": {},\n  \
             \"mismatched\": {},\n  \"skipped\": {},\n  \"captured_cache_hits\": {},\n  \
             \"replay_cache_hits\": {},\n  \"retries\": {},\n  \"total_us\": {},\n  \
             \"latency\": [{}]\n}}\n",
            self.events,
            self.replayed,
            self.matched,
            self.mismatched.len(),
            self.skipped,
            self.captured_cache_hits,
            self.replay_cache_hits,
            self.retries,
            self.total_us,
            latency.join(", "),
        )
    }
}

/// Re-execute `events` in capture order against `target`, fingerprint
/// every payload, and tally byte-identity for the comparable ones.
pub fn replay(
    events: &[QueryEvent],
    target: &mut dyn ReplayTarget,
) -> std::io::Result<ReplayReport> {
    let histogram = Histogram::new(LATENCY_BUCKETS_US);
    let started = Instant::now();
    let mut report = ReplayReport {
        events: events.len(),
        replayed: 0,
        matched: 0,
        mismatched: Vec::new(),
        skipped: 0,
        captured_cache_hits: events.iter().filter(|e| e.cache_hit).count(),
        replay_cache_hits: 0,
        retries: 0,
        latency: Vec::new(),
        total_us: 0,
    };
    for event in events {
        let start = Instant::now();
        let outcome = target.run(&event.stmt)?;
        histogram.observe(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        report.replayed += 1;
        if outcome.cache_hit {
            report.replay_cache_hits += 1;
        }
        report.retries += outcome.retries;
        if !comparable(event) {
            report.skipped += 1;
            continue;
        }
        let got = QueryEvent::fingerprint(&outcome.payload);
        if got == event.result_fnv {
            report.matched += 1;
        } else {
            report.mismatched.push(Mismatch {
                seq: event.seq,
                stmt: event.stmt.clone(),
                expected_fnv: event.result_fnv,
                got_fnv: got,
            });
        }
    }
    report.latency = histogram.snapshot();
    report.total_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_workflowgen::DealersParams;

    /// A mixed workload: cacheable reads, an aggregate, a parse error,
    /// a mutation (epoch bump), post-mutation reads, and the two
    /// measurement outputs the identity tally must skip.
    const WORKLOAD: &[&str] = &[
        "MATCH base-nodes",
        "COUNT(*) MATCH base-nodes",
        "ANCESTORS OF #5 DEPTH 3",
        "TOTALLY NOT PROQL",
        "STATS",
        "DELETE 'C2' PROPAGATE",
        "MATCH base-nodes",
        "EXPLAIN MATCH base-nodes UNION MATCH m-nodes",
    ];

    fn fresh_target() -> LocalTarget {
        let graph = crate::run_dealers(
            &DealersParams {
                num_cars: 8,
                num_exec: 2,
                seed: 11,
            },
            true,
        )
        .graph
        .expect("provenance graph");
        LocalTarget(Session::new(graph))
    }

    /// Capture the workload against one fresh backend, fingerprinting
    /// each payload the way the server's query log does.
    fn capture() -> Vec<QueryEvent> {
        let mut target = fresh_target();
        WORKLOAD
            .iter()
            .enumerate()
            .map(|(i, stmt)| {
                let out = target.run(stmt).expect("local run");
                QueryEvent {
                    seq: i as u64,
                    ts_us: 0,
                    client: 0,
                    stmt: stmt.to_string(),
                    key: stmt.to_string(),
                    outcome: if out.ok { "ok" } else { "err" }.to_string(),
                    cache_hit: false,
                    time_us: 0,
                    reads: 0,
                    epoch: 0,
                    result_fnv: QueryEvent::fingerprint(&out.payload),
                }
            })
            .collect()
    }

    #[test]
    fn local_replay_reproduces_every_payload_byte_for_byte() {
        let events = capture();
        let report = replay(&events, &mut fresh_target()).expect("replay");
        assert!(report.identical(), "{}", report.render());
        assert_eq!(report.replayed, WORKLOAD.len());
        assert_eq!(report.skipped, 1, "STATS is measurement output");
        assert_eq!(report.matched, WORKLOAD.len() - 1);
        // Determinism: a second replay on another fresh backend must
        // agree event for event, mutations and parse errors included.
        let again = replay(&events, &mut fresh_target()).expect("replay");
        assert!(again.identical(), "{}", again.render());
        assert_eq!(again.matched, report.matched);
    }

    #[test]
    fn replay_flags_divergent_payloads() {
        let mut events = capture();
        events[0].result_fnv ^= 1; // corrupt one comparable fingerprint
        let report = replay(&events, &mut fresh_target()).expect("replay");
        assert!(!report.identical());
        assert_eq!(report.mismatched.len(), 1);
        assert_eq!(report.mismatched[0].seq, 0);
        assert!(report.render().contains("MISMATCH seq=0"));
    }
}
