//! Minimal in-tree subset of `proptest`: the `proptest!` macro,
//! strategies with `prop_map`/`prop_recursive`, `prop_oneof!`, `any`,
//! `Just`, ranges, tuples, string patterns, and
//! `prop::collection::vec`.
//!
//! Generation is deterministic: each test derives its RNG seed from
//! the test name, so failures reproduce exactly. There is no
//! shrinking — a failing case is reported at the size it was drawn.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator driving all strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test's name, so every run draws the same cases.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform draw from a half-open usize range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: up to `depth` levels of `f`-expansion over
    /// the base (leaf) strategy. `_desired_size` and `_expected_branch`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = f(cur).boxed();
            let leaf = leaf.clone();
            cur = ArcStrategy::new(move |rng| {
                if rng.next_bool() {
                    leaf.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            });
        }
        cur
    }

    fn boxed(self) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        ArcStrategy::new(move |rng| self.generate(rng))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct ArcStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> ArcStrategy<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> ArcStrategy<T> {
        ArcStrategy { f: Rc::new(f) }
    }
}

impl<T> Clone for ArcStrategy<T> {
    fn clone(&self) -> Self {
        ArcStrategy { f: self.f.clone() }
    }
}

impl<T> Strategy for ArcStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub fn one_of<T: 'static>(arms: Vec<ArcStrategy<T>>) -> ArcStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    ArcStrategy::new(move |rng| {
        let i = rng.usize_in(0..arms.len());
        arms[i].generate(rng)
    })
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategies producible without parameters (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    /// Arbitrary bit patterns — includes infinities and NaNs, which is
    /// what codec round-trip tests want to see.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// String-pattern strategies: a small regex-like subset covering
/// literals, one-level character classes (`[a-z0-9]`), and the
/// quantifiers `{m,n}`, `{n}`, `?`, `*`, `+` (the latter two capped at
/// 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or(chars.len() - 1);
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or(chars.len() - 1);
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(8),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let reps = rng.usize_in(min..max + 1);
        for _ in 0..reps {
            if alphabet.is_empty() {
                continue;
            }
            out.push(alphabet[rng.usize_in(0..alphabet.len())]);
        }
    }
    out
}

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A vec of `len` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start < self.len.end {
                    rng.usize_in(self.len.clone())
                } else {
                    self.len.start
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Like the real proptest, the `PROPTEST_CASES` environment
    /// variable overrides the default case count — CI uses it to pin
    /// deterministic budgets per step.
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(48);
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    // `arg in strategy` form. The attribute repetition absorbs the
    // `#[test]` marker along with doc comments, so it is re-emitted
    // rather than duplicated.
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    // `arg: Type` form (shorthand for `any::<Type>()`)
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, one_of, Arbitrary, ArcStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_respects_class_and_bounds() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = "[a-z]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let s = Just(0u8)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(4, 32, 4, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic("rec");
        for _ in 0..50 {
            let t = s.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf => 0,
                    Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_strategy_form(a in 0u64..10, b in 0u64..10) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn macro_typed_form(v: u64) {
            prop_assert_eq!(v, v);
        }
    }
}
