//! Paged (lazy) sessions over v2 provenance logs: `Session::open` must
//! agree answer-for-answer with a full `Session::load`, while reading
//! strictly fewer records than the log holds, and must promote itself
//! to a resident graph on the first mutating statement.

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::{QueryOutput, Session};
use lipstick_storage::{write_graph, write_graph_v2};
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph() -> ProvGraph {
    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 7,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lipstick-proql-lazy");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Write the dealers graph as a v2 log and open it both ways.
fn open_both(name: &str) -> (Session, Session, ProvGraph) {
    let g = dealers_graph();
    let path = temp_path(name);
    write_graph_v2(&g, &path).unwrap();
    let lazy = Session::open(&path).unwrap();
    let full = Session::load(&path).unwrap();
    (lazy, full, g)
}

fn nodes_of(out: &QueryOutput) -> Vec<u32> {
    out.nodes()
        .expect("node set")
        .nodes
        .iter()
        .map(|n| n.0)
        .collect()
}

#[test]
fn open_is_paged_and_load_is_resident() {
    let (lazy, full, _) = open_both("flavours.lpstk");
    assert!(lazy.is_paged());
    assert!(!full.is_paged());
    assert_eq!(lazy.records_read(), 0, "opening decodes no records");
}

#[test]
fn module_filtered_match_agrees_and_reads_fewer_records() {
    let (mut lazy, mut full, g) = open_both("match.lpstk");
    let module = g.invocations()[0].module.clone();
    let stmt = format!("MATCH nodes WHERE module = '{module}'");
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    assert_eq!(nodes_of(&a), nodes_of(&b));
    assert!(!nodes_of(&a).is_empty());
    assert!(
        lazy.records_read() < g.len(),
        "read {} of {} records",
        lazy.records_read(),
        g.len()
    );
}

#[test]
fn explain_reports_records_read_below_total() {
    let (lazy, _, g) = open_both("explain.lpstk");
    let module = g.invocations()[0].module.clone();
    let plan = lazy
        .explain(&format!("MATCH nodes WHERE module = '{module}'"))
        .unwrap();
    // e.g. "[paged postings scan on module 'Mdealer1', reads 37 of 412 records]"
    let (reads, total) = parse_records_read(&plan).expect("explain names records read");
    assert_eq!(total, g.len());
    assert!(reads > 0);
    assert!(
        reads < total,
        "indexed scan must read strictly fewer than all records: {plan}"
    );
}

/// Pull "reads X of Y records" out of an EXPLAIN line.
fn parse_records_read(plan: &str) -> Option<(usize, usize)> {
    let at = plan.find("reads ")? + "reads ".len();
    let rest = &plan[at..];
    let mut parts = rest.split_whitespace();
    let reads = parts.next()?.parse().ok()?;
    assert_eq!(parts.next(), Some("of"));
    let total = parts.next()?.parse().ok()?;
    Some((reads, total))
}

#[test]
fn kind_class_match_uses_postings() {
    let (mut lazy, mut full, g) = open_both("kinds.lpstk");
    for stmt in [
        "MATCH m-nodes",
        "MATCH base-nodes",
        "MATCH o-nodes",
        "MATCH nodes WHERE kind = 'delta'",
    ] {
        let a = lazy.run_one(stmt).unwrap();
        let b = full.run_one(stmt).unwrap();
        assert_eq!(nodes_of(&a), nodes_of(&b), "{stmt}");
    }
    assert!(lazy.records_read() < g.len());
}

#[test]
fn ordered_predicates_agree_and_push_down() {
    let (mut lazy, mut full, g) = open_both("ordered.lpstk");
    let module = g.invocations()[0].module.clone();
    for stmt in [
        "MATCH nodes WHERE execution < 1".to_string(),
        "MATCH nodes WHERE execution >= 1".to_string(),
        "MATCH m-nodes WHERE execution > 0".to_string(),
        "MATCH i-nodes WHERE execution <= 0".to_string(),
        format!("MATCH nodes WHERE module = '{module}' AND execution < 2"),
        "MATCH nodes WHERE kind != 'delta' AND execution >= 0".to_string(),
    ] {
        let a = lazy.run_one(&stmt).unwrap();
        let b = full.run_one(&stmt).unwrap();
        assert_eq!(nodes_of(&a), nodes_of(&b), "{stmt}");
    }
    // The ranged conjunct rides inside the postings scan: a fresh
    // session answering a module-filtered MATCH with an execution range
    // reads only the module's postings records, not the whole log.
    let (mut fresh, _, _) = open_both("ordered.lpstk");
    fresh
        .run_one(&format!(
            "MATCH nodes WHERE module = '{module}' AND execution < 2"
        ))
        .unwrap();
    assert!(fresh.records_read() > 0);
    assert!(fresh.records_read() < g.len());
    // Sanity: ordered predicates actually partition the m-nodes.
    let lt = nodes_of(&full.run_one("MATCH m-nodes WHERE execution < 1").unwrap());
    let ge = nodes_of(&full.run_one("MATCH m-nodes WHERE execution >= 1").unwrap());
    let all = nodes_of(&full.run_one("MATCH m-nodes").unwrap());
    assert_eq!(lt.len() + ge.len(), all.len());
    assert!(!lt.is_empty() && !ge.is_empty());
}

#[test]
fn why_walks_depends_and_eval_agree_with_full_load() {
    let (mut lazy, mut full, g) = open_both("agree.lpstk");
    let roots = g.top_fanout_nodes(3);
    let mut stmts = vec![format!("SUBGRAPH OF #{}", roots[0].0)];
    for r in &roots {
        stmts.push(format!("WHY #{}", r.0));
        stmts.push(format!("EVAL #{} IN counting", r.0));
        stmts.push(format!("DESCENDANTS OF #{} DEPTH 2", r.0));
        stmts.push(format!("ANCESTORS OF #{}", r.0));
        stmts.push(format!("DEPENDS(#{}, #{})", roots[1].0, r.0));
    }
    stmts.push(format!(
        "MATCH base-nodes INTERSECT ANCESTORS OF #{}",
        roots[0].0
    ));
    for stmt in &stmts {
        let a = lazy.run_one(stmt).unwrap();
        let b = full.run_one(stmt).unwrap();
        match (&a, &b) {
            (QueryOutput::Nodes(x), QueryOutput::Nodes(y)) => {
                assert_eq!(x.nodes, y.nodes, "{stmt}")
            }
            (QueryOutput::Text(x), QueryOutput::Text(y)) => assert_eq!(x, y, "{stmt}"),
            (QueryOutput::Bool(x), QueryOutput::Bool(y)) => assert_eq!(x, y, "{stmt}"),
            other => panic!("mismatched output shapes for {stmt}: {other:?}"),
        }
        assert!(
            lazy.is_paged(),
            "read-only statements keep the session paged"
        );
    }
}

#[test]
fn token_references_resolve_lazily() {
    let (mut lazy, mut full, _) = open_both("tokens.lpstk");
    // Find a token via the full session, then resolve it lazily.
    let out = full.run_one("MATCH base-nodes").unwrap();
    assert!(!nodes_of(&out).is_empty());
    let g = full.graph();
    let token = g
        .iter_visible()
        .find_map(|(_, n)| match &n.kind {
            lipstick_core::NodeKind::BaseTuple { token } => Some(token.as_str().to_string()),
            _ => None,
        })
        .unwrap();
    let a = lazy.run_one(&format!("WHY '{token}'")).unwrap();
    let b = full.run_one(&format!("WHY '{token}'")).unwrap();
    assert_eq!(a.text(), b.text());
}

#[test]
fn mutating_statements_promote_then_work() {
    let (mut lazy, mut full, g) = open_both("promote.lpstk");
    let module = g.invocations()[0].module.clone();
    assert!(lazy.is_paged());
    let stmt = format!("ZOOM OUT TO {module}");
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    assert_eq!(a.text(), b.text());
    assert!(!lazy.is_paged(), "mutation promoted the session");
    // And the promoted session keeps answering queries correctly.
    let a = lazy.run_one("MATCH nodes").unwrap();
    let b = full.run_one("MATCH nodes").unwrap();
    assert_eq!(nodes_of(&a), nodes_of(&b));
}

#[test]
fn delete_propagate_promotes_and_matches_resident_semantics() {
    let (mut lazy, mut full, g) = open_both("delete.lpstk");
    let root = g.top_fanout_nodes(1)[0];
    let stmt = format!("DELETE #{} PROPAGATE", root.0);
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    match (a, b) {
        (QueryOutput::Deleted { nodes: x }, QueryOutput::Deleted { nodes: y }) => {
            assert_eq!(x, y)
        }
        other => panic!("expected deletions, got {other:?}"),
    }
    assert!(!lazy.is_paged());
}

#[test]
fn build_index_promotes_and_serves_reach_lookups() {
    let (mut lazy, _, g) = open_both("index.lpstk");
    lazy.run_one("BUILD INDEX").unwrap();
    assert!(!lazy.is_paged());
    assert!(lazy.has_reach_index());
    let root = g.top_fanout_nodes(1)[0];
    let out = lazy
        .run_one(&format!("DESCENDANTS OF #{}", root.0))
        .unwrap();
    assert!(!nodes_of(&out).is_empty());
}

#[test]
fn run_read_is_concurrent_and_rejects_mutations() {
    let (lazy, full, g) = open_both("runread.lpstk");
    let root = g.top_fanout_nodes(1)[0];
    let stmts = [
        "MATCH base-nodes".to_string(),
        format!("DESCENDANTS OF #{} DEPTH 2", root.0),
        format!("WHY #{}", root.0),
        "STATS".to_string(),
        "EXPLAIN MATCH m-nodes".to_string(),
    ];
    // Shared references from many threads at once, against both
    // backends: Session is Send + Sync and run_read takes &self.
    std::thread::scope(|s| {
        for session in [&lazy, &full] {
            for stmt in &stmts {
                s.spawn(move || session.run_read(stmt).unwrap());
            }
        }
    });
    assert!(lazy.is_paged(), "run_read never promotes");
    for session in [&lazy, &full] {
        for stmt in [
            "DELETE #0 PROPAGATE",
            "ZOOM OUT TO M",
            "BUILD INDEX",
            "DROP INDEX",
        ] {
            let err = session.run_read(stmt).unwrap_err();
            assert!(
                matches!(err, lipstick_proql::ProqlError::ReadOnly(_)),
                "{stmt}: {err}"
            );
        }
        // EXPLAIN of a mutating statement only plans — still read-only.
        session.run_read("EXPLAIN DELETE #0 PROPAGATE").unwrap();
    }
}

#[test]
fn v1_logs_fall_back_to_a_full_load() {
    let g = dealers_graph();
    let path = temp_path("v1.lpstk");
    write_graph(&g, &path).unwrap();
    let mut s = Session::open(&path).unwrap();
    assert!(!s.is_paged(), "v1 has no footer; open falls back to load");
    let out = s.run_one("MATCH base-nodes").unwrap();
    assert!(!nodes_of(&out).is_empty());
}

#[test]
fn paged_stats_report_log_shape() {
    let (mut lazy, _, g) = open_both("stats.lpstk");
    let out = lazy.run_one("STATS").unwrap();
    let text = out.text().unwrap().to_string();
    assert!(text.contains("paged log"), "got: {text}");
    assert!(
        text.contains(&format!("{} record(s)", g.len())),
        "got: {text}"
    );
}

#[test]
fn corrupt_record_bytes_error_at_query_time_without_aborting() {
    // The footer validates offsets, not record contents: garbled record
    // bytes are only noticed when a query faults the record in. That
    // must surface as an error, not a process abort.
    let g = dealers_graph();
    let path = temp_path("corrupt-record.lpstk");
    write_graph_v2(&g, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Locate a record via the index of a clean open, then trash it.
    let probe = lipstick_storage::PagedLog::from_bytes(bytes.clone()).unwrap();
    let range = probe.index().record_range(lipstick_core::NodeId(3));
    for b in &mut bytes[range] {
        *b = 0xff; // role tag 255 is invalid
    }
    std::fs::write(&path, &bytes).unwrap();

    // The footer still parses, so the open itself succeeds.
    let mut s = Session::open(&path).unwrap();
    // `MATCH nodes` alone never faults a record (visibility is
    // index-level) — and must therefore still succeed.
    assert!(s.run_one("MATCH nodes").is_ok());
    // `p-nodes` has no postings list, so the scan decodes every record
    // and trips over the garbled one.
    let err = s.run_one("MATCH p-nodes").unwrap_err();
    assert!(
        err.to_string().contains("corrupt"),
        "expected a corruption error, got: {err}"
    );
}

#[test]
fn corrupt_v2_footer_is_an_open_error() {
    let g = dealers_graph();
    let path = temp_path("corrupt.lpstk");
    write_graph_v2(&g, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let len = bytes.len();
    bytes[len - 2] ^= 0xff; // inside the trailer magic
    std::fs::write(&path, &bytes).unwrap();
    assert!(Session::open(&path).is_err());
}
