//! Validate Prometheus text exposition — a file, stdin, or a live
//! `lipstick-serve` `/metrics` endpoint.
//!
//! CI's smoke step scrapes the self-test server through this binary so
//! a malformed exposition (bad name, sample before its TYPE line,
//! non-numeric value, broken histogram family) fails the build rather
//! than a dashboard three tools downstream.
//!
//! Usage:
//!   promcheck FILE [--require NAME]...          validate a saved exposition
//!   promcheck - [--require NAME]...             validate stdin
//!   promcheck --addr H:P [--require NAME]...    scrape http://H:P/metrics and validate
//!
//! Each `--require NAME` additionally asserts that a scalar sample with
//! that exact series name is present — how CI pins the heap-byte gauges
//! to the exposition.

use std::io::Read;

use lipstick_core::obs::{parse_plain_samples, validate_prometheus_text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut required: Vec<String> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--require" {
            let name = args
                .get(i + 1)
                .unwrap_or_else(|| usage("--require needs a series name"));
            required.push(name.clone());
            i += 2;
        } else {
            inputs.push(args[i].clone());
            i += 1;
        }
    }

    let text = match inputs.first().map(String::as_str) {
        Some("--addr") => {
            let addr = inputs
                .get(1)
                .unwrap_or_else(|| usage("--addr needs HOST:PORT"));
            let (status, body) = lipstick_serve::client::http_get(addr.as_str(), "/metrics")
                .unwrap_or_else(|e| fail(&format!("scrape {addr}: {e}")));
            if status != "HTTP/1.1 200 OK" {
                fail(&format!("scrape {addr}: {status}"));
            }
            body
        }
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("stdin: {e}")));
            buf
        }
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")))
        }
        None => usage("missing input"),
    };

    match validate_prometheus_text(&text) {
        Ok(()) => {
            let samples = parse_plain_samples(&text);
            for name in &required {
                if !samples.iter().any(|(n, _)| n == name) {
                    fail(&format!("required series missing: {name}"));
                }
            }
            println!(
                "ok: {} line(s), {} scalar sample(s), {} required series present",
                text.lines().count(),
                samples.len(),
                required.len()
            );
        }
        Err(e) => fail(&format!("invalid exposition: {e}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "promcheck: {msg}\nusage: promcheck FILE | promcheck - | promcheck --addr HOST:PORT \
         [--require NAME]..."
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("promcheck: {msg}");
    std::process::exit(1);
}
