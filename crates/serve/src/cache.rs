//! The plan-keyed result cache.
//!
//! Keys are the canonical [`Display`](lipstick_proql::ast::Statement)
//! rendering of the *parsed* statement, so two spellings of the same
//! query — different whitespace, keyword case, a trailing `;`, an
//! omitted optional keyword (`ANCESTORS #1` vs `ANCESTORS OF #1`) —
//! share one entry. Every entry is tagged with the
//! server's write epoch at execution time; a lookup only hits when the
//! tags match, so a mutation (which bumps the epoch) invalidates the
//! whole cache at once without touching it — the same
//! invalidate-on-write discipline the session already applies to its
//! reachability index. Stale entries are dropped lazily on lookup and
//! by LRU eviction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lipstick_core::obs;

/// A cached, fully rendered query result: both wire representations,
/// produced once at insert so repeated hits skip planning, execution,
/// *and* rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Line-protocol payload ([`std::fmt::Display`] of the output).
    pub text: String,
    /// HTTP-shim payload (`QueryOutput::to_json`).
    pub json: String,
}

struct Entry {
    epoch: u64,
    result: CachedResult,
    last_used: u64,
}

struct Lru {
    map: HashMap<String, Entry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
}

/// A bounded, epoch-aware LRU from normalized statements to rendered
/// results. Eviction scans for the least-recently-used entry — O(n) at
/// the default capacity of a few hundred entries, which is far below
/// the cost of the query execution a hit saves.
///
/// Capacity 0 disables the cache entirely (every lookup misses, every
/// insert is dropped) — the `proql_server` bench's uncached baseline.
pub struct QueryCache {
    inner: Mutex<Lru>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Payload bytes (keys + rendered results + entry headers)
    /// currently resident in this cache instance.
    bytes: AtomicU64,
    /// Entries dropped by this instance: LRU evictions plus lazy
    /// stale-entry removals.
    evictions: AtomicU64,
    /// Process-wide series mirroring the two atomics above, maintained
    /// by delta so the gauge is a true sum across every live cache in
    /// the process ([`Drop`] gives the bytes back).
    bytes_gauge: Arc<obs::Gauge>,
    evictions_total: Arc<obs::Counter>,
}

/// Bytes a cached entry pins: the key, both rendered payloads, and the
/// fixed entry/key headers. String capacity slack is not visible here,
/// so this is a lower bound — close in practice because the strings
/// come fresh from rendering.
fn entry_bytes(key: &str, result: &CachedResult) -> usize {
    key.len()
        + result.text.len()
        + result.json.len()
        + std::mem::size_of::<Entry>()
        + std::mem::size_of::<String>()
}

impl QueryCache {
    pub fn new(capacity: usize) -> QueryCache {
        let r = obs::registry();
        QueryCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_gauge: r.gauge(
                "lipstick_serve_cache_bytes",
                "Payload bytes resident across every query cache in the process",
            ),
            evictions_total: r.counter(
                "lipstick_serve_cache_evictions_total",
                "Cache entries dropped: LRU evictions plus lazy stale-entry removals",
            ),
        }
    }

    /// Account one entry leaving the cache (LRU eviction, stale drop,
    /// or replacement by a fresh result under the same key).
    fn account_removal(&self, key: &str, entry: &Entry) {
        let freed = entry_bytes(key, &entry.result) as u64;
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.bytes_gauge.add(-(freed as i64));
        self.evictions_total.inc();
    }

    /// Look up `key` at the given epoch. An entry from an older epoch
    /// is stale: it is removed and the lookup misses.
    pub fn get(&self, key: &str, epoch: u64) -> Option<CachedResult> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        lru.tick += 1;
        let tick = lru.tick;
        match lru.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = tick;
                let result = entry.result.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            Some(_) => {
                if let Some(entry) = lru.map.remove(key) {
                    self.account_removal(key, &entry);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a result computed at `epoch`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&self, key: String, epoch: u64, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        lru.tick += 1;
        let tick = lru.tick;
        if !lru.map.contains_key(&key) && lru.map.len() >= self.capacity {
            // Prefer evicting a stale entry; otherwise the coldest.
            let victim = lru
                .map
                .iter()
                .min_by_key(|(_, e)| (e.epoch == epoch, e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                if let Some(entry) = lru.map.remove(&v) {
                    self.account_removal(&v, &entry);
                }
            }
        }
        let added = entry_bytes(&key, &result) as u64;
        let key_len = key.len();
        if let Some(replaced) = lru.map.insert(
            key,
            Entry {
                epoch,
                result,
                last_used: tick,
            },
        ) {
            // Same key re-inserted (e.g. recomputed at a newer epoch):
            // the old payload leaves, but nothing was "evicted". The
            // retained key is identical to the incoming one, so its
            // length stands in for the replaced entry's key bytes.
            let freed = (key_len
                + replaced.result.text.len()
                + replaced.result.json.len()
                + std::mem::size_of::<Entry>()
                + std::mem::size_of::<String>()) as u64;
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            self.bytes_gauge.add(-(freed as i64));
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        self.bytes_gauge.add(added as i64);
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (including stale-entry evictions) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Live entries (stale ones included until they are looked up or
    /// evicted).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes currently resident in this cache instance.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries this instance has dropped (LRU evictions + stale drops).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl obs::HeapSize for QueryCache {
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
        let table = {
            let lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            lru.map.capacity() * (std::mem::size_of::<String>() + std::mem::size_of::<Entry>() + 1)
        };
        vec![
            ("payload", self.bytes.load(Ordering::Relaxed) as usize),
            ("table", table),
        ]
    }
}

impl Drop for QueryCache {
    fn drop(&mut self) {
        // Give the resident bytes back to the process-wide gauge, or
        // short-lived caches (tests, benches) would leak into it.
        let remaining = self.bytes.load(Ordering::Relaxed);
        if remaining > 0 {
            self.bytes_gauge.add(-(remaining as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            text: tag.to_string(),
            json: format!("\"{tag}\""),
        }
    }

    #[test]
    fn hit_after_insert_at_same_epoch() {
        let cache = QueryCache::new(4);
        assert_eq!(cache.get("q", 0), None);
        cache.insert("q".into(), 0, result("r"));
        assert_eq!(cache.get("q", 0), Some(result("r")));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = QueryCache::new(4);
        cache.insert("q".into(), 0, result("old"));
        assert_eq!(cache.get("q", 1), None, "stale entry must not serve");
        assert_eq!(cache.len(), 0, "stale entry dropped on lookup");
        cache.insert("q".into(), 1, result("new"));
        assert_eq!(cache.get("q", 1), Some(result("new")));
    }

    #[test]
    fn lru_evicts_coldest_first_and_stale_before_fresh() {
        let cache = QueryCache::new(2);
        cache.insert("a".into(), 0, result("a"));
        cache.insert("b".into(), 0, result("b"));
        let _ = cache.get("a", 0); // b is now coldest
        cache.insert("c".into(), 0, result("c"));
        assert_eq!(cache.get("b", 0), None, "coldest evicted");
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("c", 0).is_some());
        // A stale entry is preferred over any fresh one, even a colder
        // fresh one.
        let cache = QueryCache::new(2);
        cache.insert("fresh".into(), 1, result("f"));
        cache.insert("stale".into(), 0, result("s"));
        let _ = cache.get("stale", 0); // stale is warmest, fresh coldest
        cache.insert("new".into(), 1, result("n"));
        assert!(cache.get("fresh", 1).is_some(), "fresh survived");
        assert!(cache.get("new", 1).is_some());
    }

    #[test]
    fn byte_accounting_balances_across_churn() {
        let cache = QueryCache::new(2);
        assert_eq!(cache.bytes(), 0);
        cache.insert("a".into(), 0, result("aa"));
        let one = cache.bytes();
        assert_eq!(one as usize, entry_bytes("a", &result("aa")));
        cache.insert("b".into(), 0, result("bb"));
        assert_eq!(cache.bytes(), 2 * one);
        // Replacement under the same key swaps payloads without an
        // eviction.
        cache.insert("a".into(), 1, result("aa"));
        assert_eq!(cache.bytes(), 2 * one);
        assert_eq!(cache.evictions(), 0);
        // LRU eviction at capacity frees the victim's bytes.
        cache.insert("c".into(), 1, result("cc"));
        assert_eq!(cache.bytes(), 2 * one);
        assert_eq!(cache.evictions(), 1);
        // A stale drop on lookup counts as an eviction too.
        cache.insert("d".into(), 0, result("dd"));
        assert_eq!(cache.evictions(), 2, "capacity eviction for d");
        assert_eq!(cache.get("d", 5), None);
        assert_eq!(cache.evictions(), 3, "stale drop of d");
        assert_eq!(cache.bytes(), one);
    }

    #[test]
    fn heap_breakdown_includes_payload_and_table() {
        use lipstick_core::obs::HeapSize;
        let cache = QueryCache::new(4);
        cache.insert("q".into(), 0, result("r"));
        let parts = cache.heap_breakdown();
        assert_eq!(parts[0].0, "payload");
        assert_eq!(parts[0].1, cache.bytes() as usize);
        assert_eq!(parts[1].0, "table");
        assert!(cache.heap_bytes() >= parts[0].1);
    }
}
