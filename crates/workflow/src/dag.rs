//! Workflow DAGs (Definition 2.2) and their validation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::error::{Result, WfError};
use crate::module::ModuleSpec;

/// Index of a node in a workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A workflow node: a module *instance* with its own identity (state is
/// per instance — `Mdealer1…4` share a spec but not state).
#[derive(Debug, Clone)]
pub struct WfNode {
    /// Unique instance name (`LV`'s module name in the paper).
    pub instance: String,
    /// The module specification.
    pub spec: Arc<ModuleSpec>,
}

/// An edge: relation names flowing from one node's `Sout` to another's
/// `Sin` (`LE`).
#[derive(Debug, Clone)]
pub struct WfEdge {
    pub from: NodeIdx,
    pub to: NodeIdx,
    pub relations: Vec<String>,
}

/// A validated workflow (Definition 2.2).
#[derive(Debug, Clone)]
pub struct Workflow {
    nodes: Vec<WfNode>,
    edges: Vec<WfEdge>,
    inputs: Vec<NodeIdx>,
    outputs: Vec<NodeIdx>,
    topo: Vec<NodeIdx>,
}

impl Workflow {
    pub fn nodes(&self) -> &[WfNode] {
        &self.nodes
    }
    pub fn edges(&self) -> &[WfEdge] {
        &self.edges
    }
    /// Input nodes (`In`): no incoming edges; fed by workflow inputs.
    pub fn input_nodes(&self) -> &[NodeIdx] {
        &self.inputs
    }
    /// Output nodes (`Out`): no outgoing edges; their outputs are the
    /// workflow outputs.
    pub fn output_nodes(&self) -> &[NodeIdx] {
        &self.outputs
    }
    /// A topological order of the nodes (the reference semantics).
    pub fn topo_order(&self) -> &[NodeIdx] {
        &self.topo
    }
    pub fn node(&self, idx: NodeIdx) -> &WfNode {
        &self.nodes[idx.index()]
    }
    /// Incoming edges of a node.
    pub fn incoming(&self, idx: NodeIdx) -> impl Iterator<Item = &WfEdge> {
        self.edges.iter().filter(move |e| e.to == idx)
    }
    /// Outgoing edges of a node.
    pub fn outgoing(&self, idx: NodeIdx) -> impl Iterator<Item = &WfEdge> {
        self.edges.iter().filter(move |e| e.from == idx)
    }
    /// Find a node index by instance name.
    pub fn find(&self, instance: &str) -> Result<NodeIdx> {
        self.nodes
            .iter()
            .position(|n| n.instance == instance)
            .map(|i| NodeIdx(i as u32))
            .ok_or_else(|| WfError::UnknownNode(instance.to_string()))
    }
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    /// True iff the workflow has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builder with validation.
#[derive(Debug, Default)]
pub struct WorkflowBuilder {
    nodes: Vec<WfNode>,
    edges: Vec<WfEdge>,
}

impl WorkflowBuilder {
    pub fn new() -> Self {
        WorkflowBuilder::default()
    }

    /// Add a module instance; returns its index.
    pub fn add_node(&mut self, instance: impl Into<String>, spec: Arc<ModuleSpec>) -> NodeIdx {
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(WfNode {
            instance: instance.into(),
            spec,
        });
        idx
    }

    /// Add an edge carrying the given relations.
    pub fn add_edge(&mut self, from: NodeIdx, to: NodeIdx, relations: &[&str]) {
        self.edges.push(WfEdge {
            from,
            to,
            relations: relations.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Validate per Definition 2.2 and freeze.
    pub fn build(self) -> Result<Workflow> {
        let n = self.nodes.len();
        // Unique instance names.
        let mut seen = HashSet::new();
        for node in &self.nodes {
            if !seen.insert(node.instance.clone()) {
                return Err(WfError::DuplicateInstance(node.instance.clone()));
            }
        }
        // Edge labels must exist in the endpoint schemas.
        for e in &self.edges {
            let from = &self.nodes[e.from.index()];
            let to = &self.nodes[e.to.index()];
            for rel in &e.relations {
                if !from.spec.has_output(rel) {
                    return Err(WfError::BadEdge {
                        from: from.instance.clone(),
                        to: to.instance.clone(),
                        relation: rel.clone(),
                        reason: format!("not an output of '{}'", from.spec.name),
                    });
                }
                if !to.spec.has_input(rel) {
                    return Err(WfError::BadEdge {
                        from: from.instance.clone(),
                        to: to.instance.clone(),
                        relation: rel.clone(),
                        reason: format!("not an input of '{}'", to.spec.name),
                    });
                }
            }
        }
        // Incoming relation names pairwise disjoint per node; compute
        // coverage of input schemas.
        let mut incoming_rels: Vec<HashSet<&str>> = vec![HashSet::new(); n];
        for e in &self.edges {
            for rel in &e.relations {
                if !incoming_rels[e.to.index()].insert(rel) {
                    return Err(WfError::DuplicateIncoming {
                        node: self.nodes[e.to.index()].instance.clone(),
                        relation: rel.clone(),
                    });
                }
            }
        }
        // Topological sort (Kahn) + cycle detection.
        let mut indeg = vec![0usize; n];
        let mut has_incoming = vec![false; n];
        let mut has_outgoing = vec![false; n];
        for e in &self.edges {
            indeg[e.to.index()] += 1;
            has_incoming[e.to.index()] = true;
            has_outgoing[e.from.index()] = true;
        }
        let mut queue: VecDeque<NodeIdx> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| NodeIdx(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut indeg_work = indeg.clone();
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            for e in self.edges.iter().filter(|e| e.from == v) {
                indeg_work[e.to.index()] -= 1;
                if indeg_work[e.to.index()] == 0 {
                    queue.push_back(e.to);
                }
            }
        }
        if topo.len() != n {
            return Err(WfError::Cyclic);
        }
        // Connectivity (weak): required by Definition 2.2.
        if n > 1 {
            let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
            for e in &self.edges {
                adj.entry(e.from.index()).or_default().push(e.to.index());
                adj.entry(e.to.index()).or_default().push(e.from.index());
            }
            let mut visited = vec![false; n];
            let mut stack = vec![0usize];
            visited[0] = true;
            let mut count = 1;
            while let Some(v) = stack.pop() {
                for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
                    if !visited[w] {
                        visited[w] = true;
                        count += 1;
                        stack.push(w);
                    }
                }
            }
            if count != n {
                return Err(WfError::Disconnected);
            }
        }
        // Input coverage: non-input nodes must have all Sin relations
        // supplied by incoming edges.
        let inputs: Vec<NodeIdx> = (0..n)
            .filter(|&i| !has_incoming[i])
            .map(|i| NodeIdx(i as u32))
            .collect();
        for (i, node) in self.nodes.iter().enumerate() {
            if !has_incoming[i] {
                continue; // input node: Sin comes from outside
            }
            for rel in node.spec.input_names() {
                if !incoming_rels[i].contains(rel) {
                    return Err(WfError::UncoveredInput {
                        node: node.instance.clone(),
                        relation: rel.to_string(),
                    });
                }
            }
        }
        let outputs: Vec<NodeIdx> = (0..n)
            .filter(|&i| !has_outgoing[i])
            .map(|i| NodeIdx(i as u32))
            .collect();
        Ok(Workflow {
            nodes: self.nodes,
            edges: self.edges,
            inputs,
            outputs,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_nrel::{DataType, Schema};

    fn passthrough(name: &str) -> Arc<ModuleSpec> {
        let s = Schema::named(&[("x", DataType::Int)]);
        Arc::new(ModuleSpec {
            name: name.into(),
            input_schema: vec![("In".into(), s.clone())],
            state_schema: vec![],
            output_schema: vec![("Out".into(), s)],
            q_state: String::new(),
            q_out: "Out = FILTER In BY true;".into(),
        })
    }

    fn chain2() -> WorkflowBuilder {
        let mut b = WorkflowBuilder::new();
        let spec_a = {
            let s = Schema::named(&[("x", DataType::Int)]);
            Arc::new(ModuleSpec {
                name: "A".into(),
                input_schema: vec![("In".into(), s.clone())],
                state_schema: vec![],
                output_schema: vec![("Out".into(), s)],
                q_state: String::new(),
                q_out: "Out = FILTER In BY true;".into(),
            })
        };
        let spec_b = {
            let s = Schema::named(&[("x", DataType::Int)]);
            Arc::new(ModuleSpec {
                name: "B".into(),
                input_schema: vec![("Out".into(), s.clone())],
                state_schema: vec![],
                output_schema: vec![("Final".into(), s)],
                q_state: String::new(),
                q_out: "Final = FILTER Out BY true;".into(),
            })
        };
        let a = b.add_node("a", spec_a);
        let bnode = b.add_node("b", spec_b);
        b.add_edge(a, bnode, &["Out"]);
        b
    }

    #[test]
    fn valid_chain_builds() {
        let wf = chain2().build().unwrap();
        assert_eq!(wf.input_nodes(), &[NodeIdx(0)]);
        assert_eq!(wf.output_nodes(), &[NodeIdx(1)]);
        assert_eq!(wf.topo_order(), &[NodeIdx(0), NodeIdx(1)]);
        assert_eq!(wf.find("b").unwrap(), NodeIdx(1));
        assert!(wf.find("zzz").is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut b = WorkflowBuilder::new();
        let spec = passthrough("M");
        // make In/Out symmetric so edges type-check
        let spec = Arc::new(ModuleSpec {
            output_schema: vec![("In".into(), spec.input_schema[0].1.clone())],
            ..(*spec).clone()
        });
        let x = b.add_node("x", spec.clone());
        let y = b.add_node("y", spec);
        b.add_edge(x, y, &["In"]);
        b.add_edge(y, x, &["In"]);
        assert_eq!(b.build().unwrap_err(), WfError::Cyclic);
    }

    #[test]
    fn bad_edge_relation_rejected() {
        let mut b = chain2();
        // nodes 0 and 1 exist; add an edge with a bogus relation
        b.add_edge(NodeIdx(0), NodeIdx(1), &["Bogus"]);
        assert!(matches!(b.build(), Err(WfError::BadEdge { .. })));
    }

    #[test]
    fn duplicate_incoming_rejected() {
        let mut b = chain2();
        b.add_edge(NodeIdx(0), NodeIdx(1), &["Out"]);
        assert!(matches!(b.build(), Err(WfError::DuplicateIncoming { .. })));
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut b = WorkflowBuilder::new();
        b.add_node("same", passthrough("M"));
        b.add_node("same", passthrough("M"));
        assert!(matches!(b.build(), Err(WfError::DuplicateInstance(_))));
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = WorkflowBuilder::new();
        b.add_node("a", passthrough("M"));
        b.add_node("b", passthrough("M"));
        assert_eq!(b.build().unwrap_err(), WfError::Disconnected);
    }

    #[test]
    fn uncovered_input_rejected() {
        let mut b = WorkflowBuilder::new();
        let s = Schema::named(&[("x", DataType::Int)]);
        let two_inputs = Arc::new(ModuleSpec {
            name: "Two".into(),
            input_schema: vec![("Out".into(), s.clone()), ("Other".into(), s.clone())],
            state_schema: vec![],
            output_schema: vec![("Final".into(), s)],
            q_state: String::new(),
            q_out: "Final = FILTER Out BY true;".into(),
        });
        let a = b.add_node("a", passthrough("M"));
        let t = b.add_node("t", two_inputs);
        b.add_edge(a, t, &["Out"]);
        assert!(matches!(b.build(), Err(WfError::UncoveredInput { .. })));
    }
}
