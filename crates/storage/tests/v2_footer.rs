//! v2 footer round-trip and corruption tests: write-with-index →
//! open-lazy → full-load must agree node-for-node, and truncated or
//! garbled footers must come back as errors, never panics.

use lipstick_core::agg::AggOp;
use lipstick_core::graph::RETIRED_STASH;
use lipstick_core::query::{zoom_in, zoom_out};
use lipstick_core::store::GraphStore;
use lipstick_core::{NodeId, NodeKind, ProvGraph, Role};
use lipstick_nrel::Value;
use lipstick_storage::{decode_graph, encode_graph_v2, PagedLog};
use proptest::prelude::*;

/// Deterministic xorshift so every proptest case is reproducible from
/// its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A random DAG exercising kinds, roles, invocations, edges to earlier
/// nodes, and tombstones.
fn random_graph(seed: u64) -> ProvGraph {
    let mut rng = Rng(seed);
    let mut g = ProvGraph::new();
    let modules = ["Malpha", "Mbeta"];
    let mut invs = Vec::new();
    for (i, m) in modules.iter().enumerate() {
        let (inv, _) = g.add_invocation(m, i as u32);
        invs.push(inv);
    }
    let n = 3 + rng.below(40);
    for i in 0..n {
        let kind = match rng.below(8) {
            0 => NodeKind::BaseTuple {
                token: lipstick_core::Token::new(format!("t{i}")),
            },
            1 => NodeKind::Plus,
            2 => NodeKind::Times,
            3 => NodeKind::Delta,
            4 => NodeKind::Const {
                value: Value::Int(rng.next() as i64),
            },
            5 => NodeKind::Tensor,
            6 => NodeKind::AggResult { op: AggOp::Count },
            _ => NodeKind::BlackBox {
                name: format!("bb{i}"),
                is_value: rng.below(2) == 0,
            },
        };
        let role = match rng.below(3) {
            0 => Role::Free,
            1 => Role::Intermediate(invs[rng.below(invs.len())]),
            _ => Role::State(invs[rng.below(invs.len())]),
        };
        let id = g.add_node(kind, role);
        // Edges from strictly earlier nodes keep the graph acyclic.
        let earlier = id.index();
        for _ in 0..rng.below(3.min(earlier + 1)) {
            let from = NodeId(rng.below(earlier) as u32);
            if from != id {
                g.add_edge(from, id);
            }
        }
    }
    // Tombstone a random sprinkle of nodes.
    for i in 0..g.len() {
        if rng.below(6) == 0 {
            g.set_node_deleted(NodeId(i as u32), true);
        }
    }
    g
}

/// Node-for-node agreement between the original graph, the lazy reader,
/// and the full loader.
fn assert_three_way_agreement(g: &ProvGraph) {
    let bytes = encode_graph_v2(g).unwrap();
    let full = decode_graph(&bytes).unwrap();
    let paged = PagedLog::from_bytes(bytes).unwrap();

    assert_eq!(full.len(), g.len());
    assert_eq!(paged.node_count(), g.len());
    for (id, node) in g.iter() {
        let loaded = full.node(id);
        assert_eq!(loaded.kind, node.kind, "full-load kind of {id}");
        assert_eq!(loaded.role, node.role, "full-load role of {id}");
        assert_eq!(loaded.preds(), node.preds(), "full-load preds of {id}");
        assert_eq!(loaded.is_visible(), node.is_visible());

        assert_eq!(paged.kind_of(id), node.kind, "paged kind of {id}");
        assert_eq!(paged.role_of(id), node.role, "paged role of {id}");
        assert_eq!(paged.preds_of(id), node.preds().to_vec());
        assert_eq!(paged.is_visible(id), node.is_visible());
        let mut succs = node.succs().to_vec();
        succs.sort();
        assert_eq!(paged.succs_of(id), succs, "paged succs of {id}");
    }
    assert_eq!(paged.invocations().len(), g.invocations().len());
    for (a, b) in g.invocations().iter().zip(paged.invocations()) {
        assert_eq!(
            (&a.module, a.execution, a.m_node),
            (&b.module, b.execution, b.m_node)
        );
    }
    // Postings agree with a resident scan.
    for m in ["Malpha", "Mbeta", "Mnope"] {
        let expect: Vec<NodeId> = g
            .iter_visible()
            .filter(|(_, n)| {
                n.role
                    .invocation()
                    .is_some_and(|inv| g.invocation(inv).module == m)
            })
            .map(|(id, _)| id)
            .collect();
        assert_eq!(paged.module_postings(m).unwrap(), expect, "postings of {m}");
    }
}

proptest! {
    #[test]
    fn v2_round_trip_agrees_node_for_node(seed: u64) {
        assert_three_way_agreement(&random_graph(seed));
    }

    #[test]
    fn truncated_v2_files_error_not_panic(seed: u64) {
        let g = random_graph(seed);
        let bytes = encode_graph_v2(&g).unwrap();
        // Any truncation loses the trailer (it sits at EOF), so the
        // lazy open must fail cleanly.
        let mut rng = Rng(seed ^ 0xdead);
        for _ in 0..16 {
            let cut = rng.below(bytes.len());
            prop_assert!(PagedLog::from_bytes(bytes[..cut].to_vec()).is_err());
        }
        // The sequential full loader ignores the footer, so it accepts
        // cuts that only lose footer bytes — but any cut inside the
        // record region must still be rejected exactly as for v1.
        let records_end = PagedLog::from_bytes(bytes.clone())
            .unwrap()
            .index()
            .invocations_offset();
        for _ in 0..8 {
            let cut = rng.below(records_end);
            prop_assert!(decode_graph(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn garbled_footer_bytes_never_panic(seed: u64) {
        let g = random_graph(seed);
        let bytes = encode_graph_v2(&g).unwrap();
        // Find the footer region: everything after the invocation
        // table. Flipping bytes there may still parse (e.g. inside a
        // posted name) but must never panic or wrap into a huge
        // allocation.
        let mut rng = Rng(seed ^ 0xbeef);
        for _ in 0..24 {
            let mut mutated = bytes.clone();
            let at = bytes.len() - 1 - rng.below(bytes.len().min(96));
            mutated[at] ^= 1 << rng.below(8);
            if let Ok(paged) = PagedLog::from_bytes(mutated) {
                // If the index still parses, reading through it must
                // stay memory-safe: decode every record, tolerating
                // per-record errors.
                let _ = paged.verify_all();
            }
        }
    }
}

#[test]
fn retired_zoom_composite_round_trips_the_sentinel() {
    let mut t = lipstick_core::graph::GraphTracker::new();
    use lipstick_core::Tracker;
    let wi = t.workflow_input("I1");
    t.begin_invocation("M", 0);
    let i = t.module_input(wi);
    let j = t.times(&[i]);
    t.module_output(j, &[]);
    t.end_invocation();
    let mut g = t.finish();
    zoom_out(&mut g, &["M"]).unwrap();
    zoom_in(&mut g, &["M"]).unwrap();

    let retired: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Zoomed { .. }))
        .map(|(id, _)| id)
        .collect();
    assert!(!retired.is_empty());
    for &id in &retired {
        assert_eq!(
            g.node(id).kind,
            NodeKind::Zoomed {
                stash: RETIRED_STASH
            },
            "ZoomIn remaps the dead stash index to the sentinel"
        );
    }

    let bytes = encode_graph_v2(&g).unwrap();
    let full = decode_graph(&bytes).unwrap();
    let paged = PagedLog::from_bytes(bytes).unwrap();
    for &id in &retired {
        assert_eq!(full.node(id).kind, g.node(id).kind, "exact round trip");
        assert_eq!(paged.kind_of(id), g.node(id).kind);
        assert!(!paged.is_visible(id));
    }
}
