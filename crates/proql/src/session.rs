//! A ProQL session: a provenance graph, an optional reachability
//! index, and the parse → plan → execute loop.

use std::path::Path;

use lipstick_core::query::ReachIndex;
use lipstick_core::ProvGraph;

use crate::ast::Statement;
use crate::error::{ProqlError, Result};
use crate::exec;
use crate::parser::{parse_script, parse_statement};
use crate::plan::StmtPlan;
use crate::planner::{fuse_zooms, Planner};
use crate::result::QueryOutput;

/// Query-processor state: the graph under interrogation plus the
/// optional §5.1 reachability closure. Mutating statements (`DELETE`,
/// `ZOOM`) invalidate the closure automatically; rebuild it with
/// `BUILD INDEX`.
pub struct Session {
    graph: ProvGraph,
    reach: Option<ReachIndex>,
}

impl Session {
    /// A session over an in-memory graph.
    pub fn new(graph: ProvGraph) -> Session {
        Session { graph, reach: None }
    }

    /// Load a provenance log written by `lipstick_storage::write_graph`
    /// — the Query Processor's first step.
    pub fn load(path: impl AsRef<Path>) -> Result<Session> {
        let graph = lipstick_storage::load_graph(path.as_ref())
            .map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session::new(graph))
    }

    pub fn graph(&self) -> &ProvGraph {
        &self.graph
    }

    pub(crate) fn graph_mut(&mut self) -> &mut ProvGraph {
        &mut self.graph
    }

    pub(crate) fn reach(&self) -> Option<&ReachIndex> {
        self.reach.as_ref()
    }

    pub fn has_reach_index(&self) -> bool {
        self.reach.is_some()
    }

    pub(crate) fn set_index(&mut self, index: ReachIndex) {
        self.reach = Some(index);
    }

    /// Drop the reachability closure (it is stale once the graph
    /// mutates).
    pub(crate) fn invalidate_index(&mut self) {
        self.reach = None;
    }

    /// Run a script: zero or more `;`-separated statements. Statements
    /// are planned one at a time against the current graph state (a
    /// `DELETE` changes what later statements see), with consecutive
    /// zooms fused first.
    pub fn run(&mut self, script: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_script(script)?;
        let fused = fuse_zooms(stmts);
        let mut outputs = Vec::with_capacity(fused.len());
        for fs in &fused {
            let plan = Planner::new(&self.graph, self.reach.is_some()).plan_fused(fs)?;
            outputs.push(exec::execute(self, &plan)?);
        }
        Ok(outputs)
    }

    /// Run exactly one statement.
    pub fn run_one(&mut self, statement: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(statement)?;
        let plan = self.plan(&stmt)?;
        exec::execute(self, &plan)
    }

    /// Plan a statement without executing it.
    pub fn plan(&self, stmt: &Statement) -> Result<StmtPlan> {
        Planner::new(&self.graph, self.reach.is_some()).plan(stmt)
    }

    /// The physical plan for a statement, as `EXPLAIN` would print it.
    pub fn explain(&self, statement: &str) -> Result<String> {
        let stmt = parse_statement(statement)?;
        Ok(self.plan(&stmt)?.to_string())
    }
}
