//! Sorting utilities for ORDER BY.
//!
//! ORDER is a post-processing step in both Pig Latin and the provenance
//! model (§3.2: "relations are unordered in our representation, ORDER …
//! is a post-processing step"). These helpers implement multi-key
//! ascending/descending sorts over tuples using the total value order.

use std::cmp::Ordering;

use crate::error::Result;
use crate::value::Tuple;

/// Sort direction for one ORDER BY key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Asc,
    Desc,
}

/// One sort key: a field position plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub position: usize,
    pub direction: Direction,
}

impl SortKey {
    pub fn asc(position: usize) -> Self {
        SortKey {
            position,
            direction: Direction::Asc,
        }
    }
    pub fn desc(position: usize) -> Self {
        SortKey {
            position,
            direction: Direction::Desc,
        }
    }
}

/// Compare two tuples under a sequence of sort keys.
pub fn compare(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Result<Ordering> {
    for key in keys {
        let va = a.get(key.position)?;
        let vb = b.get(key.position)?;
        let ord = match key.direction {
            Direction::Asc => va.cmp(vb),
            Direction::Desc => vb.cmp(va),
        };
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(Ordering::Equal)
}

/// Stable-sort tuples (paired with arbitrary payloads, e.g. provenance
/// references) by the given keys. Returns an error if any key position is
/// out of range for some tuple.
pub fn sort_with_payload<P>(rows: &mut [(Tuple, P)], keys: &[SortKey]) -> Result<()> {
    // Validate positions up front so the comparator below cannot fail.
    for (t, _) in rows.iter() {
        for key in keys {
            t.get(key.position)?;
        }
    }
    rows.sort_by(|(a, _), (b, _)| compare(a, b, keys).unwrap_or(Ordering::Equal));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(a: i64, b: &str) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::str(b)])
    }

    #[test]
    fn single_key_ascending() {
        let mut rows = vec![(t(3, "c"), ()), (t(1, "a"), ()), (t(2, "b"), ())];
        sort_with_payload(&mut rows, &[SortKey::asc(0)]).unwrap();
        let keys: Vec<i64> = rows
            .iter()
            .map(|(t, _)| t.get(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn multi_key_mixed_direction() {
        let mut rows = vec![(t(1, "b"), 0), (t(1, "a"), 1), (t(0, "z"), 2)];
        sort_with_payload(&mut rows, &[SortKey::asc(0), SortKey::desc(1)]).unwrap();
        assert_eq!(rows[0].1, 2); // (0, z)
        assert_eq!(rows[1].1, 0); // (1, b) — desc on second key
        assert_eq!(rows[2].1, 1); // (1, a)
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let mut rows = vec![(t(1, "x"), 0), (t(1, "x"), 1), (t(1, "x"), 2)];
        sort_with_payload(&mut rows, &[SortKey::asc(0)]).unwrap();
        let payloads: Vec<i32> = rows.iter().map(|(_, p)| *p).collect();
        assert_eq!(payloads, vec![0, 1, 2]);
    }

    #[test]
    fn out_of_range_key_is_error() {
        let mut rows = vec![(t(1, "x"), ())];
        assert!(sort_with_payload(&mut rows, &[SortKey::asc(9)]).is_err());
    }
}
