//! Lazy, footer-indexed access to a v2 provenance log.
//!
//! [`PagedLog`] keeps the raw file bytes plus the parsed
//! [`LogIndex`] resident, and decodes individual node records only when
//! a query touches them (a *fault*). Faulted records are cached, and the
//! fault count is the "records read" figure ProQL's `EXPLAIN` reports —
//! the measurable difference between a postings-driven scan and a full
//! decode.
//!
//! Visibility and successor adjacency come from the footer, so pure
//! reachability sweeps fault nothing; kinds, roles, and predecessor
//! lists fault one record each, once.
//!
//! The fault cache is sharded behind mutexes (and the fault counter is
//! atomic), so a `PagedLog` is `Send + Sync`: `lipstick-serve` shares
//! one paged log across a whole worker pool, with concurrent queries
//! faulting records in parallel and contending only when two threads
//! touch the same shard.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use bytes::Buf;
use lipstick_core::graph::InvocationInfo;
use lipstick_core::obs;
use lipstick_core::store::GraphStore;
use lipstick_core::{InvocationId, NodeId, NodeKind, ProvGraph, Role};

use crate::codec::{get_kind, get_role};
use crate::error::{Result, StorageError};
use crate::footer::LogIndex;
use crate::log::{decode_graph, decode_invocations, decode_pred_list, MAGIC, VERSION_V2};
use crate::varint::get_count;

/// One decoded node record.
#[derive(Debug, Clone)]
struct Record {
    kind: NodeKind,
    role: Role,
    preds: Vec<NodeId>,
}

/// Number of cache shards. A small power of two: enough to keep a
/// worker pool's threads off each other's locks, cheap enough that an
/// idle log carries no weight.
const CACHE_SHARDS: usize = 16;

/// A v2 provenance log opened for lazy, record-at-a-time reads.
///
/// `Send + Sync`: the raw bytes and footer index are immutable, the
/// fault cache is sharded behind mutexes, and the fault counter is
/// atomic, so concurrent readers may share one log freely.
pub struct PagedLog {
    data: Vec<u8>,
    index: LogIndex,
    invocations: Vec<InvocationInfo>,
    /// Boxed so an idle `PagedLog` (and the session enum wrapping it)
    /// stays small; the shards only cost a pointer until first fault.
    cache: Box<[Mutex<HashMap<u32, Record>>]>,
    /// Per-log fault counter (tests and `STATS` report per-instance
    /// figures); every fault also feeds the process-wide
    /// `lipstick_storage_faults_total` registry instrument.
    faults: obs::Counter,
    faults_total: Arc<obs::Counter>,
}

impl PagedLog {
    /// Open a v2 log file. Fails with [`StorageError::BadVersion`] on a
    /// v1 log (which has no footer; use [`crate::load_graph`]) and with
    /// [`StorageError::Corrupt`] on a truncated or garbled footer.
    pub fn open(path: impl AsRef<Path>) -> Result<PagedLog> {
        PagedLog::open_with_io(path.as_ref(), crate::io::default_io().as_ref())
    }

    /// [`PagedLog::open`] through an explicit IO implementation (the
    /// log does not retain it — a sealed log performs no further IO).
    pub fn open_with_io(path: &Path, io: &dyn crate::io::StorageIo) -> Result<PagedLog> {
        PagedLog::from_bytes(io.read(path)?)
    }

    /// Open a v2 log already in memory.
    pub fn from_bytes(data: Vec<u8>) -> Result<PagedLog> {
        if data.len() < 6 {
            return Err(StorageError::BadMagic);
        }
        if &data[..5] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = data[5];
        if version != VERSION_V2 {
            return Err(StorageError::BadVersion(version));
        }
        let mut header = &data[6..];
        let before = header.remaining();
        let node_count = get_count(&mut header)?;
        let records_start = 6 + (before - header.remaining());
        let index = LogIndex::parse(&data, node_count)?;
        if node_count > 0 && index.record_range(NodeId(0)).start < records_start {
            return Err(StorageError::Corrupt(
                "first record offset points into the header".into(),
            ));
        }
        // The invocation table is small; decode it eagerly so module
        // predicates never fault node records.
        let inv_start = index.invocations_offset();
        if inv_start > data.len() {
            return Err(StorageError::Corrupt(
                "invocation table offset beyond file".into(),
            ));
        }
        let mut inv_buf = &data[inv_start..];
        let invocations = decode_invocations(&mut inv_buf, node_count)?;
        Ok(PagedLog {
            data,
            index,
            invocations,
            cache: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            faults: obs::Counter::new(),
            faults_total: obs::registry().counter(
                "lipstick_storage_faults_total",
                "Node records decoded from paged logs (cache misses), process-wide",
            ),
        })
    }

    /// The parsed footer index.
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// Number of node records decoded so far (cache misses).
    pub fn faults(&self) -> usize {
        self.faults.get() as usize
    }

    /// Decode the *entire* log into a resident [`ProvGraph`] — the
    /// promotion path for statements that must mutate (DELETE, ZOOM,
    /// BUILD INDEX).
    pub fn decode_full(&self) -> Result<ProvGraph> {
        decode_graph(&self.data)
    }

    /// Fault in record `id`, consulting the cache first. The record's
    /// shard stays locked across the decode, so two threads racing on
    /// the same record decode it once; threads on different shards
    /// never contend.
    fn with_record<R>(&self, id: NodeId, f: impl FnOnce(&Record) -> R) -> Result<R> {
        let mut shard = self.cache[id.0 as usize % CACHE_SHARDS]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(rec) = shard.get(&id.0) {
            return Ok(f(rec));
        }
        let range = self.index.record_range(id);
        let mut buf = self
            .data
            .get(range)
            .ok_or_else(|| StorageError::Corrupt(format!("record {id} out of file bounds")))?;
        if !buf.has_remaining() {
            return Err(StorageError::Corrupt(format!("empty record for {id}")));
        }
        let _flags = buf.get_u8();
        let role = get_role(&mut buf)?;
        let kind = get_kind(&mut buf)?;
        let preds = decode_pred_list(&mut buf, self.index.node_count())?;
        let rec = Record { kind, role, preds };
        self.faults.inc();
        self.faults_total.inc();
        let out = f(&rec);
        shard.insert(id.0, rec);
        Ok(out)
    }

    fn expect_record<R>(&self, id: NodeId, f: impl FnOnce(&Record) -> R) -> R {
        // GraphStore accessors are infallible (ids are minted by the
        // store); a record that fails to decode *after* the footer
        // validated its offsets is file corruption discovered late.
        self.with_record(id, f)
            .unwrap_or_else(|e| panic!("corrupt record {id}: {e}"))
    }

    /// Decode every record, verifying the whole file (used by tests and
    /// `proql`'s corruption checks).
    pub fn verify_all(&self) -> Result<()> {
        for i in 0..self.index.node_count() {
            self.with_record(NodeId(i as u32), |_| ())?;
        }
        Ok(())
    }
}

// The serve frontend shares one log across a worker pool; regressing
// to single-thread-only interior mutability must not compile.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PagedLog>();
};

impl obs::HeapSize for PagedLog {
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
        use lipstick_core::graph::kind_heap_bytes;
        use lipstick_core::obs::vec_alloc_bytes;
        // The sharded fault cache: hash-table buckets (keyed u32 →
        // Record plus ~1 byte of control metadata per slot, the
        // std hashbrown layout) plus the decoded records' own heap.
        let slot = std::mem::size_of::<u32>() + std::mem::size_of::<Record>() + 1;
        let mut fault_cache = 0usize;
        for shard in self.cache.iter() {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            fault_cache += shard.capacity() * slot;
            fault_cache += shard
                .values()
                .map(|r| vec_alloc_bytes(&r.preds) + kind_heap_bytes(&r.kind))
                .sum::<usize>();
        }
        let invocations = vec_alloc_bytes(&self.invocations)
            + self
                .invocations
                .iter()
                .map(|i| i.module.len())
                .sum::<usize>();
        vec![
            ("raw_log", vec_alloc_bytes(&self.data)),
            ("footer_index", obs::HeapSize::heap_bytes(&self.index)),
            ("invocations", invocations),
            ("fault_cache", fault_cache),
        ]
    }
}

impl GraphStore for PagedLog {
    fn node_count(&self) -> usize {
        self.index.node_count()
    }

    fn is_visible(&self, id: NodeId) -> bool {
        self.index.is_visible(id)
    }

    fn kind_of(&self, id: NodeId) -> NodeKind {
        self.expect_record(id, |r| r.kind.clone())
    }

    fn role_of(&self, id: NodeId) -> Role {
        self.expect_record(id, |r| r.role)
    }

    fn preds_of(&self, id: NodeId) -> Vec<NodeId> {
        self.expect_record(id, |r| r.preds.clone())
    }

    fn succs_of(&self, id: NodeId) -> Vec<NodeId> {
        self.index.succs(id).to_vec()
    }

    fn invocations(&self) -> &[InvocationInfo] {
        &self.invocations
    }

    fn invocation(&self, id: InvocationId) -> &InvocationInfo {
        &self.invocations[id.index()]
    }

    fn records_read(&self) -> usize {
        self.faults()
    }

    fn module_postings(&self, module: &str) -> Option<Vec<NodeId>> {
        Some(self.index.module_postings(module).to_vec())
    }

    fn kind_postings(&self, kind: &str) -> Option<Vec<NodeId>> {
        Some(self.index.kind_postings(kind).to_vec())
    }

    fn memory_breakdown(&self) -> Vec<(&'static str, usize)> {
        obs::HeapSize::heap_breakdown(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{encode_graph, encode_graph_v2};
    use lipstick_core::query::{depends_on, Direction};
    use lipstick_core::store::{depends_on_store, expr_of_store, traverse_store};

    fn sample() -> ProvGraph {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let c = g.add_base("c");
        let t = g.add_times(&[a, b]);
        let p = g.add_plus(&[t, c]);
        g.add_delta(&[p]);
        g
    }

    #[test]
    fn paged_accessors_agree_with_resident() {
        let g = sample();
        let paged = PagedLog::from_bytes(encode_graph_v2(&g).unwrap()).unwrap();
        assert_eq!(paged.node_count(), g.len());
        for (id, node) in g.iter() {
            assert_eq!(paged.is_visible(id), node.is_visible());
            assert_eq!(paged.kind_of(id), node.kind);
            assert_eq!(paged.role_of(id), node.role);
            assert_eq!(paged.preds_of(id), node.preds().to_vec());
            let mut succs = node.succs().to_vec();
            succs.sort();
            assert_eq!(paged.succs_of(id), succs);
        }
    }

    #[test]
    fn faults_count_distinct_records_only() {
        let g = sample();
        let paged = PagedLog::from_bytes(encode_graph_v2(&g).unwrap()).unwrap();
        assert_eq!(paged.faults(), 0);
        let id = NodeId(3);
        let _ = paged.kind_of(id);
        let _ = paged.role_of(id);
        let _ = paged.preds_of(id);
        assert_eq!(paged.faults(), 1, "one record, one fault");
        let _ = paged.succs_of(NodeId(0));
        assert!(paged.is_visible(NodeId(0)));
        assert_eq!(
            paged.faults(),
            1,
            "adjacency and visibility are index-level"
        );
    }

    #[test]
    fn generic_primitives_run_over_the_paged_store() {
        let g = sample();
        let paged = PagedLog::from_bytes(encode_graph_v2(&g).unwrap()).unwrap();
        let root = NodeId(0);
        let (nodes, _) =
            traverse_store(&paged, root, Direction::Descendants, None, |_| true).unwrap();
        let (expect, _) = traverse_store(&g, root, Direction::Descendants, None, |_| true).unwrap();
        assert_eq!(nodes, expect);
        assert_eq!(
            expr_of_store(&paged, NodeId(5)).to_string(),
            g.expr_of(NodeId(5)).to_string()
        );
        for (n, _) in g.iter_visible() {
            for (m, _) in g.iter_visible() {
                assert_eq!(
                    depends_on_store(&paged, n, m).unwrap(),
                    depends_on(&g, n, m).unwrap()
                );
            }
        }
    }

    #[test]
    fn concurrent_readers_share_one_log() {
        let g = sample();
        let paged = PagedLog::from_bytes(encode_graph_v2(&g).unwrap()).unwrap();
        let n = paged.node_count();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..n {
                        let id = NodeId(i as u32);
                        let _ = paged.kind_of(id);
                        let _ = paged.role_of(id);
                        let _ = paged.preds_of(id);
                    }
                });
            }
        });
        // The shard lock is held across decode-and-insert, so racing
        // threads serialize on a record and decode it exactly once.
        assert_eq!(paged.faults(), n);
        let before = paged.faults();
        for i in 0..n {
            let _ = paged.kind_of(NodeId(i as u32));
        }
        assert_eq!(paged.faults(), before, "warm cache faults nothing");
    }

    #[test]
    fn v1_log_is_rejected_with_bad_version() {
        let g = sample();
        let bytes = encode_graph(&g).unwrap();
        assert!(matches!(
            PagedLog::from_bytes(bytes),
            Err(StorageError::BadVersion(1))
        ));
    }

    #[test]
    fn full_decode_of_v2_matches_v1_decode() {
        let g = sample();
        let v2 = decode_graph(&encode_graph_v2(&g).unwrap()).unwrap();
        assert_eq!(v2.visible_signature(), g.visible_signature());
    }
}
