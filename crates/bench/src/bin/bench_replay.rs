//! Replay a captured query log against any backend.
//!
//! The capture half lives in `lipstick-serve`: start a server with
//! `ServerConfig.query_log` (or `proql_serve --query-log PATH`) and
//! every statement lands in a JSONL file with a fingerprint of its
//! rendered result. This binary is the replay half: it re-executes the
//! events in capture order and checks byte-identity wherever the output
//! is data rather than measurement (`STATS` / `EXPLAIN ANALYZE` replay
//! but are not compared), then reports the latency histogram and cache
//! hit rate.
//!
//! Usage:
//!
//! ```sh
//! bench_replay --log capture.jsonl --open provenance.lpstk   # paged session
//! bench_replay --log capture.jsonl --load provenance.lpstk   # resident session
//! bench_replay --log capture.jsonl --append provenance.lpstk # append session (WAL tail)
//! bench_replay --log capture.jsonl --connect 127.0.0.1:7433  # running server
//! bench_replay --smoke                                       # self-contained end-to-end check
//! bench_replay ... --out BENCH_replay.json                   # also write the JSON report
//! ```
//!
//! `--smoke` needs no arguments: it generates a workload graph, serves
//! it with the query log enabled, drives a mixed workload (repeats for
//! cache hits, a mutation, a parse error), then replays the capture
//! against a *fresh* server on the same starting log and asserts every
//! comparable payload came back byte-identical. Both servers run the
//! **append** backend: the mutation commits as a durable tail record
//! on each side (never a promotion — a promoted session renders
//! resident-flavoured visited figures that can never be byte-identical
//! to an append replay), and the replay server starts from the sealed
//! base alone, so the captured mutation must be re-committed through
//! its own tail to reproduce the post-mutation payloads.

use std::path::{Path, PathBuf};

use lipstick_bench::replay::{replay, LocalTarget, ReplayReport, ReplayTarget};
use lipstick_bench::run_dealers;
use lipstick_proql::Session;
use lipstick_serve::qlog::{read_log, QueryLogConfig};
use lipstick_serve::{Client, Server, ServerConfig};
use lipstick_workflowgen::DealersParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out");

    let report = if args.iter().any(|a| a == "--smoke") {
        smoke()
    } else {
        let Some(log) = flag("--log") else {
            eprintln!(
                "usage: bench_replay --log FILE \
                 (--connect ADDR | --open LOG | --load LOG | --append LOG) \
                 [--out PATH] | bench_replay --smoke"
            );
            std::process::exit(2);
        };
        let events = read_log(Path::new(&log));
        if events.is_empty() {
            eprintln!("no events in {log}");
            std::process::exit(2);
        }
        eprintln!("replaying {} event(s) from {log}", events.len());
        let mut target: Box<dyn ReplayTarget> = match (
            flag("--connect"),
            flag("--open"),
            flag("--load"),
            flag("--append"),
        ) {
            (Some(addr), None, None, None) => {
                Box::new(Client::connect(addr.as_str()).expect("connect to server"))
            }
            (None, Some(path), None, None) => {
                Box::new(LocalTarget(Session::open(&path).expect("open paged log")))
            }
            (None, None, Some(path), None) => Box::new(LocalTarget(
                Session::load(&path).expect("load provenance log"),
            )),
            (None, None, None, Some(path)) => Box::new(LocalTarget(
                Session::open_append(&path).expect("open append log"),
            )),
            _ => {
                eprintln!(
                    "pick exactly one backend: --connect ADDR, --open LOG, --load LOG, \
                     or --append LOG"
                );
                std::process::exit(2);
            }
        };
        replay(&events, target.as_mut()).expect("replay transport failed")
    };

    print!("{}", report.render());
    if let Some(path) = out_path {
        std::fs::write(&path, report.to_json()).expect("write report");
        eprintln!("wrote {path}");
    }
    if !report.identical() {
        std::process::exit(1);
    }
}

/// Capture a workload on one server, replay it on a fresh one, and
/// assert byte-identity — the end-to-end check CI runs.
fn smoke() -> ReplayReport {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let log_path = tmp.join(format!("bench-replay-{pid}.lpstk"));
    let qlog_path = tmp.join(format!("bench-replay-{pid}.jsonl"));
    let _ = std::fs::remove_file(&qlog_path);

    let graph = run_dealers(
        &DealersParams {
            num_cars: 24,
            num_exec: 2,
            seed: 7,
        },
        true,
    )
    .graph
    .expect("tracking on");
    lipstick_storage::write_graph_v2(&graph, &log_path).expect("write v2 log");
    {
        // A stale tail from an aborted earlier run (pid reuse) would
        // replay into the append-backed replay server below.
        let mut stale = log_path.clone().into_os_string();
        stale.push(".tail");
        let _ = std::fs::remove_file(PathBuf::from(stale));
    }

    // -- capture --
    let workload = [
        "MATCH base-nodes",
        "MATCH base-nodes", // repeat: cache hit
        "match base-nodes", // same key after normalization: cache hit
        "COUNT(*) MATCH base-nodes",
        "MATCH m-nodes WHERE execution < 2",
        "ANCESTORS OF #5 DEPTH 3",
        "STATS",               // replays, but excluded from identity
        "TOTALLY NOT PROQL",   // parse errors are events too
        "DELETE #2 PROPAGATE", // tail-committed mutation: epoch bump, cache flush
        "MATCH base-nodes",    // post-mutation miss, then...
        "MATCH base-nodes",    // ...hit at the new epoch
        "EXPLAIN MATCH base-nodes UNION MATCH m-nodes",
    ];
    let capture = Server::new(
        Session::open_append(&log_path).expect("open for capture"),
        ServerConfig {
            workers: 2,
            cache_capacity: 64,
            query_log: Some(QueryLogConfig::new(&qlog_path)),
            trace_sample_every: 4,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .expect("serve capture");
    let mut client = Client::connect(capture.addr()).expect("connect capture");
    for stmt in &workload {
        client.query(stmt).expect("capture statement");
    }
    assert_eq!(
        capture.query_log_events(),
        workload.len() as u64,
        "every statement must be captured"
    );
    assert!(
        capture.slow_log_len() > 0,
        "1-in-4 trace sampling must retain traces even for fast reads"
    );
    drop(client);
    capture.shutdown();

    let events = read_log(&qlog_path);
    assert_eq!(events.len(), workload.len(), "capture file must parse back");
    let captured_hits = events.iter().filter(|e| e.cache_hit).count();
    assert!(captured_hits >= 3, "workload repeats must hit the cache");

    // -- replay against a fresh server on the same starting log --
    // Drop the capture's tail first: the replay server must start from
    // the sealed base alone and re-commit the captured mutation as its
    // *own* durable tail record to reproduce the post-mutation
    // payloads byte-for-byte.
    {
        let mut tail = log_path.clone().into_os_string();
        tail.push(".tail");
        std::fs::remove_file(PathBuf::from(tail)).expect("capture left a tail segment");
    }
    let replay_session = Session::open_append(&log_path).expect("open for replay");
    let fresh = Server::new(
        replay_session,
        ServerConfig {
            workers: 2,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .expect("serve replay");
    let mut target = Client::connect(fresh.addr()).expect("connect replay");
    let report = replay(&events, &mut target).expect("replay");
    drop(target);
    fresh.shutdown();
    let _ = std::fs::remove_file(&log_path);
    let mut tail_path = log_path.into_os_string();
    tail_path.push(".tail");
    let _ = std::fs::remove_file(PathBuf::from(tail_path));
    cleanup_qlog(&qlog_path);

    assert!(
        report.identical(),
        "replay must be byte-identical: {}",
        report.render()
    );
    assert!(
        report.replay_cache_hits >= 3,
        "replay must reproduce the cache hits"
    );
    eprintln!("smoke: capture/replay round trip byte-identical");
    report
}

/// Remove the capture file and any rotated generations beside it.
fn cleanup_qlog(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for generation in 0..16u64 {
        let mut archived = path.as_os_str().to_os_string();
        archived.push(format!(".{generation}"));
        let _ = std::fs::remove_file(PathBuf::from(archived));
    }
}
