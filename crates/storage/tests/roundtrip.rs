//! Round-trip and corruption-robustness tests for the provenance log,
//! over graphs exercising every structural feature: tombstones from
//! deletion propagation, aggregation (op + ⊗ tensor + const v-nodes),
//! black boxes, multi-invocation workflows, and zoom cycles.

use lipstick_core::agg::AggOp;
use lipstick_core::graph::tracker::AggItemValue;
use lipstick_core::graph::{GraphTracker, Tracker};
use lipstick_core::query::{propagate_deletion_inplace, zoom_in, zoom_out};
use lipstick_core::{NodeKind, ProvGraph};
use lipstick_nrel::Value;
use lipstick_storage::{decode_graph, encode_graph, StorageError};

/// Two executions of a stateful module with joins, groups, aggregates,
/// and a black box, feeding an aggregator module.
fn workflow_graph() -> ProvGraph {
    let mut t = GraphTracker::new();
    let c2 = t.base("C2");
    let c3 = t.base("C3");
    let mut outputs = Vec::new();
    for exec in 0..2 {
        let wi = t.workflow_input(&format!("I{exec}"));
        t.begin_invocation("Mdealer1", exec);
        let i = t.module_input(wi);
        let s2 = t.state_node(c2);
        let s3 = t.state_node(c3);
        let join = t.times(&[i, s2]);
        let grp = t.delta(&[join, s3]);
        let agg = t.agg(
            AggOp::Sum,
            &[
                (join, AggItemValue::Const(Value::Int(3))),
                (s3, AggItemValue::Const(Value::Float(2.5))),
            ],
        );
        let bb = t.blackbox("CalcBid", &[grp, agg], true);
        let proj = t.plus(&[grp]);
        let o = t.module_output(proj, &[bb]);
        t.end_invocation();
        outputs.push(o);
    }
    t.begin_invocation("Magg", 0);
    let i1 = t.module_input(outputs[0]);
    let i2 = t.module_input(outputs[1]);
    let best = t.plus(&[i1, i2]);
    t.module_output(best, &[]);
    t.end_invocation();
    t.finish()
}

#[test]
fn full_workflow_graph_round_trips_exactly() {
    let g = workflow_graph();
    let bytes = encode_graph(&g).unwrap();
    let g2 = decode_graph(&bytes).unwrap();
    assert_eq!(g.visible_signature(), g2.visible_signature());
    assert_eq!(g.len(), g2.len());
    assert_eq!(g.invocations().len(), g2.invocations().len());
    for (a, b) in g.invocations().iter().zip(g2.invocations()) {
        assert_eq!(a.module, b.module);
        assert_eq!(a.execution, b.execution);
        assert_eq!(a.m_node, b.m_node);
    }
}

#[test]
fn tombstoned_graph_round_trips() {
    let mut g = workflow_graph();
    // Tombstone a whole cascade, not just one node.
    let victim = g
        .iter_visible()
        .find(|(_, n)| matches!(&n.kind, NodeKind::BaseTuple { token } if token.as_str() == "C2"))
        .map(|(id, _)| id)
        .unwrap();
    let report = propagate_deletion_inplace(&mut g, victim).unwrap();
    assert!(report.deleted.len() > 1, "deletion cascaded");
    let bytes = encode_graph(&g).unwrap();
    let g2 = decode_graph(&bytes).unwrap();
    assert_eq!(g.visible_signature(), g2.visible_signature());
    for &dead in &report.deleted {
        assert!(g2.node(dead).is_deleted(), "{dead} stays tombstoned");
    }
}

#[test]
fn aggregate_values_survive_round_trip() {
    let g = workflow_graph();
    let bytes = encode_graph(&g).unwrap();
    let g2 = decode_graph(&bytes).unwrap();
    let aggs: Vec<_> = g
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::AggResult { .. }))
        .map(|(id, _)| id)
        .collect();
    assert!(!aggs.is_empty());
    for id in aggs {
        let before = g.agg_value_of(id).unwrap();
        let after = g2.agg_value_of(id).unwrap();
        assert_eq!(before.op, after.op);
        assert_eq!(before.current_value(), after.current_value());
    }
}

#[test]
fn black_boxes_survive_round_trip() {
    let g = workflow_graph();
    let bytes = encode_graph(&g).unwrap();
    let g2 = decode_graph(&bytes).unwrap();
    let bbs: Vec<_> = g2
        .iter_visible()
        .filter_map(|(id, n)| match &n.kind {
            NodeKind::BlackBox { name, is_value } => Some((id, name.clone(), *is_value)),
            _ => None,
        })
        .collect();
    assert_eq!(bbs.len(), 2, "one CalcBid per dealer invocation");
    for (id, name, is_value) in bbs {
        assert_eq!(name, "CalcBid");
        assert!(is_value);
        assert_eq!(g.expr_of(id).to_string(), g2.expr_of(id).to_string());
    }
}

#[test]
fn zoom_cycle_then_round_trip_preserves_roles() {
    // Zoom state itself is not persistable (by design), but a graph
    // that went through a full ZoomOut/ZoomIn cycle must still encode,
    // and the loaded copy must still support zooming.
    let mut g = workflow_graph();
    let before = g.visible_signature();
    zoom_out(&mut g, &["Mdealer1"]).unwrap();
    zoom_in(&mut g, &["Mdealer1"]).unwrap();
    assert_eq!(g.visible_signature(), before);
    let bytes = encode_graph(&g).unwrap();
    let g2 = decode_graph(&bytes).unwrap();
    assert_eq!(g2.visible_signature(), before);
    let mut g3 = g2.clone();
    let created = zoom_out(&mut g3, &["Magg"]).unwrap();
    assert_eq!(created.len(), 1, "one composite per Magg invocation");
    assert_ne!(g3.visible_signature(), before, "roles survived the trip");
}

#[test]
fn every_truncation_errors_without_panicking() {
    let g = workflow_graph();
    let bytes = encode_graph(&g).unwrap();
    for cut in 0..bytes.len() {
        assert!(
            decode_graph(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must be rejected"
        );
    }
}

#[test]
fn bad_magic_and_bad_version_are_rejected() {
    assert!(matches!(decode_graph(b""), Err(StorageError::BadMagic)));
    assert!(matches!(
        decode_graph(b"WRONG\x01\x00"),
        Err(StorageError::BadMagic)
    ));
    let mut bytes = encode_graph(&workflow_graph()).unwrap();
    bytes[5] = 0xFF;
    assert!(matches!(
        decode_graph(&bytes),
        Err(StorageError::BadVersion(0xFF))
    ));
}

#[test]
fn flipped_payload_bytes_never_panic() {
    // Corruption beyond truncation: flip each byte in turn. Decoding
    // may legitimately succeed (e.g. a changed token character), but it
    // must never panic.
    let g = workflow_graph();
    let bytes = encode_graph(&g).unwrap();
    for i in 6..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x55;
        let _ = decode_graph(&mutated);
    }
}
