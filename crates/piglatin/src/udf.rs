//! User-defined functions (black boxes).
//!
//! "It may not be possible to completely expose the functionality of a
//! module using Pig Latin … In this case, coarse-grained provenance must
//! be assumed for the UDF portion" (§1). A UDF is an opaque Rust
//! closure; the engine records a black-box provenance node over the
//! UDF's inputs, exactly as the paper prescribes for `CalcBid`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use lipstick_nrel::{Schema, Value};

use crate::error::{PigError, Result};

/// The UDF implementation signature: values in, one value out (commonly
/// a [`lipstick_nrel::Bag`] that the caller FLATTENs).
pub type UdfFn = dyn Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync;

/// A registered UDF.
pub struct UdfDef {
    /// Name used in Pig Latin scripts (case-sensitive).
    pub name: String,
    /// If true the black-box node is a v-node (the UDF computes a value
    /// embedded in tuples, like `CalcBid`'s bid amount); if false it is
    /// a p-node (the UDF derives tuples).
    pub returns_value: bool,
    /// Schema of the tuples inside a returned bag, used by the planner
    /// to type `FLATTEN(udf(…))` output.
    pub output_schema: Option<Schema>,
    func: Box<UdfFn>,
}

impl UdfDef {
    /// Invoke the UDF.
    pub fn call(&self, args: &[Value]) -> Result<Value> {
        (self.func)(args).map_err(|message| PigError::Udf {
            name: self.name.clone(),
            message,
        })
    }
}

impl fmt::Debug for UdfDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdfDef")
            .field("name", &self.name)
            .field("returns_value", &self.returns_value)
            .field("output_schema", &self.output_schema)
            .finish_non_exhaustive()
    }
}

/// Registry of UDFs available to a program.
#[derive(Debug, Default)]
pub struct UdfRegistry {
    map: HashMap<String, Arc<UdfDef>>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        UdfRegistry::default()
    }

    /// Register a UDF. Re-registering a name replaces the previous
    /// definition.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        returns_value: bool,
        output_schema: Option<Schema>,
        func: impl Fn(&[Value]) -> std::result::Result<Value, String> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.map.insert(
            name.clone(),
            Arc::new(UdfDef {
                name,
                returns_value,
                output_schema,
                func: Box::new(func),
            }),
        );
    }

    /// Look up a UDF by name.
    pub fn get(&self, name: &str) -> Result<&Arc<UdfDef>> {
        self.map
            .get(name)
            .ok_or_else(|| PigError::UnknownUdf(name.to_string()))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.map.keys().map(String::as_str).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_nrel::{bag, tuple, DataType};

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register("Double", true, None, |args| {
            let v = args[0].as_f64().map_err(|e| e.to_string())?;
            Ok(Value::Float(v * 2.0))
        });
        let udf = reg.get("Double").unwrap();
        assert_eq!(udf.call(&[Value::Int(4)]).unwrap(), Value::Float(8.0));
    }

    #[test]
    fn udf_errors_are_wrapped() {
        let mut reg = UdfRegistry::new();
        reg.register("Boom", false, None, |_| Err("kaput".to_string()));
        let err = reg.get("Boom").unwrap().call(&[]).unwrap_err();
        assert!(matches!(err, PigError::Udf { ref name, .. } if name == "Boom"));
        assert!(err.to_string().contains("kaput"));
    }

    #[test]
    fn unknown_udf() {
        let reg = UdfRegistry::new();
        assert!(matches!(
            reg.get("Nope"),
            Err(PigError::UnknownUdf(ref n)) if n == "Nope"
        ));
    }

    #[test]
    fn declared_schema_is_preserved() {
        let mut reg = UdfRegistry::new();
        let schema = Schema::named(&[("BidId", DataType::Str), ("Amount", DataType::Float)]);
        reg.register("CalcBid", true, Some(schema.clone()), |_| {
            Ok(Value::Bag(bag![tuple!["B1", 20_000.0f64]]))
        });
        assert_eq!(
            reg.get("CalcBid").unwrap().output_schema.as_ref(),
            Some(&schema)
        );
    }

    #[test]
    fn names_are_sorted() {
        let mut reg = UdfRegistry::new();
        reg.register("b", true, None, |_| Ok(Value::Null));
        reg.register("a", true, None, |_| Ok(Value::Null));
        assert_eq!(reg.names(), vec!["a", "b"]);
    }
}
