//! What-if analytics on the dealership workflow (paper §4.2-4.3):
//! deletion propagation and ZoomIn/ZoomOut on a real execution's graph.
//!
//! Reproduces Examples 4.3-4.5 programmatically: deleting a car from a
//! dealer's lot, deleting the user's request, and checking whether the
//! bid's existence depends on each.
//!
//! ```sh
//! cargo run --example what_if
//! ```

use lipstick::core::query::{depends_on, propagate_deletion, zoom_in, zoom_out};
use lipstick::core::{GraphTracker, NodeKind};
use lipstick::prelude::stats;
use lipstick::workflowgen::dealers::{self, DealersParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = DealersParams {
        num_cars: 48,
        num_exec: 2,
        seed: 12,
    };
    let mut tracker = GraphTracker::new();
    let (_, _, _outcome) = dealers::run_declining(&params, &mut tracker)?;
    let graph = tracker.finish();
    println!("graph after 2 executions: {}", stats(&graph));

    let find_token = |prefix: &str| {
        graph.iter_visible().find_map(|(id, n)| match &n.kind {
            NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token }
                if token.as_str().starts_with(prefix) =>
            {
                Some((id, token.to_string()))
            }
            _ => None,
        })
    };
    let some_output = graph
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .last()
        .expect("outputs exist");

    // Example 4.3: delete a car from dealer 1's lot.
    let (car, car_token) = find_token("C1.").expect("dealer 1 has cars");
    let (g2, report) = propagate_deletion(&graph, car)?;
    println!(
        "\nExample 4.3 — delete {car_token}: {} nodes removed ({} remain visible)",
        report.deleted.len(),
        g2.visible_count()
    );

    // Example 4.4: delete the first bid request: everything downstream
    // dies, state and invocations survive.
    let (req, req_token) = find_token("I0.Mreq").expect("a request exists");
    let (g3, report) = propagate_deletion(&graph, req)?;
    let surviving_state = g3
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::BaseTuple { .. }))
        .count();
    println!(
        "Example 4.4 — delete {req_token}: {} nodes removed, {} state tuples survive",
        report.deleted.len(),
        surviving_state
    );

    // Example 4.5: dependency queries.
    println!(
        "\nExample 4.5 — does the last output depend on {car_token}? {}",
        depends_on(&graph, some_output, car)?
    );
    println!(
        "              does it depend on the request {req_token}? {}",
        depends_on(&graph, some_output, req)?
    );

    // §4.1: zoom out of everything ⇒ the coarse-grained view; zoom back
    // in ⇒ the exact original graph.
    let mut g = graph.clone();
    let before = g.visible_signature();
    let modules: Vec<String> = (1..=4).map(|k| format!("Mdealer{k}")).collect();
    let mut all: Vec<&str> = modules.iter().map(String::as_str).collect();
    all.extend(["Mreq", "Mand", "Magg", "Mchoice", "Mxor", "Mcar"]);
    zoom_out(&mut g, &all)?;
    println!(
        "\nZoomOut(all modules): {} visible nodes (coarse-grained view)",
        g.visible_count()
    );
    zoom_in(&mut g, &all)?;
    assert_eq!(g.visible_signature(), before);
    println!("ZoomIn restores the fine-grained graph exactly ✓");
    Ok(())
}
