//! Machine-readable reach-index benchmarks.
//!
//! Writes `BENCH_reach.json` so the perf trajectory of the
//! bidirectional, incrementally-maintained reach index is tracked
//! across PRs:
//!
//! - `build`: time to build the bidirectional closure on a ≥10k-node
//!   dealers graph, and its memory footprint;
//! - `ancestor_query`: indexed upward lookups vs the BFS they replace
//!   (the paper's Figure 7 ancestor workload), on the largest ancestor
//!   cones in the graph;
//! - `incremental_repair`: in-place repair after a small
//!   `DELETE PROPAGATE` cone vs the full rebuild it replaces;
//! - `union_parallel`: a 4-branch `UNION` of unbounded descendant
//!   walks, 1 worker thread vs N (on a single-core host parity is
//!   expected — `host_threads` records the hardware so readers can
//!   interpret the figure);
//! - `heap`: exact heap-byte breakdowns (closure rows, CSR, postings,
//!   resident graph) from the `HeapSize` accounting, so index memory
//!   regressions are as visible as time regressions.
//!
//! Usage: `bench_reach [--smoke] [--out PATH]`. `--smoke` runs one
//! iteration of everything (CI keeps it in the build to catch rot);
//! the default run uses enough iterations for stable medians.

use std::time::Instant;

use lipstick_bench::{run_dealers, top_nodes_by};
use lipstick_core::obs::HeapSize;
use lipstick_core::query::{ancestors_bounded, propagate_deletion_inplace, ReachIndex};
use lipstick_core::{NodeId, ProvGraph};
use lipstick_proql::{Parallelism, Session};
use lipstick_workflowgen::DealersParams;

/// Median wall-clock of `reps` runs of `f`, in nanoseconds.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut samples: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn dealers_graph_of_at_least(nodes: usize) -> ProvGraph {
    let mut num_exec = 10;
    loop {
        let g = run_dealers(
            &DealersParams {
                num_cars: 200,
                num_exec,
                seed: 1_000_003,
            },
            true,
        )
        .graph
        .expect("tracking on");
        if g.len() >= nodes || num_exec >= 320 {
            assert!(g.len() >= nodes, "workload too small: {} nodes", g.len());
            return g;
        }
        num_exec *= 2;
    }
}

/// A base node with a small, non-empty deletion cone: the incremental
/// repair's advertised case (a targeted what-if delete, not a graph
/// teardown).
fn small_delete_victim(g: &ProvGraph, index: &ReachIndex) -> NodeId {
    g.iter_visible()
        .map(|(id, _)| id)
        .filter(|id| index.descendant_count(*id) > 0)
        .min_by_key(|id| index.descendant_count(*id))
        .expect("graph has internal nodes")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_reach.json".to_string());
    let reps = if smoke { 1 } else { 15 };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- build ----
    let g = dealers_graph_of_at_least(10_000);
    eprintln!("graph: {} nodes, {} visible", g.len(), g.visible_count());
    let build_ns = median_ns(reps, || ReachIndex::build(&g));
    let index = ReachIndex::build(&g);
    let memory_bytes = index.memory_bytes();
    eprintln!(
        "build: {:.2} ms, {:.1} MiB",
        build_ns as f64 / 1e6,
        memory_bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- ancestor queries: BFS vs indexed ----
    // Deepest nodes (largest ancestor cones): the worst case for the
    // upward direction the old index could not serve.
    let roots = top_nodes_by(&g, 8, |id| index.ancestor_count(id));
    let bfs_ns = median_ns(reps, || {
        roots
            .iter()
            .map(|&r| ancestors_bounded(&g, r, None).expect("visible").len())
            .sum::<usize>()
    });
    let indexed_ns = median_ns(reps, || {
        roots
            .iter()
            .map(|&r| index.ancestors(r).len())
            .sum::<usize>()
    });
    // Same answers, by construction — belt and braces before timing
    // claims go into a tracked artifact.
    for &r in &roots {
        assert_eq!(
            ancestors_bounded(&g, r, None).unwrap().nodes,
            index.ancestors(r),
            "indexed ancestors must equal BFS for {r}"
        );
    }
    let ancestor_speedup = bfs_ns as f64 / indexed_ns.max(1) as f64;
    eprintln!(
        "ancestors (8 deepest roots): bfs {:.1} µs, indexed {:.1} µs, speedup {ancestor_speedup:.1}×",
        bfs_ns as f64 / 1e3,
        indexed_ns as f64 / 1e3
    );

    // The indexed plan is what EXPLAIN promises; record the plan line
    // alongside the numbers it justifies.
    let mut session = Session::new(g.clone());
    session.run_one("BUILD INDEX").unwrap();
    let explain = session
        .explain(&format!("ANCESTORS OF #{}", roots[0].0))
        .unwrap();
    assert!(
        explain.contains("reach-index lookup") && explain.contains("ancestor closure"),
        "EXPLAIN must report an index-served ancestor plan, got: {explain}"
    );

    // ---- incremental repair vs full rebuild after a small delete ----
    let victim = small_delete_victim(&g, &index);
    let mut deleted_graph = g.clone();
    let report = propagate_deletion_inplace(&mut deleted_graph, victim).expect("visible victim");
    eprintln!(
        "delete victim #{}: cone of {} node(s)",
        victim.0,
        report.deleted.len()
    );
    // Repair is idempotent (it recomputes the affected region from the
    // post-mutation graph), so re-running it on the repaired index does
    // the same work as the first repair — which keeps the 30 MiB index
    // clone out of the timed region.
    let mut repaired = index.clone();
    let repair_ns = median_ns(reps, || repaired.repair(&deleted_graph, &report.deleted));
    let rebuild_ns = median_ns(reps, || ReachIndex::build(&deleted_graph));
    assert!(
        repaired.matches_fresh_build(&deleted_graph),
        "repair must be bit-identical to a rebuild"
    );
    let repair_speedup = rebuild_ns as f64 / repair_ns.max(1) as f64;
    eprintln!(
        "repair {:.2} ms vs rebuild {:.2} ms, speedup {repair_speedup:.1}×",
        repair_ns as f64 / 1e6,
        rebuild_ns as f64 / 1e6
    );

    // ---- 4-branch UNION, 1 thread vs N ----
    // Unindexed sessions, so each branch is a real BFS; a larger graph
    // makes every branch outweigh the thread hand-off.
    let big = if smoke {
        g.clone()
    } else {
        dealers_graph_of_at_least(40_000)
    };
    // Roots with the largest descendant cones, so each branch's BFS is
    // real work rather than a few-node hop (a throwaway index is only
    // used to find them; the benched sessions stay unindexed).
    let union_roots = {
        let idx = ReachIndex::build(&big);
        top_nodes_by(&big, 4, |id| idx.descendant_count(id))
    };
    let union_stmt = union_roots
        .iter()
        .map(|r| format!("DESCENDANTS OF #{}", r.0))
        .collect::<Vec<_>>()
        .join(" UNION ");
    let union_threads = host_threads.clamp(2, 4);
    let mut seq = Session::new(big.clone());
    seq.set_parallelism_policy(Parallelism::SEQUENTIAL);
    let mut par = Session::new(big.clone());
    par.set_parallelism_policy(Parallelism {
        threads: union_threads,
        min_nodes: 0,
    });
    let expected = seq.run_one(&union_stmt).unwrap().to_string();
    assert_eq!(
        expected,
        par.run_one(&union_stmt).unwrap().to_string(),
        "parallel UNION must be byte-identical to sequential"
    );
    let t1_ns = median_ns(reps, || seq.run_one(&union_stmt).unwrap());
    let tn_ns = median_ns(reps, || par.run_one(&union_stmt).unwrap());
    let union_speedup = t1_ns as f64 / tn_ns.max(1) as f64;
    eprintln!(
        "4-branch UNION on {} nodes: 1 thread {:.2} ms, {union_threads} threads {:.2} ms, \
         speedup {union_speedup:.2}× (host has {host_threads} core(s))",
        big.len(),
        t1_ns as f64 / 1e6,
        tn_ns as f64 / 1e6
    );

    // ---- heap-byte breakdowns ----
    // The same `HeapSize` accounting behind `STATS` and the
    // `lipstick_*_heap_bytes` gauges, recorded per component: closure
    // rows from the reach index, CSR + postings from the v2 footer
    // index of the same graph, and the resident graph itself.
    let reach_heap = index.heap_breakdown();
    let graph_heap_bytes = g.heap_bytes();
    let log_index_heap = {
        let path = std::env::temp_dir().join(format!("bench-reach-{}.lpstk", std::process::id()));
        lipstick_storage::write_graph_v2(&g, &path).expect("write v2 log");
        let paged = lipstick_storage::PagedLog::open(&path).expect("open v2 log");
        let breakdown = paged.index().heap_breakdown();
        std::fs::remove_file(&path).ok();
        breakdown
    };
    let render_components = |components: &[(&'static str, usize)]| {
        components
            .iter()
            .map(|(name, bytes)| format!("\"{name}\": {bytes}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    eprintln!(
        "heap: reach {:.1} MiB, graph {:.1} MiB, log index {:.1} MiB",
        reach_heap.iter().map(|(_, b)| b).sum::<usize>() as f64 / (1024.0 * 1024.0),
        graph_heap_bytes as f64 / (1024.0 * 1024.0),
        log_index_heap.iter().map(|(_, b)| b).sum::<usize>() as f64 / (1024.0 * 1024.0),
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"host_threads\": {host_threads},\n  \
         \"graph_nodes\": {graph_nodes},\n  \
         \"build\": {{ \"ms\": {build_ms:.3}, \"memory_bytes\": {memory_bytes} }},\n  \
         \"ancestor_query\": {{ \"roots\": {nroots}, \"bfs_us\": {bfs_us:.1}, \
         \"indexed_us\": {indexed_us:.1}, \"speedup\": {ancestor_speedup:.2} }},\n  \
         \"incremental_repair\": {{ \"deleted_cone\": {cone}, \"repair_ms\": {repair_ms:.3}, \
         \"rebuild_ms\": {rebuild_ms:.3}, \"speedup\": {repair_speedup:.2} }},\n  \
         \"union_parallel\": {{ \"graph_nodes\": {union_nodes}, \"branches\": 4, \
         \"threads\": {union_threads}, \"t1_ms\": {t1_ms:.3}, \"tn_ms\": {tn_ms:.3}, \
         \"speedup\": {union_speedup:.2} }},\n  \
         \"heap\": {{ \"reach\": {{ {reach_heap_json} }}, \"graph_bytes\": {graph_heap_bytes}, \
         \"log_index\": {{ {log_index_json} }} }}\n}}\n",
        graph_nodes = g.len(),
        build_ms = build_ns as f64 / 1e6,
        nroots = roots.len(),
        bfs_us = bfs_ns as f64 / 1e3,
        indexed_us = indexed_ns as f64 / 1e3,
        cone = report.deleted.len(),
        repair_ms = repair_ns as f64 / 1e6,
        rebuild_ms = rebuild_ns as f64 / 1e6,
        union_nodes = big.len(),
        t1_ms = t1_ns as f64 / 1e6,
        tn_ms = tn_ns as f64 / 1e6,
        reach_heap_json = render_components(&reach_heap),
        log_index_json = render_components(&log_index_heap),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_reach.json");
    eprintln!("wrote {out_path}");
    print!("{json}");

    if !smoke {
        // The headline claims this artifact exists to track. The union
        // speedup is only asserted when the host can physically provide
        // one (a single-core container runs at parity by definition).
        assert!(
            ancestor_speedup >= 5.0,
            "indexed ancestors must be ≥5× BFS (got {ancestor_speedup:.2}×)"
        );
        assert!(
            repair_speedup > 1.0,
            "incremental repair must beat a full rebuild (got {repair_speedup:.2}×)"
        );
        if host_threads > 1 {
            assert!(
                union_speedup > 1.1,
                "multi-thread UNION must show a measurable speedup (got {union_speedup:.2}×)"
            );
        }
    }
}
