//! The provenance graph (paper §3).
//!
//! A [`ProvGraph`] is an arena of [`Node`]s with bidirectional adjacency.
//! Edges point from ingredients to results, matching the paper's figures
//! (`t₁ → + ← t₂`). The graph records both *provenance* structure
//! (p-nodes: tokens, +, ·, δ, module input/output/state, invocations)
//! and *values* (v-nodes: constants, ⊗ tensors, aggregate results,
//! black-box values) — the mixed representation required for aggregation
//! provenance.
//!
//! Construction goes through the [`Tracker`] trait so that the Pig Latin
//! evaluator and the workflow executor can run with provenance capture
//! ([`GraphTracker`]) or without ([`NoTracker`]) — the two arms of the
//! paper's Figure 5 experiments.

pub mod bitset;
pub mod dot;
pub mod node;
pub mod shard;
pub mod stats;
pub mod tracker;
pub mod validate;

pub use bitset::BitSet;
pub use node::{InvocationId, Node, NodeId, NodeKind, Role, RETIRED_STASH};
pub use shard::ShardTracker;
pub use tracker::{GraphTracker, NoTracker, Tracker};

use lipstick_nrel::Value;

use crate::agg::AggOp;
use crate::semiring::{ProvExpr, Token};

/// Information about one module invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationInfo {
    /// Module name (`LV(v)` in the paper; e.g. `Mdealer1`).
    pub module: String,
    /// Which workflow execution of the sequence this invocation belongs
    /// to (`E0, E1, …`).
    pub execution: u32,
    /// The invocation's `m` node.
    pub m_node: NodeId,
}

/// Stash of a zoomed-out module: everything ZoomOut hid, so ZoomIn can
/// restore it exactly.
#[derive(Debug, Clone)]
pub struct ZoomStash {
    /// Module name this stash belongs to.
    pub module: String,
    /// Nodes hidden by the ZoomOut.
    pub hidden: Vec<NodeId>,
    /// Composite zoom nodes created by the ZoomOut.
    pub zoom_nodes: Vec<NodeId>,
}

/// Canonical visible-graph signature: sorted labelled nodes plus
/// sorted visible edges (see [`ProvGraph::visible_signature`]).
pub type VisibleSignature = (Vec<(NodeId, String)>, Vec<(NodeId, NodeId)>);

/// The provenance graph.
#[derive(Debug, Clone, Default)]
pub struct ProvGraph {
    nodes: Vec<Node>,
    invocations: Vec<InvocationInfo>,
    stashes: Vec<ZoomStash>,
    /// Module names currently zoomed out → stash index.
    zoomed_modules: std::collections::HashMap<String, u32>,
}

impl ProvGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    /// Number of nodes ever allocated (including hidden/deleted).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no nodes were ever allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of currently visible nodes.
    pub fn visible_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_visible()).count()
    }

    /// Number of edges between visible nodes.
    pub fn visible_edge_count(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_visible())
            .map(|(_, n)| {
                n.succs
                    .iter()
                    .filter(|s| self.node(**s).is_visible())
                    .count()
            })
            .sum()
    }

    /// Access a node (panics on out-of-range id — ids are only minted by
    /// this graph, so an invalid id is a logic error).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Restore a tombstone flag (used by the storage loader).
    pub fn set_node_deleted(&mut self, id: NodeId, deleted: bool) {
        self.nodes[id.index()].deleted = deleted;
    }

    /// Iterate over `(id, node)` for all allocated nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate over visible nodes only.
    pub fn iter_visible(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.iter().filter(|(_, n)| n.is_visible())
    }

    /// The invocation table.
    pub fn invocations(&self) -> &[InvocationInfo] {
        &self.invocations
    }

    /// Invocation metadata.
    pub fn invocation(&self, id: InvocationId) -> &InvocationInfo {
        &self.invocations[id.index()]
    }

    /// Ids of all invocations of the given module.
    pub fn invocations_of(&self, module: &str) -> Vec<InvocationId> {
        self.invocations
            .iter()
            .enumerate()
            .filter(|(_, info)| info.module == module)
            .map(|(i, _)| InvocationId(i as u32))
            .collect()
    }

    /// Module names currently zoomed out, in zoom (stash) order — a
    /// deterministic order, so statements that enumerate them (`ZOOM
    /// IN` of everything) behave identically across runs and backends.
    pub fn zoomed_out_modules(&self) -> Vec<&str> {
        let mut mods: Vec<(u32, &str)> = self
            .zoomed_modules
            .iter()
            .map(|(m, &idx)| (idx, m.as_str()))
            .collect();
        mods.sort_unstable_by_key(|&(idx, _)| idx);
        mods.into_iter().map(|(_, m)| m).collect()
    }

    /// The stash behind a [`NodeKind::Zoomed`] node: what ZoomOut hid.
    pub fn stash(&self, idx: u32) -> &ZoomStash {
        &self.stashes[idx as usize]
    }

    /// The stash of a currently zoomed-out module, if any — what a
    /// `ZOOM IN` of that module would restore. Callers maintaining
    /// derived state (the reach index) read it to learn exactly which
    /// nodes a zoom touched.
    pub fn stash_of(&self, module: &str) -> Option<&ZoomStash> {
        self.zoomed_modules
            .get(module)
            .map(|&idx| &self.stashes[idx as usize])
    }

    pub(crate) fn stash_count(&self) -> usize {
        self.stashes.len()
    }

    pub(crate) fn push_stash(&mut self, stash: ZoomStash) -> u32 {
        let idx = self.stashes.len() as u32;
        self.zoomed_modules.insert(stash.module.clone(), idx);
        self.stashes.push(stash);
        idx
    }

    pub(crate) fn take_stash(&mut self, module: &str) -> Option<ZoomStash> {
        let idx = self.zoomed_modules.remove(module)?;
        // Leave a hollow entry so other stash indices stay stable.
        let hollow = ZoomStash {
            module: String::new(),
            hidden: Vec::new(),
            zoom_nodes: Vec::new(),
        };
        Some(std::mem::replace(&mut self.stashes[idx as usize], hollow))
    }

    // ----- construction -----

    /// Allocate a node.
    pub fn add_node(&mut self, kind: NodeKind, role: Role) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(kind, role));
        id
    }

    /// Add an edge ingredient → result.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        debug_assert_ne!(from, to, "self-loop in provenance graph");
        self.nodes[from.index()].succs.push(to);
        self.nodes[to.index()].preds.push(from);
    }

    /// Register an invocation whose `m` node already exists (used when
    /// absorbing shard graphs and when restoring persisted graphs).
    pub fn register_invocation(
        &mut self,
        module: String,
        execution: u32,
        m_node: NodeId,
    ) -> InvocationId {
        let id = InvocationId(self.invocations.len() as u32);
        self.invocations.push(InvocationInfo {
            module,
            execution,
            m_node,
        });
        id
    }

    pub(crate) fn push_invocation_raw(&mut self, module: String, execution: u32, m_node: NodeId) {
        self.register_invocation(module, execution, m_node);
    }

    /// Register an invocation and create its `m` node.
    pub fn add_invocation(&mut self, module: &str, execution: u32) -> (InvocationId, NodeId) {
        let inv = InvocationId(self.invocations.len() as u32);
        let m_node = self.add_node(NodeKind::Invocation, Role::Invocation(inv));
        self.invocations.push(InvocationInfo {
            module: module.to_string(),
            execution,
            m_node,
        });
        (inv, m_node)
    }

    /// Disconnect a node from all neighbours and tombstone it. Used by
    /// ZoomIn to retire composite zoom nodes.
    pub(crate) fn unlink_and_delete(&mut self, id: NodeId) {
        let preds = std::mem::take(&mut self.nodes[id.index()].preds);
        for p in preds {
            self.nodes[p.index()].succs.retain(|s| *s != id);
        }
        let succs = std::mem::take(&mut self.nodes[id.index()].succs);
        for s in succs {
            self.nodes[s.index()].preds.retain(|p| *p != id);
        }
        self.nodes[id.index()].deleted = true;
    }

    // ----- expression extraction -----

    /// Extract the symbolic provenance expression rooted at a p-node,
    /// following only p-node ingredients (v-nodes contribute to values,
    /// not to tuple provenance).
    ///
    /// Invocation nodes appear as opaque tokens `⟨module#k⟩`, black-box
    /// p-nodes as the product of their inputs (coarse-grained, as the
    /// paper prescribes for UDFs).
    pub fn expr_of(&self, id: NodeId) -> ProvExpr {
        let mut memo: std::collections::HashMap<NodeId, ProvExpr> =
            std::collections::HashMap::new();
        self.expr_rec(id, &mut memo)
    }

    fn expr_rec(
        &self,
        id: NodeId,
        memo: &mut std::collections::HashMap<NodeId, ProvExpr>,
    ) -> ProvExpr {
        if let Some(e) = memo.get(&id) {
            return e.clone();
        }
        let node = self.node(id);
        let pred_exprs = |this: &Self, memo: &mut std::collections::HashMap<NodeId, ProvExpr>| {
            node.preds
                .iter()
                .filter(|p| {
                    let pn = this.node(**p);
                    // Hidden/deleted ingredients no longer contribute, and
                    // v-nodes contribute to values rather than to tuple
                    // provenance.
                    pn.is_visible() && !pn.kind.is_value_node()
                })
                .map(|p| this.expr_rec(*p, memo))
                .collect::<Vec<_>>()
        };
        let expr = match &node.kind {
            NodeKind::WorkflowInput { token } | NodeKind::BaseTuple { token } => {
                ProvExpr::Tok(token.clone())
            }
            NodeKind::Invocation => {
                let inv = node.role.invocation().expect("invocation node has inv");
                let info = self.invocation(inv);
                ProvExpr::Tok(Token::new(format!("⟨{}#{}⟩", info.module, info.execution)))
            }
            NodeKind::Plus => ProvExpr::sum(pred_exprs(self, memo)),
            NodeKind::Times
            | NodeKind::ModuleInput
            | NodeKind::ModuleOutput
            | NodeKind::StateUnit
            | NodeKind::Zoomed { .. }
            | NodeKind::BlackBox { .. } => ProvExpr::prod(pred_exprs(self, memo)),
            NodeKind::Delta => ProvExpr::delta(ProvExpr::sum(pred_exprs(self, memo))),
            // v-nodes have no tuple provenance of their own.
            NodeKind::AggResult { .. } | NodeKind::Tensor | NodeKind::Const { .. } => ProvExpr::One,
        };
        memo.insert(id, expr.clone());
        expr
    }

    /// Reconstruct the [`crate::agg::AggValue`] formal sum recorded at an
    /// aggregate v-node: each ⊗ ingredient contributes one `t ⊗ v` term.
    pub fn agg_value_of(&self, id: NodeId) -> Option<crate::agg::AggValue> {
        let node = self.node(id);
        let NodeKind::AggResult { op } = node.kind else {
            return None;
        };
        let mut terms = Vec::new();
        for &t in &node.preds {
            let tensor = self.node(t);
            if !matches!(tensor.kind, NodeKind::Tensor) {
                continue;
            }
            let mut prov = ProvExpr::One;
            let mut value = None;
            for &ing in &tensor.preds {
                match &self.node(ing).kind {
                    NodeKind::Const { value: v } => value = Some(v.clone()),
                    _ => prov = self.expr_of(ing),
                }
            }
            terms.push((prov, value.unwrap_or(Value::Null)));
        }
        Some(crate::agg::AggValue::new(op, terms))
    }

    // ----- comparisons -----

    /// A canonical signature of the *visible* graph: sorted node ids with
    /// kind labels, and sorted visible edges. Two graphs with equal
    /// signatures are equal as provenance graphs (node identity in this
    /// arena is stable, so this is exact, not up to isomorphism).
    pub fn visible_signature(&self) -> VisibleSignature {
        let mut nodes: Vec<(NodeId, String)> = self
            .iter_visible()
            .map(|(id, n)| (id, n.kind.label()))
            .collect();
        nodes.sort();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (id, n) in self.iter_visible() {
            for &s in &n.succs {
                if self.node(s).is_visible() {
                    edges.push((id, s));
                }
            }
        }
        edges.sort();
        (nodes, edges)
    }

    /// Total out-degree ("number of children") of a node — used by the
    /// paper's §5.6 methodology of picking the 50 highest-fanout nodes
    /// as query roots.
    pub fn fanout(&self, id: NodeId) -> usize {
        self.node(id).succs.len()
    }

    /// Visible ids sorted by descending fanout, capped at `k`.
    pub fn top_fanout_nodes(&self, k: usize) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.iter_visible().map(|(id, _)| id).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.node(*id).succs.len()));
        ids.truncate(k);
        ids
    }
}

impl crate::obs::HeapSize for ProvGraph {
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
        use crate::obs::vec_alloc_bytes;
        let mut adjacency = 0usize;
        let mut labels = 0usize;
        for n in &self.nodes {
            adjacency += vec_alloc_bytes(&n.preds) + vec_alloc_bytes(&n.succs);
            labels += kind_heap_bytes(&n.kind);
        }
        let invocations = vec_alloc_bytes(&self.invocations)
            + self
                .invocations
                .iter()
                .map(|i| i.module.len())
                .sum::<usize>();
        let stashes = vec_alloc_bytes(&self.stashes)
            + self
                .stashes
                .iter()
                .map(|s| {
                    s.module.len() + vec_alloc_bytes(&s.hidden) + vec_alloc_bytes(&s.zoom_nodes)
                })
                .sum::<usize>()
            + self.zoomed_modules.capacity()
                * (std::mem::size_of::<String>() + std::mem::size_of::<u32>() + 1)
            + self.zoomed_modules.keys().map(String::len).sum::<usize>();
        vec![
            ("node_arena", vec_alloc_bytes(&self.nodes)),
            ("adjacency", adjacency),
            ("labels", labels),
            ("invocations", invocations),
            ("zoom_stashes", stashes),
        ]
    }
}

/// Owned heap bytes behind a node kind: token/name strings and constant
/// values. `Arc` payloads count refcount header plus data; nested
/// container constants are counted shallow (constants recorded in
/// provenance graphs are atoms). Public so the paged store can price
/// its decoded-record cache with the same ruler.
pub fn kind_heap_bytes(kind: &NodeKind) -> usize {
    const ARC_HEADER: usize = 16;
    match kind {
        NodeKind::WorkflowInput { token } | NodeKind::BaseTuple { token } => {
            ARC_HEADER + token.0.len()
        }
        NodeKind::BlackBox { name, .. } => name.len(),
        NodeKind::Const {
            value: Value::Str(s),
        } => ARC_HEADER + s.len(),
        _ => 0,
    }
}

/// Convenience: build graph fragments by hand in tests.
impl ProvGraph {
    /// Add a base tuple node with a fresh token.
    pub fn add_base(&mut self, token: &str) -> NodeId {
        self.add_node(
            NodeKind::BaseTuple {
                token: Token::new(token),
            },
            Role::Free,
        )
    }

    /// Add an operation node with the given ingredients.
    pub fn add_op(&mut self, kind: NodeKind, preds: &[NodeId]) -> NodeId {
        let id = self.add_node(kind, Role::Free);
        for &p in preds {
            self.add_edge(p, id);
        }
        id
    }

    /// Add a `+` node.
    pub fn add_plus(&mut self, preds: &[NodeId]) -> NodeId {
        self.add_op(NodeKind::Plus, preds)
    }

    /// Add a `·` node.
    pub fn add_times(&mut self, preds: &[NodeId]) -> NodeId {
        self.add_op(NodeKind::Times, preds)
    }

    /// Add a δ node.
    pub fn add_delta(&mut self, preds: &[NodeId]) -> NodeId {
        self.add_op(NodeKind::Delta, preds)
    }

    /// Add an aggregate with full tensor detail:
    /// `items` are (provenance node, value) pairs; returns the op node.
    pub fn add_agg(&mut self, op: AggOp, items: &[(NodeId, Value)]) -> NodeId {
        let op_node = self.add_node(NodeKind::AggResult { op }, Role::Free);
        for (prov, value) in items {
            let const_node = self.add_node(
                NodeKind::Const {
                    value: value.clone(),
                },
                Role::Free,
            );
            let tensor = self.add_node(NodeKind::Tensor, Role::Free);
            self.add_edge(*prov, tensor);
            self.add_edge(const_node, tensor);
            self.add_edge(tensor, op_node);
        }
        op_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_extract_simple_expr() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let c = g.add_base("c");
        let s = g.add_plus(&[a, b]);
        let t = g.add_times(&[s, c]);
        assert_eq!(g.expr_of(t).to_string(), "(a + b)·c");
    }

    #[test]
    fn extraction_shares_subgraphs_via_memo() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let p1 = g.add_plus(&[a]);
        let p2 = g.add_plus(&[a]);
        let t = g.add_times(&[p1, p2]);
        // a is used twice jointly → a·a = a²
        let poly = crate::semiring::Polynomial::from_expr(&g.expr_of(t)).unwrap();
        assert_eq!(poly.to_string(), "a^2");
    }

    #[test]
    fn delta_node_extracts_delta_of_sum() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let d = g.add_delta(&[a, b]);
        assert_eq!(g.expr_of(d).to_string(), "δ(a + b)");
    }

    #[test]
    fn agg_value_reconstruction() {
        let mut g = ProvGraph::new();
        let c2 = g.add_base("C2");
        let c3 = g.add_base("C3");
        let agg = g.add_agg(AggOp::Count, &[(c2, Value::Int(1)), (c3, Value::Int(1))]);
        let av = g.agg_value_of(agg).unwrap();
        assert_eq!(av.current_value().unwrap(), Value::Int(2));
        // v-node preds don't leak into tuple provenance extraction
        assert_eq!(g.expr_of(agg), ProvExpr::One);
    }

    #[test]
    fn invocation_nodes_extract_as_tokens() {
        let mut g = ProvGraph::new();
        let (_, m) = g.add_invocation("Mdealer1", 0);
        let t = g.add_base("I1");
        let i = g.add_op(NodeKind::ModuleInput, &[t, m]);
        assert_eq!(g.expr_of(i).to_string(), "I1·⟨Mdealer1#0⟩");
    }

    #[test]
    fn visible_counts_track_edges() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let p = g.add_plus(&[a, b]);
        assert_eq!(g.visible_count(), 3);
        assert_eq!(g.visible_edge_count(), 2);
        g.node_mut(p).deleted = true;
        assert_eq!(g.visible_count(), 2);
        assert_eq!(g.visible_edge_count(), 0);
    }

    #[test]
    fn unlink_removes_both_directions() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let p = g.add_plus(&[a]);
        let q = g.add_plus(&[p]);
        g.unlink_and_delete(p);
        assert!(g.node(a).succs().is_empty());
        assert!(g.node(q).preds().is_empty());
        assert!(!g.node(p).is_visible());
    }

    #[test]
    fn top_fanout_orders_by_out_degree() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        for _ in 0..3 {
            g.add_plus(&[a]);
        }
        g.add_plus(&[b]);
        let top = g.top_fanout_nodes(1);
        assert_eq!(top, vec![a]);
    }
}
