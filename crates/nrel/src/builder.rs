//! Construction helpers: the [`tuple!`] and [`bag!`] macros.
//!
//! These keep tests, examples, and workload generators readable:
//!
//! ```
//! use lipstick_nrel::{tuple, bag};
//! let cars = bag![
//!     tuple!["C1", "Accord"],
//!     tuple!["C2", "Civic"],
//! ];
//! assert_eq!(cars.len(), 2);
//! ```

/// Build a [`crate::Tuple`] from expressions convertible to
/// [`crate::Value`].
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

/// Build a [`crate::Bag`] from tuples.
#[macro_export]
macro_rules! bag {
    ($($t:expr),* $(,)?) => {
        $crate::Bag::from_tuples(vec![$($t),*])
    };
}

#[cfg(test)]
mod tests {
    use crate::{Bag, Value};

    #[test]
    fn tuple_macro_converts() {
        let t = tuple![1i64, "abc", 2.5f64, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(0).unwrap(), &Value::Int(1));
        assert_eq!(t.get(1).unwrap(), &Value::str("abc"));
        assert_eq!(t.get(2).unwrap(), &Value::Float(2.5));
        assert_eq!(t.get(3).unwrap(), &Value::Bool(true));
    }

    #[test]
    fn bag_macro_builds() {
        let b: Bag = bag![tuple![1i64], tuple![2i64]];
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn empty_bag_macro() {
        let b: Bag = bag![];
        assert!(b.is_empty());
    }
}
