//! Paged (lazy) sessions over v2 provenance logs: `Session::open` must
//! agree answer-for-answer with a full `Session::load`, while reading
//! strictly fewer records than the log holds, and must promote itself
//! to a resident graph on the first mutating statement.

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::{QueryOutput, Session};
use lipstick_storage::{write_graph, write_graph_v2};
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph() -> ProvGraph {
    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 7,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lipstick-proql-lazy");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Write the dealers graph as a v2 log and open it both ways.
fn open_both(name: &str) -> (Session, Session, ProvGraph) {
    let g = dealers_graph();
    let path = temp_path(name);
    write_graph_v2(&g, &path).unwrap();
    let lazy = Session::open(&path).unwrap();
    let full = Session::load(&path).unwrap();
    (lazy, full, g)
}

fn nodes_of(out: &QueryOutput) -> Vec<u32> {
    out.nodes()
        .expect("node set")
        .nodes
        .iter()
        .map(|n| n.0)
        .collect()
}

#[test]
fn open_is_paged_and_load_is_resident() {
    let (lazy, full, _) = open_both("flavours.lpstk");
    assert!(lazy.is_paged());
    assert!(!full.is_paged());
    assert_eq!(lazy.records_read(), 0, "opening decodes no records");
}

#[test]
fn module_filtered_match_agrees_and_reads_fewer_records() {
    let (mut lazy, mut full, g) = open_both("match.lpstk");
    let module = g.invocations()[0].module.clone();
    let stmt = format!("MATCH nodes WHERE module = '{module}'");
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    assert_eq!(nodes_of(&a), nodes_of(&b));
    assert!(!nodes_of(&a).is_empty());
    assert!(
        lazy.records_read() < g.len(),
        "read {} of {} records",
        lazy.records_read(),
        g.len()
    );
}

#[test]
fn explain_reports_records_read_below_total() {
    let (lazy, _, g) = open_both("explain.lpstk");
    let module = g.invocations()[0].module.clone();
    let plan = lazy
        .explain(&format!("MATCH nodes WHERE module = '{module}'"))
        .unwrap();
    // e.g. "[paged postings scan on module 'Mdealer1', reads 37 of 412 records]"
    let (reads, total) = parse_records_read(&plan).expect("explain names records read");
    assert_eq!(total, g.len());
    assert!(reads > 0);
    assert!(
        reads < total,
        "indexed scan must read strictly fewer than all records: {plan}"
    );
}

/// Pull "reads X of Y records" out of an EXPLAIN line.
fn parse_records_read(plan: &str) -> Option<(usize, usize)> {
    let at = plan.find("reads ")? + "reads ".len();
    let rest = &plan[at..];
    let mut parts = rest.split_whitespace();
    let reads = parts.next()?.parse().ok()?;
    assert_eq!(parts.next(), Some("of"));
    let total = parts.next()?.parse().ok()?;
    Some((reads, total))
}

#[test]
fn kind_class_match_uses_postings() {
    let (mut lazy, mut full, g) = open_both("kinds.lpstk");
    for stmt in [
        "MATCH m-nodes",
        "MATCH base-nodes",
        "MATCH o-nodes",
        "MATCH nodes WHERE kind = 'delta'",
    ] {
        let a = lazy.run_one(stmt).unwrap();
        let b = full.run_one(stmt).unwrap();
        assert_eq!(nodes_of(&a), nodes_of(&b), "{stmt}");
    }
    assert!(lazy.records_read() < g.len());
}

#[test]
fn ordered_predicates_agree_and_push_down() {
    let (mut lazy, mut full, g) = open_both("ordered.lpstk");
    let module = g.invocations()[0].module.clone();
    for stmt in [
        "MATCH nodes WHERE execution < 1".to_string(),
        "MATCH nodes WHERE execution >= 1".to_string(),
        "MATCH m-nodes WHERE execution > 0".to_string(),
        "MATCH i-nodes WHERE execution <= 0".to_string(),
        format!("MATCH nodes WHERE module = '{module}' AND execution < 2"),
        "MATCH nodes WHERE kind != 'delta' AND execution >= 0".to_string(),
    ] {
        let a = lazy.run_one(&stmt).unwrap();
        let b = full.run_one(&stmt).unwrap();
        assert_eq!(nodes_of(&a), nodes_of(&b), "{stmt}");
    }
    // The ranged conjunct rides inside the postings scan: a fresh
    // session answering a module-filtered MATCH with an execution range
    // reads only the module's postings records, not the whole log.
    let (mut fresh, _, _) = open_both("ordered.lpstk");
    fresh
        .run_one(&format!(
            "MATCH nodes WHERE module = '{module}' AND execution < 2"
        ))
        .unwrap();
    assert!(fresh.records_read() > 0);
    assert!(fresh.records_read() < g.len());
    // Sanity: ordered predicates actually partition the m-nodes.
    let lt = nodes_of(&full.run_one("MATCH m-nodes WHERE execution < 1").unwrap());
    let ge = nodes_of(&full.run_one("MATCH m-nodes WHERE execution >= 1").unwrap());
    let all = nodes_of(&full.run_one("MATCH m-nodes").unwrap());
    assert_eq!(lt.len() + ge.len(), all.len());
    assert!(!lt.is_empty() && !ge.is_empty());
}

/// A token prefix pattern that matches at least one base tuple.
fn token_prefix_pattern(g: &ProvGraph) -> String {
    let token = g
        .iter_visible()
        .find_map(|(_, n)| match &n.kind {
            lipstick_core::NodeKind::BaseTuple { token } => Some(token.as_str().to_string()),
            _ => None,
        })
        .expect("graph has base tuples");
    format!("{}%", token.chars().next().unwrap())
}

#[test]
fn prefix_like_match_narrows_to_token_kind_postings() {
    let (mut lazy, mut full, g) = open_both("like.lpstk");
    let pattern = token_prefix_pattern(&g);
    let stmt = format!("MATCH nodes WHERE token LIKE '{pattern}'");

    // The plan names the narrowed scan and reads fewer records than
    // the log holds.
    let plan = lazy.explain(&stmt).unwrap();
    assert!(
        plan.contains("postings scan on token-bearing kinds"),
        "got: {plan}"
    );
    let (reads, total) = parse_records_read(&plan).expect("explain names records read");
    assert_eq!(total, g.len());
    assert!(reads > 0 && reads < total, "narrowed scan: {plan}");

    // Both backends answer identically, and the paged side touches no
    // more records than the postings estimate announced.
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    assert_eq!(nodes_of(&a), nodes_of(&b));
    assert!(!nodes_of(&a).is_empty());
    assert!(
        lazy.records_read() <= reads,
        "records_read {} must not exceed the postings estimate {reads}",
        lazy.records_read()
    );

    // module LIKE narrows through the invocation table the same way.
    let module = g.invocations()[0].module.clone();
    let mprefix: String = module.chars().take(2).collect();
    let stmt = format!("MATCH nodes WHERE module LIKE '{mprefix}%'");
    let plan = lazy.explain(&stmt).unwrap();
    assert!(plan.contains("modules LIKE"), "got: {plan}");
    let (reads, total) = parse_records_read(&plan).unwrap();
    assert!(reads < total, "got: {plan}");
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    assert_eq!(nodes_of(&a), nodes_of(&b));
}

/// Both backends must report the same *shape* for shaped plans — the
/// strategy brackets legitimately differ (module scan vs postings
/// scan), the `shape:` line and the early-exit marker must not.
#[test]
fn explain_shape_agrees_between_backends() {
    let (lazy, full, g) = open_both("shape.lpstk");
    let pattern = token_prefix_pattern(&g);
    let shape_line = |plan: &str| -> Option<String> {
        plan.lines()
            .find(|l| l.trim_start().starts_with("shape:"))
            .map(|l| l.trim().to_string())
    };
    for stmt in [
        format!("MATCH nodes WHERE token LIKE '{pattern}' LIMIT 4"),
        "MATCH o-nodes GROUP BY module ORDER BY count DESC LIMIT 3".to_string(),
        "COUNT(DISTINCT module) MATCH nodes".to_string(),
        "MATCH base-nodes ORDER BY execution DESC LIMIT 7".to_string(),
    ] {
        let paged_plan = lazy.explain(&stmt).unwrap();
        let resident_plan = full.explain(&stmt).unwrap();
        let p = shape_line(&paged_plan)
            .unwrap_or_else(|| panic!("paged plan has no shape line: {paged_plan}"));
        let r = shape_line(&resident_plan)
            .unwrap_or_else(|| panic!("resident plan has no shape line: {resident_plan}"));
        assert_eq!(p, r, "{stmt}");
        // A pushed-down limit shows up identically on both sides.
        assert_eq!(
            paged_plan.contains("early-exit"),
            resident_plan.contains("early-exit"),
            "{stmt}:\n  paged: {paged_plan}\n  resident: {resident_plan}"
        );
    }
}

#[test]
fn shaped_results_agree_between_backends() {
    let (mut lazy, mut full, g) = open_both("shaped.lpstk");
    let pattern = token_prefix_pattern(&g);
    for stmt in [
        "MATCH nodes GROUP BY kind ORDER BY count DESC".to_string(),
        "MATCH o-nodes GROUP BY module".to_string(),
        "COUNT(*) MATCH base-nodes".to_string(),
        "COUNT(DISTINCT module) MATCH nodes".to_string(),
        format!("MATCH nodes WHERE token LIKE '{pattern}' ORDER BY token"),
        "MATCH m-nodes ORDER BY execution DESC LIMIT 5".to_string(),
        "MATCH nodes LIMIT 0".to_string(),
        "MATCH nodes WHERE module = 'NoSuchModule' GROUP BY kind".to_string(),
    ] {
        let a = lazy.run_one(&stmt).unwrap();
        let b = full.run_one(&stmt).unwrap();
        match (&a, &b) {
            (QueryOutput::Table(x), QueryOutput::Table(y)) => {
                assert_eq!(x.columns, y.columns, "{stmt}");
                assert_eq!(x.rows, y.rows, "{stmt}");
            }
            (QueryOutput::Nodes(x), QueryOutput::Nodes(y)) => {
                assert_eq!(x.nodes, y.nodes, "{stmt}")
            }
            other => panic!("mismatched shapes for {stmt}: {other:?}"),
        }
    }
    // LIMIT 0 and empty GROUP BY stay paged and well-formed.
    assert!(lazy.is_paged());
}

#[test]
fn why_walks_depends_and_eval_agree_with_full_load() {
    let (mut lazy, mut full, g) = open_both("agree.lpstk");
    let roots = g.top_fanout_nodes(3);
    let mut stmts = vec![format!("SUBGRAPH OF #{}", roots[0].0)];
    for r in &roots {
        stmts.push(format!("WHY #{}", r.0));
        stmts.push(format!("EVAL #{} IN counting", r.0));
        stmts.push(format!("DESCENDANTS OF #{} DEPTH 2", r.0));
        stmts.push(format!("ANCESTORS OF #{}", r.0));
        stmts.push(format!("DEPENDS(#{}, #{})", roots[1].0, r.0));
    }
    stmts.push(format!(
        "MATCH base-nodes INTERSECT ANCESTORS OF #{}",
        roots[0].0
    ));
    for stmt in &stmts {
        let a = lazy.run_one(stmt).unwrap();
        let b = full.run_one(stmt).unwrap();
        match (&a, &b) {
            (QueryOutput::Nodes(x), QueryOutput::Nodes(y)) => {
                assert_eq!(x.nodes, y.nodes, "{stmt}")
            }
            (QueryOutput::Text(x), QueryOutput::Text(y)) => assert_eq!(x, y, "{stmt}"),
            (QueryOutput::Bool(x), QueryOutput::Bool(y)) => assert_eq!(x, y, "{stmt}"),
            other => panic!("mismatched output shapes for {stmt}: {other:?}"),
        }
        assert!(
            lazy.is_paged(),
            "read-only statements keep the session paged"
        );
    }
}

#[test]
fn token_references_resolve_lazily() {
    let (mut lazy, mut full, _) = open_both("tokens.lpstk");
    // Find a token via the full session, then resolve it lazily.
    let out = full.run_one("MATCH base-nodes").unwrap();
    assert!(!nodes_of(&out).is_empty());
    let g = full.graph();
    let token = g
        .iter_visible()
        .find_map(|(_, n)| match &n.kind {
            lipstick_core::NodeKind::BaseTuple { token } => Some(token.as_str().to_string()),
            _ => None,
        })
        .unwrap();
    let a = lazy.run_one(&format!("WHY '{token}'")).unwrap();
    let b = full.run_one(&format!("WHY '{token}'")).unwrap();
    assert_eq!(a.text(), b.text());
}

#[test]
fn mutating_statements_promote_then_work() {
    let (mut lazy, mut full, g) = open_both("promote.lpstk");
    let module = g.invocations()[0].module.clone();
    assert!(lazy.is_paged());
    let stmt = format!("ZOOM OUT TO {module}");
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    assert_eq!(a.text(), b.text());
    assert!(!lazy.is_paged(), "mutation promoted the session");
    // And the promoted session keeps answering queries correctly.
    let a = lazy.run_one("MATCH nodes").unwrap();
    let b = full.run_one("MATCH nodes").unwrap();
    assert_eq!(nodes_of(&a), nodes_of(&b));
}

#[test]
fn delete_propagate_promotes_and_matches_resident_semantics() {
    let (mut lazy, mut full, g) = open_both("delete.lpstk");
    let root = g.top_fanout_nodes(1)[0];
    let stmt = format!("DELETE #{} PROPAGATE", root.0);
    let a = lazy.run_one(&stmt).unwrap();
    let b = full.run_one(&stmt).unwrap();
    match (a, b) {
        (QueryOutput::Deleted { nodes: x }, QueryOutput::Deleted { nodes: y }) => {
            assert_eq!(x, y)
        }
        other => panic!("expected deletions, got {other:?}"),
    }
    assert!(!lazy.is_paged());
}

#[test]
fn build_index_promotes_and_serves_reach_lookups() {
    let (mut lazy, _, g) = open_both("index.lpstk");
    lazy.run_one("BUILD INDEX").unwrap();
    assert!(!lazy.is_paged());
    assert!(lazy.has_reach_index());
    let root = g.top_fanout_nodes(1)[0];
    let out = lazy
        .run_one(&format!("DESCENDANTS OF #{}", root.0))
        .unwrap();
    assert!(!nodes_of(&out).is_empty());
}

/// Regression: `BUILD INDEX` after a promoting mutation must build the
/// closure exactly once — promotion itself builds nothing, a present
/// index is repaired in place by later mutations, and a redundant
/// `BUILD INDEX` is deduped instead of silently rebuilding.
#[test]
fn build_index_after_promoting_delete_builds_exactly_once() {
    let (mut lazy, _, g) = open_both("dedupe.lpstk");
    let root = g.top_fanout_nodes(1)[0];
    lazy.run_one(&format!("DELETE #{} PROPAGATE", root.0))
        .unwrap();
    assert!(!lazy.is_paged(), "DELETE promotes");
    assert_eq!(lazy.index_builds(), 0, "promotion builds no index");

    lazy.run_one("BUILD INDEX").unwrap();
    assert_eq!(lazy.index_builds(), 1);

    // A second BUILD INDEX is a no-op: mutations maintain the closure,
    // so a present index is always exact.
    let out = lazy.run_one("BUILD INDEX").unwrap();
    assert!(out.to_string().contains("already present"), "got: {}", out);
    assert_eq!(lazy.index_builds(), 1, "silent rebuild");

    // Mutating again repairs rather than rebuilds, and the index keeps
    // serving indexed plans afterwards.
    let victim = g.top_fanout_nodes(3)[2];
    let _ = lazy.run_one(&format!("DELETE #{} PROPAGATE", victim.0));
    assert!(lazy.has_reach_index());
    assert_eq!(lazy.index_builds(), 1);
    let alive = lazy.graph().iter_visible().next().unwrap().0;
    assert!(lazy
        .explain(&format!("ANCESTORS OF #{}", alive.0))
        .unwrap()
        .contains("reach-index lookup"));
}

#[test]
fn run_read_is_concurrent_and_rejects_mutations() {
    let (lazy, full, g) = open_both("runread.lpstk");
    let root = g.top_fanout_nodes(1)[0];
    let stmts = [
        "MATCH base-nodes".to_string(),
        format!("DESCENDANTS OF #{} DEPTH 2", root.0),
        format!("WHY #{}", root.0),
        "STATS".to_string(),
        "EXPLAIN MATCH m-nodes".to_string(),
    ];
    // Shared references from many threads at once, against both
    // backends: Session is Send + Sync and run_read takes &self.
    std::thread::scope(|s| {
        for session in [&lazy, &full] {
            for stmt in &stmts {
                s.spawn(move || session.run_read(stmt).unwrap());
            }
        }
    });
    assert!(lazy.is_paged(), "run_read never promotes");
    for session in [&lazy, &full] {
        for stmt in [
            "DELETE #0 PROPAGATE",
            "ZOOM OUT TO M",
            "BUILD INDEX",
            "DROP INDEX",
        ] {
            let err = session.run_read(stmt).unwrap_err();
            assert!(
                matches!(err, lipstick_proql::ProqlError::ReadOnly(_)),
                "{stmt}: {err}"
            );
        }
        // EXPLAIN of a mutating statement only plans — still read-only.
        session.run_read("EXPLAIN DELETE #0 PROPAGATE").unwrap();
    }
}

#[test]
fn v1_logs_fall_back_to_a_full_load() {
    let g = dealers_graph();
    let path = temp_path("v1.lpstk");
    write_graph(&g, &path).unwrap();
    let mut s = Session::open(&path).unwrap();
    assert!(!s.is_paged(), "v1 has no footer; open falls back to load");
    let out = s.run_one("MATCH base-nodes").unwrap();
    assert!(!nodes_of(&out).is_empty());
}

#[test]
fn paged_stats_report_log_shape() {
    let (mut lazy, _, g) = open_both("stats.lpstk");
    let out = lazy.run_one("STATS").unwrap();
    let text = out.text().unwrap().to_string();
    assert!(text.contains("paged log"), "got: {text}");
    assert!(
        text.contains(&format!("{} record(s)", g.len())),
        "got: {text}"
    );
}

#[test]
fn corrupt_record_bytes_error_at_query_time_without_aborting() {
    // The footer validates offsets, not record contents: garbled record
    // bytes are only noticed when a query faults the record in. That
    // must surface as an error, not a process abort.
    let g = dealers_graph();
    let path = temp_path("corrupt-record.lpstk");
    write_graph_v2(&g, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Locate a record via the index of a clean open, then trash it.
    let probe = lipstick_storage::PagedLog::from_bytes(bytes.clone()).unwrap();
    let range = probe.index().record_range(lipstick_core::NodeId(3));
    for b in &mut bytes[range] {
        *b = 0xff; // role tag 255 is invalid
    }
    std::fs::write(&path, &bytes).unwrap();

    // The footer still parses, so the open itself succeeds.
    let mut s = Session::open(&path).unwrap();
    // `MATCH nodes` alone never faults a record (visibility is
    // index-level) — and must therefore still succeed.
    assert!(s.run_one("MATCH nodes").is_ok());
    // `p-nodes` has no postings list, so the scan decodes every record
    // and trips over the garbled one.
    let err = s.run_one("MATCH p-nodes").unwrap_err();
    assert!(
        err.to_string().contains("corrupt"),
        "expected a corruption error, got: {err}"
    );
}

#[test]
fn corrupt_v2_footer_is_an_open_error() {
    let g = dealers_graph();
    let path = temp_path("corrupt.lpstk");
    write_graph_v2(&g, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let len = bytes.len();
    bytes[len - 2] ^= 0xff; // inside the trailer magic
    std::fs::write(&path, &bytes).unwrap();
    assert!(Session::open(&path).is_err());
}
