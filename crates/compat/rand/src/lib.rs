//! Minimal in-tree subset of the `rand` 0.9 API: a deterministic
//! seedable generator plus `random_range` over integer and float
//! ranges. The stream differs from upstream `StdRng`, but is stable
//! across runs for a given seed, which is all the workload generators
//! require.

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods (blanket-implemented for every
/// [`RngCore`], as upstream does).
pub trait Rng: RngCore {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform in `[0, 1)`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable without a range.
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open range values can be drawn from.
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut impl RngCore) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x5DEE_CE66_D123_4567,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.random_range(3..9usize);
            assert!((3..9).contains(&i));
            let f = rng.random_range(0.85..1.15);
            assert!((0.85..1.15).contains(&f));
            let n = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }
}
