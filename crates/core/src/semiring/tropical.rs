//! The tropical (min, +) semiring.
//!
//! Valuating tokens with costs yields the cheapest derivation of each
//! output tuple — trust/cost assessment, one of the applications the
//! paper cites for the semiring foundation.

use super::Semiring;

/// Costs under (min, +). `Tropical::zero()` is +∞ (no derivation);
/// `one()` is cost 0 (free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tropical(pub f64);

impl Tropical {
    pub const INFINITY: Tropical = Tropical(f64::INFINITY);
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical(f64::INFINITY)
    }
    fn one() -> Self {
        Tropical(0.0)
    }
    fn plus(&self, other: &Self) -> Self {
        Tropical(self.0.min(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Tropical(self.0 + other.0)
    }
    // δ is the identity: min is idempotent.
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cheapest_alternative_wins() {
        let a = Tropical(3.0);
        let b = Tropical(5.0);
        assert_eq!(a.plus(&b), Tropical(3.0));
        assert_eq!(a.times(&b), Tropical(8.0));
    }

    #[test]
    fn zero_annihilates() {
        assert_eq!(Tropical(4.0).times(&Tropical::zero()), Tropical::zero());
    }

    proptest! {
        // Integer-valued costs keep float addition exact, so the
        // associativity law can be checked with plain equality.
        #[test]
        fn laws(a in 0u32..1000, b in 0u32..1000, c in 0u32..1000) {
            crate::semiring::laws::check_laws(
                Tropical(f64::from(a)),
                Tropical(f64::from(b)),
                Tropical(f64::from(c)),
            );
        }
    }
}
