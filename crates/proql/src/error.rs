//! ProQL error type.

use std::fmt;

use lipstick_core::query::QueryError;

/// Anything that can go wrong between source text and query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProqlError {
    /// Lexical error with position and message.
    Lex { pos: usize, message: String },
    /// Syntax error with message (includes what was expected).
    Parse(String),
    /// A node reference did not resolve against the session graph.
    UnknownNode(String),
    /// Unknown semiring name in `EVAL … IN <name>`.
    UnknownSemiring(String),
    /// Unknown node class in `MATCH <class>`.
    UnknownClass(String),
    /// Unknown predicate field.
    UnknownField(String),
    /// Engine-level query failure.
    Query(QueryError),
    /// Loading a provenance log failed.
    Storage(String),
    /// A mutating statement reached a read-only execution path
    /// ([`crate::Session::run_read`]).
    ReadOnly(String),
    /// The request deadline passed mid-execution; the statement was
    /// cancelled cooperatively at a span boundary. Only read statements
    /// carry deadlines — a half-applied mutation is never abandoned.
    DeadlineExceeded,
}

impl fmt::Display for ProqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            ProqlError::Parse(m) => write!(f, "parse error: {m}"),
            ProqlError::UnknownNode(r) => write!(f, "unknown node reference {r}"),
            ProqlError::UnknownSemiring(s) => write!(
                f,
                "unknown semiring '{s}' (expected counting, boolean, tropical, lineage, or why)"
            ),
            ProqlError::UnknownClass(c) => write!(
                f,
                "unknown node class '{c}' (expected nodes, m-nodes, i-nodes, o-nodes, s-nodes, \
                 base-nodes, p-nodes, or v-nodes)"
            ),
            ProqlError::UnknownField(c) => write!(
                f,
                "unknown predicate field '{c}' (expected module, kind, role, execution, or token)"
            ),
            ProqlError::Query(e) => write!(f, "query error: {e}"),
            ProqlError::Storage(m) => write!(f, "storage error: {m}"),
            ProqlError::ReadOnly(stmt) => write!(
                f,
                "statement mutates the session and cannot run on a read-only handle: {stmt}"
            ),
            ProqlError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline exceeded: statement cancelled before completion"
                )
            }
        }
    }
}

impl std::error::Error for ProqlError {}

impl From<QueryError> for ProqlError {
    fn from(e: QueryError) -> Self {
        ProqlError::Query(e)
    }
}

pub type Result<T> = std::result::Result<T, ProqlError>;
