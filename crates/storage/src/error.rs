//! Storage errors.

use std::fmt;

/// Errors raised while encoding or decoding provenance data.
#[derive(Debug)]
pub enum StorageError {
    /// I/O failure.
    Io(std::io::Error),
    /// Bad magic bytes — not a Lipstick provenance file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Truncated or malformed input.
    Corrupt(String),
    /// Graphs with active ZoomOuts cannot be persisted (zoom is a view,
    /// not data; ZoomIn first).
    ZoomedGraph(Vec<String>),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not a Lipstick provenance file (bad magic)"),
            StorageError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::Corrupt(m) => write!(f, "corrupt provenance file: {m}"),
            StorageError::ZoomedGraph(mods) => write!(
                f,
                "cannot persist a graph with zoomed-out modules: {}",
                mods.join(", ")
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;
