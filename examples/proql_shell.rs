//! An interactive ProQL shell over a WorkflowGen provenance graph.
//!
//! With no arguments it executes the Car-dealerships workflow and
//! queries the captured provenance; `--load PATH` instead loads a
//! provenance log written by `lipstick_storage::write_graph`, `--open
//! PATH` opens one lazily, and `--connect HOST:PORT` drives a remote
//! `lipstick-serve` instance over the line protocol with the same REPL.
//!
//! Statements end with `;`. Meta commands: `\dot` prints the last
//! node-set result as Graphviz, `\help` lists statement forms,
//! `\quit` exits.
//!
//! ```sh
//! echo "STATS; MATCH m-nodes WHERE module = 'Mdealer1';" | \
//!     cargo run --example proql_shell
//! ```

use std::io::{BufRead, Write};

use lipstick::core::GraphTracker;
use lipstick::proql::{QueryOutput, Session};
use lipstick::serve::client::RetryPolicy;
use lipstick::serve::{Client, Reply};
use lipstick::workflowgen::dealers::{self, DealersParams};

const HELP: &str = "\
ProQL statement forms:
  SUBGRAPH OF #42                          ancestors + descendants + siblings
  WHY 'C2'                                 symbolic provenance expression
  DEPENDS(#42, 'C2')                       dependency test
  DELETE 'C2' PROPAGATE                    deletion propagation (mutates!)
  ZOOM OUT TO Mdealer1, Magg  /  ZOOM IN   coarsen / restore module views
  EVAL #42 IN counting|boolean|tropical|lineage|why
  MATCH m-nodes WHERE module = 'Mdealer1'  node selection (m/i/o/s/base/p/v/nodes)
  MATCH base-nodes WHERE token LIKE 'C%'   %/_ wildcard patterns (also NOT LIKE)
  MATCH o-nodes GROUP BY module            counts per group (fields: module/kind/role/execution/token)
  COUNT(*) MATCH base-nodes                scalar counts (also COUNT(DISTINCT field))
  MATCH nodes ORDER BY execution DESC LIMIT 5   order and truncate any node set
  ANCESTORS OF #42 DEPTH 3                 bounded traversal (also DESCENDANTS)
  MATCH base-nodes INTERSECT ANCESTORS OF #42   set ops (also UNION)
  BUILD INDEX / DROP INDEX                 reachability closure on/off
  EXPLAIN <statement>                      show the physical plan
  EXPLAIN ANALYZE <statement>              run it and show per-operator actuals
  CHECK <statement>                        static analysis only — typed diagnostics, never executes
  EXPLAIN LINT <statement>                 same diagnostics, EXPLAIN-family spelling
  STATS                                    graph statistics (+ server counters when remote)
Meta: \\dot (last node set as Graphviz), \\check <stmt> (shorthand for CHECK),
      \\mem (session heap breakdown, local only), \\timing on|off, \\help, \\quit";

/// Where statements go: a local session or a remote lipstick-serve.
enum Engine {
    Local(Box<Session>),
    Remote(Client),
}

fn build_engine() -> Result<Engine, Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--connect") => {
            let addr = args.next().ok_or("--connect requires HOST:PORT")?;
            eprintln!("connecting to lipstick-serve at {addr}");
            Ok(Engine::Remote(Client::connect(addr.as_str())?))
        }
        other => Ok(Engine::Local(Box::new(build_session(other, args)?))),
    }
}

fn build_session(
    first: Option<&str>,
    mut args: impl Iterator<Item = String>,
) -> Result<Session, Box<dyn std::error::Error>> {
    match first {
        Some("--load") => {
            let path = args.next().ok_or("--load requires a path")?;
            eprintln!("loading provenance log {path}");
            Ok(Session::load(path)?)
        }
        Some("--open") => {
            let path = args.next().ok_or("--open requires a path")?;
            eprintln!("opening provenance log {path} lazily (v2 footer index)");
            Ok(Session::open(path)?)
        }
        Some(other) => Err(format!(
            "unknown argument '{other}' (try --load PATH, --open PATH, or --connect HOST:PORT)"
        )
        .into()),
        None => {
            eprintln!("running the Car-dealerships workflow (24 cars, 3 executions)…");
            let params = DealersParams {
                num_cars: 24,
                num_exec: 3,
                seed: 7,
            };
            let mut tracker = GraphTracker::new();
            dealers::run_declining(&params, &mut tracker)?;
            Ok(Session::new(tracker.finish()))
        }
    }
}

/// Split a script on `;` separators that sit outside single-quoted
/// string literals, mirroring the ProQL lexer's quoting rules so remote
/// and local sessions see the same statement boundaries.
fn split_statements(script: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in script.char_indices() {
        match c {
            '\'' => in_string = !in_string,
            ';' if !in_string => {
                out.push(&script[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push(&script[start..]);
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = build_engine()?;
    match &engine {
        Engine::Remote(_) => {
            println!("proql shell — remote session; responses name cache hits, \\help for help")
        }
        Engine::Local(session) if session.is_paged() => {
            println!("proql shell — paged session; records fault in per query, \\help for help")
        }
        Engine::Local(session) => println!(
            "proql shell — graph has {} visible nodes; end statements with ';', \\help for help",
            session.graph().visible_count()
        ),
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut last_nodes: Option<lipstick::proql::NodeSetResult> = None;
    let mut timing = false;
    print!("proql> ");
    std::io::stdout().flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        match trimmed {
            "\\quit" => break,
            "\\timing on" | "\\timing off" => {
                timing = trimmed.ends_with("on");
                println!("timing {}", if timing { "on" } else { "off" });
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            "\\help" => {
                println!("{HELP}");
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            "\\dot" => {
                let resident = match &engine {
                    Engine::Local(session) => session.resident_graph(),
                    Engine::Remote(_) => None,
                };
                match (&last_nodes, resident) {
                    (Some(ns), Some(graph)) => println!("{}", ns.to_dot(graph, "proql")),
                    (Some(_), None) => println!(
                        "(remote/paged session — DOT rendering needs a local resident graph)"
                    ),
                    (None, _) => println!("no node-set result yet"),
                }
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            "\\mem" => {
                match &engine {
                    Engine::Local(session) => print!(
                        "{}",
                        lipstick::proql::render_memory_report(&session.memory_report())
                    ),
                    // A remote server reports memory in its STATS
                    // output and /metrics gauges instead.
                    Engine::Remote(_) => {
                        println!("(remote session — run STATS; or scrape GET /metrics)")
                    }
                }
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            "\\check" => {
                println!("usage: \\check <statement>   (shorthand for CHECK <statement>;)");
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            _ => {}
        }
        // `\check <stmt>` desugars to a complete `CHECK <stmt>;`
        // statement, so the diagnostics (with their caret-underlined
        // spans) come back through the normal execution path — local or
        // remote alike.
        let line = match trimmed.strip_prefix("\\check ") {
            Some(rest) => format!("CHECK {};", rest.trim().trim_end_matches(';')),
            None => line,
        };
        let trimmed = line.trim();
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            continue; // statement continues on the next line
        }
        let script = std::mem::take(&mut buffer);
        match &mut engine {
            Engine::Local(session) => {
                let started = std::time::Instant::now();
                let reads_before = session.records_read();
                match session.run(&script) {
                    Ok(outputs) => {
                        for out in outputs {
                            match out {
                                QueryOutput::Nodes(ns) => {
                                    match session.resident_graph() {
                                        Some(graph) => println!("{}", ns.render(graph, 20)),
                                        // Paged sessions print ids only; labels
                                        // would fault every listed record.
                                        None => println!("{ns}"),
                                    }
                                    last_nodes = Some(ns);
                                }
                                other => println!("{other}"),
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                if timing {
                    println!(
                        "(time: {:.3} ms, reads: {})",
                        started.elapsed().as_secs_f64() * 1e3,
                        session.records_read() - reads_before
                    );
                }
            }
            Engine::Remote(client) => {
                // The wire protocol takes one statement per line; split
                // the buffered script on ';' (outside string literals,
                // matching the lexer) so multi-statement input keeps
                // working remotely.
                for stmt in split_statements(&script) {
                    let stmt = stmt.trim();
                    if stmt.is_empty() {
                        continue;
                    }
                    // Retry BUSY sheds and transient disconnects with
                    // jittered backoff before bothering the user.
                    match client.query_with_retry(stmt, &RetryPolicy::default()) {
                        Ok(Reply::Ok {
                            cache_hit,
                            epoch,
                            time_us,
                            reads,
                            body,
                        }) => {
                            if cache_hit {
                                println!("{body}\n(cached)");
                            } else {
                                println!("{body}");
                            }
                            if timing {
                                println!("(server: time_us={time_us} reads={reads} epoch={epoch})");
                            }
                        }
                        Ok(Reply::Err(message)) => println!("error: {message}"),
                        Ok(Reply::Busy { retry_after_ms }) => println!(
                            "server busy (write queue full) after retries; \
                             try again in ~{retry_after_ms} ms"
                        ),
                        Err(e) => {
                            println!("connection error: {e}");
                            return Ok(());
                        }
                    }
                }
            }
        }
        print!("proql> ");
        std::io::stdout().flush()?;
    }
    Ok(())
}
