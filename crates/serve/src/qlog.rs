//! The structured query log: one JSON object per executed statement,
//! appended to a rotating file and mirrored in a small in-memory ring
//! for `GET /log?n=`.
//!
//! The log is the capture half of capture/replay (`bench_replay` is
//! the other half): every event carries the canonical statement key,
//! the epoch it executed at, and an FNV-1a hash of the rendered result,
//! so a replayer can re-run the workload against any backend and check
//! byte-identity wherever the epoch discipline permits.
//!
//! Format: one line per event, a flat JSON object —
//!
//! ```json
//! {"seq":12,"ts_us":58211,"client":3,"stmt":"nodes where kind=map",
//!  "key":"NODES WHERE KIND = map","outcome":"ok","cache_hit":true,
//!  "time_us":41,"reads":0,"epoch":2,"result_fnv":"8618312879776256743"}
//! ```
//!
//! `seq` is gap-free and monotonic (assigned under the writer lock, so
//! it survives rotation), `ts_us` counts from server start, and
//! `result_fnv` is a decimal *string* because u64 hashes overflow the
//! 2^53 integers JSON consumers can be trusted with. Rotation is
//! size-based: the active file moves to `<path>.<generation>` and the
//! oldest archive beyond `keep` is pruned. Every file operation is
//! best-effort — a full disk must never take queries down with it.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use lipstick_core::obs::{fnv1a64, json_escape};

/// Newest rendered events retained in memory for `GET /log?n=`.
const RING_CAPACITY: usize = 256;

/// Where and how to keep the structured query log.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// Active log file; archives live beside it as `<path>.<n>`.
    pub path: PathBuf,
    /// Rotate once the active file reaches this many bytes.
    pub max_bytes: u64,
    /// Archived generations to keep (older ones are pruned).
    pub keep: usize,
}

impl QueryLogConfig {
    pub fn new(path: impl Into<PathBuf>) -> QueryLogConfig {
        QueryLogConfig {
            path: path.into(),
            max_bytes: 16 * 1024 * 1024,
            keep: 4,
        }
    }
}

/// One logged statement execution, as written to and parsed back from
/// the JSONL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEvent {
    /// Gap-free, monotonic per-log sequence number.
    pub seq: u64,
    /// Microseconds since the log (≈ the server) started.
    pub ts_us: u64,
    /// Connection id the statement arrived on.
    pub client: u64,
    /// The statement as the client sent it.
    pub stmt: String,
    /// Canonical rendering of the parsed statement (the cache key);
    /// empty when the statement failed to parse.
    pub key: String,
    /// `"ok"` or `"err"`.
    pub outcome: String,
    pub cache_hit: bool,
    pub time_us: u64,
    pub reads: u64,
    /// Write epoch the statement executed at.
    pub epoch: u64,
    /// FNV-1a of the rendered text payload (result on success, message
    /// on error) — the byte-identity fingerprint replay checks.
    pub result_fnv: u64,
}

impl QueryEvent {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"seq":{},"ts_us":{},"client":{},"stmt":"{}","key":"{}","outcome":"{}","cache_hit":{},"time_us":{},"reads":{},"epoch":{},"result_fnv":"{}"}}"#,
            self.seq,
            self.ts_us,
            self.client,
            json_escape(&self.stmt),
            json_escape(&self.key),
            json_escape(&self.outcome),
            self.cache_hit,
            self.time_us,
            self.reads,
            self.epoch,
            self.result_fnv,
        )
    }

    /// Parse one JSONL line. Returns `None` on anything malformed —
    /// the replayer skips what it cannot understand rather than dying
    /// mid-log.
    pub fn parse(line: &str) -> Option<QueryEvent> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
        Some(QueryEvent {
            seq: get("seq")?.parse().ok()?,
            ts_us: get("ts_us")?.parse().ok()?,
            client: get("client")?.parse().ok()?,
            stmt: get("stmt")?.to_string(),
            key: get("key")?.to_string(),
            outcome: get("outcome")?.to_string(),
            cache_hit: match get("cache_hit")? {
                "true" => true,
                "false" => false,
                _ => return None,
            },
            time_us: get("time_us")?.parse().ok()?,
            reads: get("reads")?.parse().ok()?,
            epoch: get("epoch")?.parse().ok()?,
            result_fnv: get("result_fnv")?.parse().ok()?,
        })
    }

    /// The fingerprint [`QueryEvent::result_fnv`] stores: FNV-1a of the
    /// text payload a statement rendered to.
    pub fn fingerprint(payload: &str) -> u64 {
        fnv1a64(payload.as_bytes())
    }
}

/// Parse a single-line flat JSON object (string / number / bool
/// values only — exactly what [`QueryEvent::to_json`] emits) into
/// `(key, unescaped value)` pairs. Not a general JSON parser.
fn parse_flat_object(line: &str) -> Option<Vec<(String, String)>> {
    let s = line.trim();
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut chars = body.char_indices().peekable();
    let mut fields = Vec::new();
    loop {
        // Key: a JSON string.
        skip_ws_and(&mut chars, ',');
        let Some(&(_, c)) = chars.peek() else { break };
        if c != '"' {
            return None;
        }
        let key = parse_string(&mut chars)?;
        skip_ws_and(&mut chars, ':');
        // Value: string, or a bare token up to the next ',' at depth 0.
        let value = match chars.peek() {
            Some(&(_, '"')) => parse_string(&mut chars)?,
            Some(_) => {
                let mut token = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    token.push(c);
                    chars.next();
                }
                token.trim().to_string()
            }
            None => return None,
        };
        fields.push((key, value));
    }
    Some(fields)
}

fn skip_ws_and(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>, sep: char) {
    while let Some(&(_, c)) = chars.peek() {
        if c.is_whitespace() || c == sep {
            chars.next();
        } else {
            break;
        }
    }
}

/// Consume a JSON string (leading quote expected at the cursor) and
/// return its unescaped contents.
fn parse_string(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> Option<String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    while let Some((_, c)) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                '/' => out.push('/'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None // unterminated
}

struct Inner {
    file: Option<File>,
    /// Bytes written to the active file so far.
    written: u64,
    /// Rotations performed; archive `<path>.<n>` holds generation `n`.
    generation: u64,
    /// Next sequence number (gap-free across rotations).
    seq: u64,
    /// Newest rendered lines, for `GET /log?n=`.
    ring: VecDeque<String>,
}

/// The append-only, size-rotated query log. All IO is best-effort:
/// failures drop the event on the floor (counted nowhere) instead of
/// failing the query that triggered them.
pub struct QueryLog {
    config: QueryLogConfig,
    start: Instant,
    inner: Mutex<Inner>,
}

impl QueryLog {
    /// Open (appending) or create the active log file. On failure the
    /// log still works as an in-memory ring — the server must not
    /// refuse to start over a bad log path.
    pub fn open(config: QueryLogConfig) -> QueryLog {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&config.path)
            .ok();
        let written = file
            .as_ref()
            .and_then(|f| f.metadata().ok())
            .map_or(0, |m| m.len());
        QueryLog {
            config,
            start: Instant::now(),
            inner: Mutex::new(Inner {
                file,
                written,
                generation: 0,
                seq: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    /// Microseconds since the log started — the `ts_us` clock.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Append one event. The sequence number is assigned here, under
    /// the lock, so it is gap-free and monotonic even across rotation.
    pub fn append(&self, mut event: QueryEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        event.seq = inner.seq;
        inner.seq += 1;
        let line = event.to_json();
        if let Some(file) = inner.file.as_mut() {
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            if file.write_all(&buf).is_ok() {
                inner.written += buf.len() as u64;
            }
        }
        if inner.ring.len() == RING_CAPACITY {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line);
        if inner.written >= self.config.max_bytes {
            self.rotate(&mut inner);
        }
    }

    /// Move the active file to `<path>.<generation>`, open a fresh one,
    /// and prune the archive that fell off the `keep` window.
    fn rotate(&self, inner: &mut Inner) {
        inner.file = None; // close before rename (Windows-friendly)
        inner.generation += 1;
        let archive = archive_path(&self.config.path, inner.generation);
        let _ = std::fs::rename(&self.config.path, &archive);
        inner.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.config.path)
            .ok();
        inner.written = 0;
        if inner.generation > self.config.keep as u64 {
            let expired = archive_path(
                &self.config.path,
                inner.generation - self.config.keep as u64,
            );
            let _ = std::fs::remove_file(expired);
        }
    }

    /// Events appended so far (== the next sequence number).
    pub fn events(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// Rotations performed so far.
    pub fn generation(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .generation
    }

    /// The newest `n` rendered event lines, most recent first.
    pub fn recent(&self, n: usize) -> Vec<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().rev().take(n).cloned().collect()
    }
}

fn archive_path(path: &Path, generation: u64) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{generation}"));
    PathBuf::from(name)
}

/// Read every surviving event for `path`, archives first in generation
/// order, then the active file — the replayer's input. Events are
/// returned in capture order; malformed lines are skipped.
pub fn read_log(path: &Path) -> Vec<QueryEvent> {
    let mut generations: Vec<u64> = Vec::new();
    if let (Some(dir), Some(stem)) = (path.parent(), path.file_name()) {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        let prefix = {
            let mut p = stem.to_os_string();
            p.push(".");
            p.to_string_lossy().into_owned()
        };
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(gen_str) = name.strip_prefix(&prefix) {
                    if let Ok(generation) = gen_str.parse::<u64>() {
                        generations.push(generation);
                    }
                }
            }
        }
    }
    generations.sort_unstable();
    let mut events = Vec::new();
    for generation in generations {
        read_file_into(&archive_path(path, generation), &mut events);
    }
    read_file_into(path, &mut events);
    events
}

fn read_file_into(path: &Path, events: &mut Vec<QueryEvent>) {
    let Ok(file) = File::open(path) else { return };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if let Some(event) = QueryEvent::parse(&line) {
            events.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, stmt: &str) -> QueryEvent {
        QueryEvent {
            seq,
            ts_us: 1234,
            client: 7,
            stmt: stmt.to_string(),
            key: stmt.to_uppercase(),
            outcome: "ok".to_string(),
            cache_hit: seq.is_multiple_of(2),
            time_us: 42,
            reads: 3,
            epoch: 9,
            result_fnv: u64::MAX - seq, // exercise > 2^53
        }
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = event(5, "nodes where kind = \"map\"\nand module = a\\b");
        let parsed = QueryEvent::parse(&e.to_json()).expect("parses");
        assert_eq!(parsed, e);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(QueryEvent::parse(""), None);
        assert_eq!(QueryEvent::parse("{}"), None);
        assert_eq!(QueryEvent::parse("{\"seq\":1}"), None);
        assert_eq!(QueryEvent::parse("not json at all"), None);
    }

    #[test]
    fn fingerprint_is_fnv1a() {
        assert_eq!(QueryEvent::fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(QueryEvent::fingerprint("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn append_assigns_gapfree_seq_and_ring_serves_newest_first() {
        let dir = std::env::temp_dir().join(format!("lipstick-qlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ring.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = QueryLog::open(QueryLogConfig::new(&path));
        for i in 0..5 {
            log.append(event(999, &format!("stats {i}"))); // seq overwritten
        }
        assert_eq!(log.events(), 5);
        let recent = log.recent(2);
        assert_eq!(recent.len(), 2);
        let newest = QueryEvent::parse(&recent[0]).expect("parses");
        assert_eq!(newest.seq, 4);
        let events = read_log(&path);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        let _ = std::fs::remove_file(&path);
    }
}
