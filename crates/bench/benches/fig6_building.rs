//! Figure 6: building the provenance graph from the on-disk log.
//!
//! 6(a): build time vs node count (dealers) — expected linear.
//! 6(b): Arctic dense fan-out 2, modules × selectivity — lower
//!       selectivity ⇒ more edges ⇒ slower builds.
//! 6(c): Arctic 24 modules across topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lipstick_bench::{run_arctic, run_dealers};
use lipstick_storage::{decode_graph, encode_graph};
use lipstick_workflowgen::{ArcticParams, DealersParams, Selectivity, Topology};

fn fig6a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_build_dealers");
    group.sample_size(10);
    for num_exec in [5usize, 10, 20] {
        let params = DealersParams {
            num_cars: 400,
            num_exec,
            seed: 1_000_003,
        };
        let g = run_dealers(&params, true).graph.expect("tracking on");
        let bytes = encode_graph(&g).expect("no zoom");
        group.throughput(Throughput::Elements(g.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(g.len()), &bytes, |b, bytes| {
            b.iter(|| decode_graph(bytes).expect("round trip").len())
        });
    }
    group.finish();
}

fn fig6b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_build_arctic_modules");
    group.sample_size(10);
    for stations in [2usize, 6, 12] {
        for (sel_name, selectivity) in [("all", Selectivity::All), ("year", Selectivity::Year)] {
            let params = ArcticParams {
                stations,
                topology: Topology::Dense { fanout: 2 },
                selectivity,
                num_exec: 5,
                seed: 7,
            };
            let g = run_arctic(&params, true).graph.expect("tracking on");
            let bytes = encode_graph(&g).expect("no zoom");
            group.bench_with_input(BenchmarkId::new(sel_name, stations), &bytes, |b, bytes| {
                b.iter(|| decode_graph(bytes).expect("round trip").len())
            });
        }
    }
    group.finish();
}

fn fig6c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6c_build_arctic_topology");
    group.sample_size(10);
    for (name, topology) in [
        ("serial", Topology::Serial),
        ("parallel", Topology::Parallel),
        ("dense3", Topology::Dense { fanout: 3 }),
    ] {
        let params = ArcticParams {
            stations: 12,
            topology,
            selectivity: Selectivity::Month,
            num_exec: 5,
            seed: 7,
        };
        let g = run_arctic(&params, true).graph.expect("tracking on");
        let bytes = encode_graph(&g).expect("no zoom");
        group.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            b.iter(|| decode_graph(bytes).expect("round trip").len())
        });
    }
    group.finish();
}

criterion_group!(benches, fig6a, fig6b, fig6c);
criterion_main!(benches);
