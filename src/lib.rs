//! # Lipstick — database-style workflow provenance for Pig Latin dataflows
//!
//! A from-scratch Rust reproduction of *"Putting Lipstick on Pig:
//! Enabling Database-style Workflow Provenance"* (Amsterdamer, Davidson,
//! Deutch, Milo, Stoyanovich, Tannen — VLDB 2011).
//!
//! This facade crate re-exports the whole system:
//!
//! - [`nrel`]: nested relational (bag) data model;
//! - [`core`]: provenance semirings, the provenance graph, and the graph
//!   transformations (ZoomIn / ZoomOut, deletion propagation, subgraph
//!   and dependency queries);
//! - [`piglatin`]: the Pig Latin fragment — parser, planner, and a
//!   bag-semantics evaluator instrumented for provenance capture;
//! - [`proql`]: ProQL, the declarative provenance query language
//!   (lexer → parser → cost-aware planner → executor) over provenance
//!   graphs;
//! - [`serve`]: the ProQL network frontend — a concurrent line-protocol
//!   and HTTP server over a shared session, with a plan-keyed,
//!   epoch-invalidated result cache;
//! - [`workflow`]: modules with state, workflow DAGs, sequential and
//!   parallel execution;
//! - [`storage`]: the provenance log (Tracker → disk → Query Processor);
//! - [`workflowgen`]: the WorkflowGen benchmark workloads (Car
//!   dealerships, Arctic stations).
//!
//! See `README.md` for a tour, `examples/` for runnable end-to-end
//! demonstrations, and `crates/bench` for the harness regenerating the
//! paper's Figures 5–7.

pub use lipstick_core as core;
pub use lipstick_nrel as nrel;
pub use lipstick_piglatin as piglatin;
pub use lipstick_proql as proql;
pub use lipstick_serve as serve;
pub use lipstick_storage as storage;
pub use lipstick_workflow as workflow;
pub use lipstick_workflowgen as workflowgen;

/// Commonly used items, for `use lipstick::prelude::*`.
pub mod prelude {
    pub use lipstick_core::graph::stats::stats;
    pub use lipstick_core::query::{depends_on, propagate_deletion, subgraph, zoom_in, zoom_out};
    pub use lipstick_core::{GraphTracker, NoTracker, NodeId, NodeKind, ProvGraph, Tracker};
    pub use lipstick_nrel::{bag, tuple, Bag, DataType, Schema, Tuple, Value};
    pub use lipstick_piglatin::eval::{run_script, Env};
    pub use lipstick_piglatin::udf::UdfRegistry;
    pub use lipstick_proql::{QueryOutput, Session as ProqlSession};
    pub use lipstick_workflow::{
        execute_once, execute_sequence, ModuleSpec, Workflow, WorkflowBuilder, WorkflowInput,
        WorkflowState,
    };
}
