//! # lipstick-bench — the evaluation harness
//!
//! Reusable drivers behind both the Criterion benches (`benches/`) and
//! the `experiments` binary, which prints the series of every figure in
//! the paper's evaluation (§5.4–5.6). See `EXPERIMENTS.md` at the
//! repository root for the recorded results and the paper-vs-measured
//! comparison.

pub mod drivers;
pub mod replay;

pub use drivers::*;

/// The `k` visible nodes maximizing `size` — how the reach benches pick
/// worst-case walk roots (largest ancestor cones for upward queries,
/// largest descendant cones for heavy `UNION` branches).
pub fn top_nodes_by(
    graph: &lipstick_core::ProvGraph,
    k: usize,
    mut size: impl FnMut(lipstick_core::NodeId) -> usize,
) -> Vec<lipstick_core::NodeId> {
    let mut ids: Vec<lipstick_core::NodeId> = graph.iter_visible().map(|(id, _)| id).collect();
    ids.sort_by_key(|id| std::cmp::Reverse(size(*id)));
    ids.truncate(k);
    ids
}
