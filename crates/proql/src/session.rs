//! A ProQL session: a provenance graph (resident or paged), an
//! optional reachability index, and the parse → plan → execute loop.
//!
//! Shaped statements (`LIKE` predicates, `COUNT(…)`, `GROUP BY`,
//! `ORDER BY`, `LIMIT`) take the same paths as plain node-set queries:
//! both backends plan the shaping into the statement plan and apply it
//! through the shared `shape` module, so every entry point here —
//! `run`, `run_one`, `run_read`, `explain` — handles them uniformly
//! and `QueryOutput::Table` flows to callers like any other output.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lipstick_core::obs::{self, TraceCtx, Tracer};
use lipstick_core::query::{plan_zoom_out, QueryError, ReachIndex};
use lipstick_core::store::{compute_deletion_store, GraphStore};
use lipstick_core::{InvocationId, NodeId, ProvGraph, Role};
use lipstick_storage::{AppendLog, PagedLog};

use crate::ast::Statement;
use crate::error::{ProqlError, Result};
use crate::exec::{self, Parallelism};
use crate::paged;
use crate::parser::{parse_script, parse_statement};
use crate::plan::StmtPlan;
use crate::planner::{fuse_zooms, FusedStatement, PagedPlanner, Planner};
use crate::result::QueryOutput;

/// How the session holds its graph.
enum Backend {
    /// Fully decoded, mutable graph.
    Resident(ProvGraph),
    /// Footer-indexed v2 log; records fault in per query. Boxed: the
    /// log (fault cache, postings, instruments) dwarfs the resident
    /// variant's inline size.
    Paged(Box<PagedLog>),
    /// Sealed v2 base segment plus a WAL-style mutable tail: mutations
    /// commit as durable tail records instead of promoting, and
    /// `COMPACT` merges the tail into a fresh sealed base.
    Append(Box<AppendLog>),
}

/// The session's handles into the process-wide metrics registry,
/// resolved once at construction.
struct Instruments {
    statements: Arc<obs::Counter>,
    statement_us: Arc<obs::Histogram>,
    index_builds: Arc<obs::Counter>,
    repair_us: Arc<obs::Histogram>,
}

impl Instruments {
    fn get() -> Instruments {
        let reg = obs::registry();
        Instruments {
            statements: reg.counter(
                "lipstick_proql_statements_total",
                "ProQL statements executed (all sessions)",
            ),
            statement_us: reg.histogram(
                "lipstick_proql_statement_us",
                "Per-statement execution latency in microseconds",
                obs::LATENCY_BUCKETS_US,
            ),
            index_builds: reg.counter(
                "lipstick_proql_index_builds_total",
                "Reach-index builds from scratch (repairs excluded)",
            ),
            repair_us: reg.histogram(
                "lipstick_proql_index_repair_us",
                "In-place reach-index repair latency in microseconds",
                obs::LATENCY_BUCKETS_US,
            ),
        }
    }
}

/// Query-processor state: the graph under interrogation plus the
/// optional §5.1 reachability closure (bidirectional: descendant and
/// ancestor bitsets). Mutating statements (`DELETE`, `ZOOM`) **repair
/// the closure in place** — deletion subtracts the dead cone, zooms
/// remap the affected region — so an index built once stays exact and
/// indexed plans keep serving across mutations; `DROP INDEX` is the
/// only way to lose it.
///
/// Sessions come in two flavours. [`Session::new`]/[`Session::load`]
/// hold a **resident** graph. [`Session::open`] keeps a v2 log
/// **paged**: queries read only the records they touch, and the first
/// mutating statement transparently *promotes* the session to resident
/// by decoding the full log.
pub struct Session {
    backend: Backend,
    reach: Option<ReachIndex>,
    /// Branch-parallelism policy for set-operation execution; see
    /// [`Session::set_parallelism`].
    parallel: Parallelism,
    /// From-scratch closure builds performed so far (repairs excluded)
    /// — lets tests pin down that promotion and incremental
    /// maintenance never trigger a silent second rebuild.
    index_builds: u64,
    /// Records decoded by paged backends this session has since
    /// promoted away — keeps [`Session::records_read`] monotonic across
    /// promotion instead of silently resetting to zero.
    carried_reads: usize,
    /// Paged-to-resident promotions performed so far. Append-backend
    /// sessions commit mutations in place and never promote, which
    /// tests pin down as `promotions() == 0`.
    promotions: u64,
    /// When `Some`, mutations buffer their changed-node sets here
    /// instead of repairing the reach index per statement; see
    /// [`Session::begin_write_batch`].
    pending_repairs: Option<Vec<NodeId>>,
    /// Registry handles (statement counts/latency, index builds,
    /// repair latency).
    instruments: Instruments,
}

impl Session {
    /// A session over an in-memory graph.
    pub fn new(graph: ProvGraph) -> Session {
        Session {
            backend: Backend::Resident(graph),
            reach: None,
            parallel: Parallelism::default_for_host(),
            index_builds: 0,
            carried_reads: 0,
            promotions: 0,
            pending_repairs: None,
            instruments: Instruments::get(),
        }
    }

    /// Fully load a provenance log written by
    /// `lipstick_storage::write_graph` (v1 or v2) — the Query
    /// Processor's original, decode-everything first step.
    pub fn load(path: impl AsRef<Path>) -> Result<Session> {
        let graph = lipstick_storage::load_graph(path.as_ref())
            .map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session::new(graph))
    }

    /// Open a provenance log lazily. A v2 log (written by
    /// `lipstick_storage::write_graph_v2`) becomes a paged session that
    /// answers `MATCH`/`WHY`/`DEPENDS`/walks without materialising the
    /// graph; a v1 log has no footer and falls back to a full load.
    pub fn open(path: impl AsRef<Path>) -> Result<Session> {
        let data = std::fs::read(path.as_ref()).map_err(|e| ProqlError::Storage(e.to_string()))?;
        // Sniff the version first so the v1 fallback decodes the bytes
        // already in hand instead of re-reading the file.
        if lipstick_storage::log_version(&data) == Some(1) {
            let graph = lipstick_storage::decode_graph(&data)
                .map_err(|e| ProqlError::Storage(e.to_string()))?;
            return Ok(Session::new(graph));
        }
        let log = PagedLog::from_bytes(data).map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session {
            backend: Backend::Paged(Box::new(log)),
            reach: None,
            parallel: Parallelism::default_for_host(),
            index_builds: 0,
            carried_reads: 0,
            promotions: 0,
            pending_repairs: None,
            instruments: Instruments::get(),
        })
    }

    /// Open a v2 log with a streaming append write path: the sealed
    /// base segment stays paged, and mutations (`DELETE PROPAGATE`,
    /// zooms, [`Session::ingest`]) commit durable records to a
    /// `<path>.tail` sidecar instead of promoting the session to
    /// resident. A torn tail (crash mid-write) is truncated to its last
    /// whole record on open. `COMPACT` merges the tail back into a
    /// fresh sealed base segment.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Session> {
        let log = AppendLog::open(path.as_ref()).map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session::from_append_log(log))
    }

    /// [`Session::open_append`] through an explicit
    /// [`lipstick_storage::StorageIo`] implementation — the
    /// fault-injection harness opens sessions over a simulated disk
    /// this way.
    pub fn open_append_with_io(
        path: impl AsRef<Path>,
        io: std::sync::Arc<dyn lipstick_storage::StorageIo>,
    ) -> Result<Session> {
        let log = AppendLog::open_with_io(path.as_ref(), io)
            .map_err(|e| ProqlError::Storage(e.to_string()))?;
        Ok(Session::from_append_log(log))
    }

    fn from_append_log(log: AppendLog) -> Session {
        Session {
            backend: Backend::Append(Box::new(log)),
            reach: None,
            parallel: Parallelism::default_for_host(),
            index_builds: 0,
            carried_reads: 0,
            promotions: 0,
            pending_repairs: None,
            instruments: Instruments::get(),
        }
    }

    /// Flush the backend's durable state (the append backend's WAL
    /// tail). Commits already sync per record, so this is a barrier for
    /// graceful shutdown, not a durability requirement; resident and
    /// paged backends have nothing to flush and return `Ok`.
    pub fn sync_storage(&self) -> Result<()> {
        match &self.backend {
            Backend::Append(log) => log.sync().map_err(|e| ProqlError::Storage(e.to_string())),
            Backend::Resident(_) | Backend::Paged(_) => Ok(()),
        }
    }

    /// Cap the worker threads used for independent `UNION`/`INTERSECT`
    /// branches (1 disables branch parallelism). The default is one
    /// thread per core, capped at 8; results are byte-identical at any
    /// setting — only wall-clock changes.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallel.threads = threads.max(1);
    }

    /// Full control over the branch-parallelism policy (thread count
    /// *and* engagement threshold) — benches and tests use it to force
    /// the parallel path on small graphs.
    pub fn set_parallelism_policy(&mut self, policy: Parallelism) {
        self.parallel = Parallelism {
            threads: policy.threads.max(1),
            ..policy
        };
    }

    pub(crate) fn parallelism(&self) -> Parallelism {
        self.parallel
    }

    /// How many times a reach index was built from scratch in this
    /// session (incremental repairs don't count).
    pub fn index_builds(&self) -> u64 {
        self.index_builds
    }

    /// Is the session still paged (no full graph materialised)?
    pub fn is_paged(&self) -> bool {
        matches!(self.backend, Backend::Paged(_))
    }

    /// Does the session use the append backend (sealed base + WAL
    /// tail)?
    pub fn is_append(&self) -> bool {
        matches!(self.backend, Backend::Append(_))
    }

    /// The append backend, when the session has one — lets tests and
    /// servers inspect tail state (`tail_records`, `tail_len`) without
    /// widening the session API per field.
    pub fn append_log(&self) -> Option<&AppendLog> {
        match &self.backend {
            Backend::Append(log) => Some(log),
            _ => None,
        }
    }

    /// Paged-to-resident promotions this session has performed. Stays
    /// 0 for sessions born resident and for append-backend sessions,
    /// whose mutations commit in place.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Node records decoded by this session's paged backends — including
    /// any backend a promoting mutation has since replaced, so the
    /// figure is monotonic for the session's lifetime (it used to reset
    /// to zero on promotion). A session born resident reports 0.
    pub fn records_read(&self) -> usize {
        self.carried_reads
            + match &self.backend {
                Backend::Resident(_) => 0,
                Backend::Paged(log) => log.records_read(),
                Backend::Append(log) => log.records_read(),
            }
    }

    /// The resident graph, when there is one (`None` while paged or
    /// append-backed).
    pub fn resident_graph(&self) -> Option<&ProvGraph> {
        match &self.backend {
            Backend::Resident(g) => Some(g),
            Backend::Paged(_) | Backend::Append(_) => None,
        }
    }

    /// The resident graph.
    ///
    /// # Panics
    /// On a paged session — call [`Session::materialize`] first, or
    /// check [`Session::is_paged`].
    pub fn graph(&self) -> &ProvGraph {
        self.resident_graph()
            .expect("paged session has no resident graph; call materialize() first")
    }

    /// Decode the full log and switch to the resident backend. No-op if
    /// already resident; an error on an append session, whose whole
    /// point is committing mutations without promotion (`COMPACT`
    /// reclaims the tail instead). Returns the graph.
    pub fn materialize(&mut self) -> Result<&ProvGraph> {
        if matches!(self.backend, Backend::Append(_)) {
            return Err(ProqlError::Storage(
                "append sessions never promote to resident; run COMPACT to merge the tail".into(),
            ));
        }
        if let Backend::Paged(log) = &self.backend {
            let graph = log
                .decode_full()
                .map_err(|e| ProqlError::Storage(e.to_string()))?;
            // Dropping the log would silently zero `records_read`; bank
            // its figure first so the session's count stays monotonic.
            self.carried_reads += log.records_read();
            self.backend = Backend::Resident(graph);
            self.promotions += 1;
        }
        Ok(self.graph())
    }

    pub(crate) fn graph_mut(&mut self) -> &mut ProvGraph {
        match &mut self.backend {
            Backend::Resident(g) => g,
            Backend::Paged(_) | Backend::Append(_) => {
                unreachable!("mutating statements promote or take the append path first")
            }
        }
    }

    fn append_log_ref(&self) -> &AppendLog {
        match &self.backend {
            Backend::Append(log) => log,
            _ => unreachable!("append backend expected"),
        }
    }

    fn append_log_mut(&mut self) -> &mut AppendLog {
        match &mut self.backend {
            Backend::Append(log) => log,
            _ => unreachable!("append backend expected"),
        }
    }

    /// The session's reachability closure, when one is built — public
    /// so property tests can compare it against a fresh
    /// [`ReachIndex::build`] after mutation sequences.
    pub fn reach_index(&self) -> Option<&ReachIndex> {
        self.reach.as_ref()
    }

    pub fn has_reach_index(&self) -> bool {
        self.reach.is_some()
    }

    pub(crate) fn set_index(&mut self, index: ReachIndex) {
        self.reach = Some(index);
        // Per-session count (tests pin exact values) plus the
        // process-wide registry series.
        self.index_builds += 1;
        self.instruments.index_builds.inc();
    }

    /// Drop the reachability closure (`DROP INDEX`).
    pub(crate) fn invalidate_index(&mut self) {
        self.reach = None;
    }

    /// Repair the reachability closure in place after a mutation.
    /// `changed` must list every node whose visibility or adjacency the
    /// mutation touched (the executor's mutation arms compute it). In
    /// debug builds the repaired index is checked bit-for-bit against a
    /// fresh build — the incremental path must never drift.
    pub(crate) fn repair_index(&mut self, changed: &[NodeId]) {
        if let Some(pending) = self.pending_repairs.as_mut() {
            pending.extend_from_slice(changed);
            return;
        }
        self.flush_repair(changed);
    }

    /// Start buffering repair work: until [`Session::end_write_batch`],
    /// every mutation's changed-node set accumulates instead of
    /// repairing the reach index per statement. The server's
    /// group-commit leader wraps a whole writer batch in one
    /// begin/end pair, paying one repair (and one `repair_us`
    /// observation) per batch. Sound because [`ReachIndex::repair`]
    /// recomputes the affected region from the *current* graph state
    /// seeded by the changed set, so a single end-of-batch repair with
    /// the union of the per-statement sets lands on the same index.
    pub fn begin_write_batch(&mut self) {
        if self.pending_repairs.is_none() {
            self.pending_repairs = Some(Vec::new());
        }
    }

    /// Flush the buffered changed-node union in one repair pass and
    /// stop buffering. No-op if no batch is open.
    pub fn end_write_batch(&mut self) {
        if let Some(mut changed) = self.pending_repairs.take() {
            changed.sort_unstable();
            changed.dedup();
            if !changed.is_empty() {
                self.flush_repair(&changed);
            }
        }
    }

    fn flush_repair(&mut self, changed: &[NodeId]) {
        let Some(index) = self.reach.as_mut() else {
            return;
        };
        let start = Instant::now();
        match &self.backend {
            Backend::Resident(graph) => {
                index.repair(graph, changed);
                debug_assert!(
                    index.matches_fresh_build(graph),
                    "incremental reach-index repair diverged from a fresh build"
                );
            }
            Backend::Append(log) => {
                index.repair(log.as_ref(), changed);
                debug_assert!(
                    index.matches_fresh_build(log.as_ref()),
                    "incremental reach-index repair diverged from a fresh build"
                );
            }
            // Paged sessions never hold an index across mutations.
            Backend::Paged(_) => return,
        }
        self.instruments
            .repair_us
            .observe(start.elapsed().as_micros() as u64);
    }

    /// Does executing this statement require a resident, mutable graph?
    fn needs_resident(stmt: &Statement) -> bool {
        matches!(
            stmt,
            Statement::DeletePropagate(_)
                | Statement::ZoomOut(_)
                | Statement::ZoomIn(_)
                | Statement::BuildIndex
        )
    }

    /// Run a script: zero or more `;`-separated statements. Statements
    /// are planned one at a time against the current graph state (a
    /// `DELETE` changes what later statements see), with consecutive
    /// zooms fused first.
    pub fn run(&mut self, script: &str) -> Result<Vec<QueryOutput>> {
        let stmts = parse_script(script)?;
        let fused = fuse_zooms(stmts);
        let mut outputs = Vec::with_capacity(fused.len());
        for fs in &fused {
            outputs.push(self.run_fused(fs)?);
        }
        Ok(outputs)
    }

    /// Run exactly one statement.
    pub fn run_one(&mut self, statement: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(statement)?;
        self.run_stmt(&stmt)
    }

    /// Run one already-parsed statement, mutating the session where the
    /// statement calls for it — the exclusive-access counterpart of
    /// [`Session::run_read_stmt`].
    pub fn run_stmt(&mut self, stmt: &Statement) -> Result<QueryOutput> {
        self.run_fused(&FusedStatement {
            stmt: stmt.clone(),
            fused_from: 1,
        })
    }

    fn run_fused(&mut self, fs: &FusedStatement) -> Result<QueryOutput> {
        if self.is_paged() && Session::needs_resident(&fs.stmt) {
            self.materialize()?;
        }
        let start = Instant::now();
        let out = if self.is_append() {
            self.run_append_fused(fs)
        } else {
            match &self.backend {
                Backend::Resident(graph) => {
                    let plan = Planner::new(graph, self.reach.as_ref()).plan_fused(fs)?;
                    exec::execute(self, &plan)
                }
                Backend::Paged(log) => match &fs.stmt {
                    // Intercepted here: COMPACT is mutating (so it must
                    // not reach the paged read executor) but a no-op on
                    // a tail-less backend.
                    Statement::Compact => Ok(QueryOutput::Message(
                        "nothing to compact (no tail segment)".into(),
                    )),
                    stmt => run_paged(log.as_ref(), stmt, self.parallel, TraceCtx::disabled()),
                },
                Backend::Append(_) => unreachable!("handled above"),
            }
        };
        self.instruments.statements.inc();
        self.instruments
            .statement_us
            .observe(start.elapsed().as_micros() as u64);
        out
    }

    /// Execute one fused statement against the append backend.
    /// Read-only plans run through the paged executor (the append log
    /// is a [`GraphStore`]); mutating plans commit durable tail
    /// records and repair the reach index in place — the messages and
    /// error choices mirror the resident arms byte for byte, which the
    /// differential harness locks down.
    fn run_append_fused(&mut self, fs: &FusedStatement) -> Result<QueryOutput> {
        let plan = {
            let log = self.append_log_ref();
            contain_corruption(|| PagedPlanner::new(log).plan_fused(fs))?
        };
        match plan {
            StmtPlan::Delete(n) => {
                let cone = {
                    let log = self.append_log_ref();
                    contain_corruption(|| Ok(compute_deletion_store(log, n)?))?
                };
                self.append_log_mut()
                    .commit_tombstones(&cone)
                    .map_err(|e| ProqlError::Storage(e.to_string()))?;
                // Deletion only removes reachability: the changed set
                // is exactly the tombstoned cone.
                self.repair_index(&cone);
                Ok(QueryOutput::Deleted { nodes: cone })
            }
            StmtPlan::ZoomOut {
                modules,
                fused_from,
            } => {
                let plans = {
                    let log = self.append_log_ref();
                    let names: Vec<&str> = modules.iter().map(String::as_str).collect();
                    let zoomed: Vec<String> = log
                        .zoomed_out_modules()
                        .into_iter()
                        .map(String::from)
                        .collect();
                    contain_corruption(|| {
                        Ok(plan_zoom_out(log, &names, &zoomed, log.stash_count())?)
                    })?
                };
                let created = self
                    .append_log_mut()
                    .commit_zoom_out(plans)
                    .map_err(|e| ProqlError::Storage(e.to_string()))?;
                // Changed: everything each stash hid, the new
                // composites, and the i/o nodes the composites were
                // wired to (their adjacency gained edges).
                let mut changed = created.clone();
                {
                    let log = self.append_log_ref();
                    for m in &modules {
                        if let Some(stash) = log.stash_of(m) {
                            changed.extend_from_slice(&stash.hidden);
                        }
                    }
                    for &z in &created {
                        changed.extend(log.preds_of(z));
                        changed.extend(log.succs_of(z));
                    }
                }
                self.repair_index(&changed);
                let mut msg = format!(
                    "zoomed out {} module(s), {} composite node(s)",
                    modules.len(),
                    created.len()
                );
                if fused_from > 1 {
                    msg.push_str(&format!(" [fused from {fused_from} statements]"));
                }
                Ok(QueryOutput::Message(msg))
            }
            StmtPlan::ZoomIn {
                modules,
                fused_from,
            } => {
                let names: Vec<String> = match modules {
                    Some(ms) => ms,
                    None => self
                        .append_log_ref()
                        .zoomed_out_modules()
                        .into_iter()
                        .map(String::from)
                        .collect(),
                };
                if names.is_empty() {
                    return Ok(QueryOutput::Message("no modules are zoomed out".into()));
                }
                // Validate up front with the resident path's exact
                // error (the log's own refusal spells differently), and
                // capture the changed set before committing: ZoomIn
                // unlinks the composites, so their neighbours must be
                // read now.
                let mut changed: Vec<NodeId> = Vec::new();
                {
                    let log = self.append_log_ref();
                    let zoomed = log.zoomed_out_modules();
                    let mut seen = std::collections::HashSet::new();
                    for m in &names {
                        if !seen.insert(m.as_str()) || !zoomed.contains(&m.as_str()) {
                            return Err(QueryError::NotZoomedOut(m.clone()).into());
                        }
                    }
                    for m in &names {
                        if let Some(stash) = log.stash_of(m) {
                            changed.extend_from_slice(&stash.hidden);
                            for &z in &stash.zoom_nodes {
                                changed.push(z);
                                changed.extend(log.preds_of(z));
                                changed.extend(log.succs_of(z));
                            }
                        }
                    }
                }
                self.append_log_mut()
                    .commit_zoom_in(&names)
                    .map_err(|e| ProqlError::Storage(e.to_string()))?;
                self.repair_index(&changed);
                let mut msg = format!("zoomed back into {}", names.join(", "));
                if fused_from > 1 {
                    msg.push_str(&format!(" [fused from {fused_from} statements]"));
                }
                Ok(QueryOutput::Message(msg))
            }
            StmtPlan::BuildIndex => {
                if self.has_reach_index() {
                    return Ok(QueryOutput::Message(
                        "reach index already present (maintained in place); DROP INDEX first to \
                         force a rebuild"
                            .into(),
                    ));
                }
                let index = {
                    let log = self.append_log_ref();
                    contain_corruption(|| Ok(ReachIndex::build(log)))?
                };
                let bytes = index.memory_bytes();
                self.set_index(index);
                Ok(QueryOutput::Message(format!(
                    "reach index built ({bytes} bytes)"
                )))
            }
            StmtPlan::DropIndex => {
                self.invalidate_index();
                Ok(QueryOutput::Message("reach index dropped".into()))
            }
            StmtPlan::Compact => {
                let records = self.append_log_ref().tail_records();
                if records == 0 {
                    return Ok(QueryOutput::Message(
                        "nothing to compact (no tail segment)".into(),
                    ));
                }
                self.append_log_mut()
                    .compact()
                    .map_err(|e| ProqlError::Storage(e.to_string()))?;
                // Compaction preserves ids and visibility exactly, so
                // an existing reach index stays valid as-is.
                Ok(QueryOutput::Message(format!(
                    "compacted {records} tail record(s) into sealed segment"
                )))
            }
            read_only => {
                let log = self.append_log_ref();
                contain_corruption(|| {
                    paged::execute(log, &read_only, self.parallel, TraceCtx::disabled())
                })
            }
        }
    }

    /// Append a self-contained fragment graph — new workflow output
    /// from the Provenance Tracker — to the session, returning the ids
    /// its nodes received. On the append backend this commits one
    /// durable tail record and repairs the reach index in place; a
    /// paged session must promote first (the baseline the append bench
    /// measures against); a resident session splices the fragment into
    /// the graph arena. Fragments with zoomed-out modules are rejected
    /// on every backend, mirroring the storage layer's refusal.
    pub fn ingest(&mut self, fragment: &ProvGraph) -> Result<Vec<NodeId>> {
        if self.is_paged() {
            self.materialize()?;
        }
        let created = match &mut self.backend {
            Backend::Append(log) => log
                .commit_fragment(fragment)
                .map_err(|e| ProqlError::Storage(e.to_string()))?,
            Backend::Resident(graph) => {
                let zoomed = fragment.zoomed_out_modules();
                if !zoomed.is_empty() {
                    let names = zoomed.into_iter().map(String::from).collect();
                    return Err(ProqlError::Storage(
                        lipstick_storage::StorageError::ZoomedGraph(names).to_string(),
                    ));
                }
                let node_off = graph.len() as u32;
                let inv_off = graph.invocations().len() as u32;
                let mut created = Vec::with_capacity(fragment.len());
                for i in 0..fragment.len() {
                    let n = fragment.node(NodeId(i as u32));
                    let id = graph.add_node(n.kind.clone(), offset_role(n.role, inv_off));
                    if n.is_deleted() {
                        graph.set_node_deleted(id, true);
                    }
                    created.push(id);
                }
                // Second pass: a fragment edge may point at a later
                // fragment node, so every node must exist before wiring.
                for (i, &id) in created.iter().enumerate() {
                    let n = fragment.node(NodeId(i as u32));
                    for &p in n.preds() {
                        graph.add_edge(NodeId(p.0 + node_off), id);
                    }
                }
                for inv in fragment.invocations() {
                    graph.register_invocation(
                        inv.module.clone(),
                        inv.execution,
                        NodeId(inv.m_node.0 + node_off),
                    );
                }
                created
            }
            Backend::Paged(_) => unreachable!("materialized above"),
        };
        // Fragment edges are internal, so the changed set is exactly
        // the appended ids.
        self.repair_index(&created);
        Ok(created)
    }

    /// Run exactly one **read-only** statement through a shared
    /// reference — the execution path `lipstick-serve` fans out across
    /// a worker pool, with many `run_read` calls in flight against one
    /// session at once (the session is `Send + Sync`; wrap it in an
    /// `RwLock` and take the read side).
    ///
    /// Mutating statements (`DELETE PROPAGATE`, zooms, `BUILD INDEX`,
    /// `DROP INDEX`) fail with [`ProqlError::ReadOnly`]; route them
    /// through [`Session::run_one`] under exclusive access instead.
    /// Unlike the `&mut` paths, `run_read` never promotes a paged
    /// session: queries keep faulting in only the records they touch.
    pub fn run_read(&self, statement: &str) -> Result<QueryOutput> {
        let stmt = parse_statement(statement)?;
        self.run_read_stmt(&stmt)
    }

    /// [`Session::run_read`] for an already parsed statement.
    pub fn run_read_stmt(&self, stmt: &Statement) -> Result<QueryOutput> {
        self.run_read_stmt_traced(stmt, None)
    }

    /// [`Session::run_read_stmt`], recording plan/execute/per-operator
    /// spans into `tracer` when one is supplied — how `lipstick-serve`
    /// captures a [`lipstick_core::obs::QueryTrace`] per statement for
    /// its slow-query log. With `None` this is exactly
    /// [`Session::run_read_stmt`].
    pub fn run_read_stmt_traced(
        &self,
        stmt: &Statement,
        tracer: Option<&Tracer>,
    ) -> Result<QueryOutput> {
        self.run_read_stmt_with(stmt, tracer, None)
    }

    /// [`Session::run_read_stmt_traced`] with an optional deadline.
    /// Executors check it cooperatively at span boundaries (statement
    /// entry and each set-plan operator) and cancel with
    /// [`ProqlError::DeadlineExceeded`] once it passes — how
    /// `lipstick-serve` enforces `request_deadline_us`. Reads only:
    /// mutations never carry deadlines, so a statement is never
    /// abandoned half-applied.
    pub fn run_read_stmt_with(
        &self,
        stmt: &Statement,
        tracer: Option<&Tracer>,
        deadline: Option<Instant>,
    ) -> Result<QueryOutput> {
        if !stmt.is_read_only() {
            return Err(ProqlError::ReadOnly(stmt_summary(stmt)));
        }
        let ctx = tracer
            .map_or(TraceCtx::disabled(), TraceCtx::root)
            .with_deadline(deadline);
        let start = Instant::now();
        let out = match &self.backend {
            Backend::Resident(graph) => {
                let plan = {
                    let _span = ctx.span("plan");
                    Planner::new(graph, self.reach.as_ref()).plan(stmt)?
                };
                let span = ctx.span("execute");
                exec::execute_read(graph, self.reach_index(), &plan, self.parallel, span.ctx())
            }
            Backend::Paged(log) => run_paged(log.as_ref(), stmt, self.parallel, ctx),
            Backend::Append(log) => run_paged(log.as_ref(), stmt, self.parallel, ctx),
        };
        self.instruments.statements.inc();
        self.instruments
            .statement_us
            .observe(start.elapsed().as_micros() as u64);
        out
    }

    /// Plan a statement without executing it, against whichever backend
    /// the session currently has.
    pub fn plan(&self, stmt: &Statement) -> Result<StmtPlan> {
        match &self.backend {
            Backend::Resident(graph) => Planner::new(graph, self.reach.as_ref()).plan(stmt),
            // Planning faults records too (token resolution), so it
            // needs the same corruption containment as execution.
            Backend::Paged(log) => {
                contain_corruption(|| PagedPlanner::new(log.as_ref()).plan(stmt))
            }
            Backend::Append(log) => {
                contain_corruption(|| PagedPlanner::new(log.as_ref()).plan(stmt))
            }
        }
    }

    /// The physical plan for a statement, as `EXPLAIN` would print it.
    /// On a paged session this includes the records-read figures the
    /// footer postings predict.
    pub fn explain(&self, statement: &str) -> Result<String> {
        let stmt = parse_statement(statement)?;
        Ok(self.plan(&stmt)?.to_string())
    }

    /// Per-component heap breakdown of everything the session holds:
    /// the backend store (resident graph or paged log) and the reach
    /// closure. Groups are `"graph"`, `"paged_log"`, and `"reach"`;
    /// component names come from each structure's
    /// [`lipstick_core::obs::HeapSize`] breakdown, so this report, the
    /// `STATS` memory section, and the `lipstick_*_heap_bytes` gauges
    /// all sum the same numbers.
    pub fn memory_report(&self) -> Vec<MemoryComponent> {
        use lipstick_core::obs::HeapSize;
        let mut out = Vec::new();
        match &self.backend {
            Backend::Resident(g) => {
                out.extend(g.heap_breakdown().into_iter().map(|(k, v)| ("graph", k, v)));
            }
            Backend::Paged(log) => {
                out.extend(
                    log.heap_breakdown()
                        .into_iter()
                        .map(|(k, v)| ("paged_log", k, v)),
                );
            }
            // The append log reports its sealed base plus a
            // "tail_overlay" component; both land in the `paged_log`
            // gauge group so serve's heap gauges need no new names.
            Backend::Append(log) => {
                out.extend(
                    log.memory_breakdown()
                        .into_iter()
                        .map(|(k, v)| ("paged_log", k, v)),
                );
            }
        }
        if let Some(idx) = &self.reach {
            out.extend(
                idx.heap_breakdown()
                    .into_iter()
                    .map(|(k, v)| ("reach", k, v)),
            );
        }
        out
    }

    /// Total heap bytes held by the session (sum of
    /// [`Session::memory_report`]).
    pub fn heap_bytes(&self) -> usize {
        self.memory_report().iter().map(|(_, _, b)| *b).sum()
    }

    /// Statically analyze one statement against this session's schema
    /// **without executing it** — what `CHECK <stmt>` returns. Works on
    /// both backends; on a paged session only index-level facts (and
    /// the kind of an `EVAL` target) fault in, and the session is never
    /// promoted.
    pub fn check(&self, statement: &str) -> crate::analyze::Diagnostics {
        match &self.backend {
            Backend::Resident(graph) => crate::analyze::analyze(graph, statement),
            Backend::Paged(log) => analyze_contained(log.as_ref(), statement),
            Backend::Append(log) => analyze_contained(log.as_ref(), statement),
        }
    }
}

/// One heap component of a session: `(group, component, bytes)` —
/// e.g. `("graph", "adjacency", 81920)`.
pub type MemoryComponent = (&'static str, &'static str, usize);

/// Render a memory report for humans (the shell's `\mem` command):
/// one line per component plus a total, largest first.
pub fn render_memory_report(components: &[MemoryComponent]) -> String {
    use lipstick_core::obs::format_bytes;
    let total: usize = components.iter().map(|(_, _, b)| *b).sum();
    let mut sorted: Vec<&MemoryComponent> = components.iter().collect();
    sorted.sort_by_key(|(_, _, b)| std::cmp::Reverse(*b));
    let mut out = format!("session heap: {} ({total} B)\n", format_bytes(total));
    for (group, name, bytes) in sorted {
        out.push_str(&format!(
            "  {group}.{name}: {} ({bytes} B)\n",
            format_bytes(*bytes)
        ));
    }
    out
}

/// Plan and execute one statement against an on-disk store (paged or
/// append log). The footer only validates record *offsets*; a record
/// whose bytes are garbled is first noticed when a query faults it in,
/// deep inside infallible GraphStore accessors. Contain that panic here
/// so corrupt input surfaces as an error, never an abort — the same
/// contract every other corruption path honours.
fn run_paged<S: GraphStore + Sync>(
    store: &S,
    stmt: &Statement,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> Result<QueryOutput> {
    contain_corruption(|| {
        let plan = {
            let _span = ctx.span("plan");
            PagedPlanner::new(store).plan(stmt)?
        };
        let span = ctx.span("execute");
        paged::execute(store, &plan, par, span.ctx())
    })
}

/// `CHECK` analysis against an on-disk store, with corruption panics
/// folded into a synthetic `E001` diagnostic (the analyzer itself is
/// infallible, but faulting records in is not).
fn analyze_contained<S: GraphStore>(store: &S, statement: &str) -> crate::analyze::Diagnostics {
    contain_corruption(|| Ok(crate::analyze::analyze(store, statement))).unwrap_or_else(|e| {
        crate::analyze::Diagnostics {
            source: statement.to_string(),
            items: vec![crate::analyze::Diagnostic {
                code: "E001",
                severity: crate::analyze::Severity::Error,
                span: crate::lexer::Span::new(0, statement.len()),
                message: format!("analysis failed: {e}"),
                suggestion: None,
            }],
        }
    })
}

/// Run a paged planning/execution step, containing corruption panics
/// (see [`run_paged`]) so they surface as errors, never an abort or a
/// dead server worker.
fn contain_corruption<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("paged execution panicked");
        Err(ProqlError::Storage(format!(
            "corrupt provenance log: {msg}"
        )))
    })
}

/// Rebase a fragment-local role onto a session graph whose invocation
/// table already holds `by` entries — the resident mirror of the append
/// log's replay-time rebasing, so both ingest paths place a fragment's
/// nodes identically.
fn offset_role(role: Role, by: u32) -> Role {
    let off = |i: InvocationId| InvocationId(i.0 + by);
    match role {
        Role::WorkflowInput | Role::Free => role,
        Role::Invocation(i) => Role::Invocation(off(i)),
        Role::ModuleInput(i) => Role::ModuleInput(off(i)),
        Role::ModuleOutput(i) => Role::ModuleOutput(off(i)),
        Role::State(i) => Role::State(off(i)),
        Role::Intermediate(i) => Role::Intermediate(off(i)),
        Role::Zoom(i) => Role::Zoom(off(i)),
    }
}

/// The leading keyword(s) of a statement, for error messages.
fn stmt_summary(stmt: &Statement) -> String {
    match stmt {
        Statement::DeletePropagate(r) => format!("DELETE {r} PROPAGATE"),
        Statement::ZoomOut(_) => "ZOOM OUT".into(),
        Statement::ZoomIn(_) => "ZOOM IN".into(),
        Statement::BuildIndex => "BUILD INDEX".into(),
        Statement::DropIndex => "DROP INDEX".into(),
        Statement::Compact => "COMPACT".into(),
        _ => format!("{stmt:?}"),
    }
}

// `lipstick-serve` shares one session across a worker pool behind an
// `RwLock`; a backend that regresses to single-thread-only interior
// mutability must not compile.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};
