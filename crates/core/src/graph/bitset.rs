//! A minimal fixed-capacity bitset.
//!
//! Used as scratch space by graph traversals (deletion propagation,
//! subgraph queries, reachability) — dense node ids make a bitset both
//! smaller and faster than a hash set.

/// Fixed-capacity bitset over `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// All-zeros bitset able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Set bit `i`. Returns `true` if the bit was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        self.words[w] &= !(1u64 << b);
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Union in-place.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Clear all bits (keeps capacity).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Grow capacity to `new_capacity`; new bits start cleared. No-op
    /// if the set is already at least that large. Used by the reach
    /// index when mutations (ZoomOut) append nodes to the graph.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity > self.capacity {
            self.words.resize(new_capacity.div_ceil(64), 0);
            self.capacity = new_capacity;
        }
    }

    /// Heap bytes held by the word buffer (spare capacity included).
    pub fn heap_bytes(&self) -> usize {
        crate::obs::vec_alloc_bytes(&self.words)
    }

    /// Iterate over set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl crate::obs::HeapSize for BitSet {
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
        vec![("words", self.heap_bytes())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_novelty() {
        let mut b = BitSet::new(100);
        assert!(b.insert(5));
        assert!(!b.insert(5));
        assert!(b.contains(5));
        assert!(!b.contains(6));
    }

    #[test]
    fn count_and_iter_agree() {
        let mut b = BitSet::new(200);
        for i in [0, 63, 64, 127, 128, 199] {
            b.insert(i);
        }
        assert_eq!(b.count(), 6);
        let got: Vec<usize> = b.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn remove_and_clear() {
        let mut b = BitSet::new(10);
        b.insert(3);
        b.remove(3);
        assert!(!b.contains(3));
        b.insert(1);
        b.insert(2);
        b.clear();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(65);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(65));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let b = BitSet::new(10);
        assert!(!b.contains(1000));
    }

    #[test]
    fn grow_preserves_bits_and_extends_capacity() {
        let mut b = BitSet::new(10);
        b.insert(3);
        b.grow(200);
        assert_eq!(b.capacity(), 200);
        assert!(b.contains(3));
        b.insert(199);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 199]);
        // Growing smaller is a no-op.
        b.grow(50);
        assert_eq!(b.capacity(), 200);
        // A grown set equals a freshly built one with the same bits.
        let mut fresh = BitSet::new(200);
        fresh.insert(3);
        fresh.insert(199);
        assert_eq!(b, fresh);
    }
}
