//! Planning: name resolution and schema inference.
//!
//! `compile` turns a parsed [`Program`] into a [`Compiled`] plan whose
//! field references are resolved to positions and whose statements carry
//! inferred output schemas. Planning catches unknown aliases, unknown or
//! ambiguous field names, aggregate arguments that are not bag fields,
//! and under-specified `FLATTEN(udf(…))` items — all before any data is
//! touched.

use std::collections::HashMap;
use std::sync::Arc;

use lipstick_core::agg::AggOp;
use lipstick_nrel::{DataType, Field, Schema};

use crate::ast::{Expr, FieldRef, GenItem, GroupKeys, Op, Program, Stmt, UnaryOp};
use crate::error::{PigError, Result};
use crate::expr::CExpr;
use crate::udf::UdfRegistry;

/// Aliases in scope → their schemas.
pub type SchemaMap = HashMap<String, Arc<Schema>>;

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub stmts: Vec<CStmt>,
    /// Schema of every alias defined by the program (outputs only, not
    /// the pre-bound environment).
    pub schemas: SchemaMap,
}

/// A compiled statement.
#[derive(Debug, Clone)]
pub struct CStmt {
    pub alias: String,
    pub op: COp,
    pub schema: Arc<Schema>,
}

/// Compiled operators.
#[derive(Debug, Clone)]
pub enum COp {
    Filter {
        input: String,
        cond: CExpr,
    },
    Foreach {
        input: String,
        items: Vec<CGenItem>,
    },
    Group {
        input: String,
        /// `None` encodes `GROUP … ALL`.
        keys: Option<Vec<CExpr>>,
        /// Input alias (names the nested bag field).
        input_alias: String,
    },
    Cogroup {
        inputs: Vec<(String, Vec<CExpr>)>,
    },
    Join {
        left: (String, Vec<CExpr>),
        right: (String, Vec<CExpr>),
    },
    Union {
        inputs: Vec<String>,
    },
    Distinct {
        input: String,
    },
    Order {
        input: String,
        keys: Vec<lipstick_nrel::sort::SortKey>,
    },
    Limit {
        input: String,
        count: usize,
    },
}

/// Compiled `GENERATE` items. Each carries `arity`, the number of output
/// fields it contributes.
#[derive(Debug, Clone)]
pub enum CGenItem {
    /// Scalar expression. `source_field` is set when the expression is a
    /// bare field reference, enabling value-node propagation.
    Expr {
        expr: CExpr,
        source_field: Option<usize>,
    },
    /// Every input field.
    Star { arity: usize },
    /// Aggregate over a bag field. `attr` is the position inside the bag
    /// tuples being aggregated; `None` means COUNT-style whole tuples.
    Agg {
        op: AggOp,
        bag: usize,
        attr: Option<usize>,
    },
    /// Scalar UDF call. `arg_fields` are the input-tuple positions the
    /// arguments read (black-box provenance inputs).
    Udf {
        name: String,
        args: Vec<CExpr>,
        arg_fields: Vec<usize>,
        returns_value: bool,
    },
    /// `FLATTEN(bagfield)`.
    FlattenField { bag: usize, arity: usize },
    /// `FLATTEN(udf(…))`.
    FlattenUdf {
        name: String,
        args: Vec<CExpr>,
        arg_fields: Vec<usize>,
        returns_value: bool,
        arity: usize,
    },
}

impl CGenItem {
    /// Number of output fields contributed.
    pub fn arity(&self) -> usize {
        match self {
            CGenItem::Expr { .. } | CGenItem::Agg { .. } | CGenItem::Udf { .. } => 1,
            CGenItem::Star { arity }
            | CGenItem::FlattenField { arity, .. }
            | CGenItem::FlattenUdf { arity, .. } => *arity,
        }
    }
}

/// Compile a program against the schemas of pre-bound environment
/// relations.
pub fn compile(program: &Program, env: &SchemaMap, udfs: &UdfRegistry) -> Result<Compiled> {
    let mut scope: SchemaMap = env.clone();
    let mut out = Compiled {
        stmts: Vec::with_capacity(program.stmts.len()),
        schemas: SchemaMap::new(),
    };
    for stmt in &program.stmts {
        let (op, schema) = compile_stmt(stmt, &scope, udfs).map_err(|e| contextualize(e, stmt))?;
        let schema = Arc::new(schema);
        scope.insert(stmt.alias.clone(), schema.clone());
        out.schemas.insert(stmt.alias.clone(), schema.clone());
        out.stmts.push(CStmt {
            alias: stmt.alias.clone(),
            op,
            schema,
        });
    }
    Ok(out)
}

fn contextualize(e: PigError, stmt: &Stmt) -> PigError {
    match e {
        PigError::Plan(m) => PigError::Plan(format!(
            "in statement '{}' (line {}): {m}",
            stmt.alias, stmt.line
        )),
        other => other,
    }
}

fn lookup<'a>(scope: &'a SchemaMap, alias: &str) -> Result<&'a Arc<Schema>> {
    scope
        .get(alias)
        .ok_or_else(|| PigError::UnknownAlias(alias.to_string()))
}

fn compile_stmt(stmt: &Stmt, scope: &SchemaMap, udfs: &UdfRegistry) -> Result<(COp, Schema)> {
    match &stmt.op {
        Op::Filter { input, cond } => {
            let schema = lookup(scope, input)?;
            let cond = compile_expr(cond, schema)?;
            Ok((
                COp::Filter {
                    input: input.clone(),
                    cond,
                },
                (**schema).clone(),
            ))
        }
        Op::Foreach { input, items } => {
            let schema = lookup(scope, input)?;
            let mut citems = Vec::with_capacity(items.len());
            let mut fields = Vec::new();
            for item in items {
                let (citem, item_fields) = compile_gen_item(item, schema, udfs)?;
                fields.extend(item_fields);
                citems.push(citem);
            }
            Ok((
                COp::Foreach {
                    input: input.clone(),
                    items: citems,
                },
                Schema::new(fields),
            ))
        }
        Op::Group { input, keys } => {
            let schema = lookup(scope, input)?;
            let (ckeys, key_type) = match keys {
                GroupKeys::All => (None, DataType::Str),
                GroupKeys::By(exprs) => {
                    let compiled: Vec<CExpr> = exprs
                        .iter()
                        .map(|e| compile_expr(e, schema))
                        .collect::<Result<_>>()?;
                    let ty = group_key_type(&compiled, schema);
                    (Some(compiled), ty)
                }
            };
            let out_schema = Schema::new(vec![
                Field::named("group", key_type),
                Field::named(input.clone(), DataType::Bag(Arc::new((**schema).clone()))),
            ]);
            Ok((
                COp::Group {
                    input: input.clone(),
                    keys: ckeys,
                    input_alias: input.clone(),
                },
                out_schema,
            ))
        }
        Op::Cogroup { inputs } => {
            let mut compiled = Vec::with_capacity(inputs.len());
            let mut fields = Vec::with_capacity(inputs.len() + 1);
            let mut key_type = DataType::Any;
            let mut seen = std::collections::HashSet::new();
            for (alias, keys) in inputs {
                if !seen.insert(alias.clone()) {
                    return Err(PigError::Plan(format!(
                        "COGROUP input '{alias}' appears twice"
                    )));
                }
                let schema = lookup(scope, alias)?;
                let ckeys: Vec<CExpr> = keys
                    .iter()
                    .map(|e| compile_expr(e, schema))
                    .collect::<Result<_>>()?;
                if key_type == DataType::Any {
                    key_type = group_key_type(&ckeys, schema);
                }
                fields.push(Field::named(
                    alias.clone(),
                    DataType::Bag(Arc::new((**schema).clone())),
                ));
                compiled.push((alias.clone(), ckeys));
            }
            let mut all_fields = vec![Field::named("group", key_type)];
            all_fields.extend(fields);
            Ok((COp::Cogroup { inputs: compiled }, Schema::new(all_fields)))
        }
        Op::Join { left, right } => {
            let ls = lookup(scope, &left.0)?;
            let rs = lookup(scope, &right.0)?;
            if left.0 == right.0 {
                return Err(PigError::Plan(format!(
                    "self-join of '{}' requires distinct aliases",
                    left.0
                )));
            }
            let lkeys: Vec<CExpr> = left
                .1
                .iter()
                .map(|e| compile_expr(e, ls))
                .collect::<Result<_>>()?;
            let rkeys: Vec<CExpr> = right
                .1
                .iter()
                .map(|e| compile_expr(e, rs))
                .collect::<Result<_>>()?;
            let out_schema = ls.qualified(&left.0).concat(&rs.qualified(&right.0));
            Ok((
                COp::Join {
                    left: (left.0.clone(), lkeys),
                    right: (right.0.clone(), rkeys),
                },
                out_schema,
            ))
        }
        Op::Union { inputs } => {
            let first = lookup(scope, &inputs[0])?;
            for alias in &inputs[1..] {
                let s = lookup(scope, alias)?;
                if s.arity() != first.arity() {
                    return Err(PigError::Plan(format!(
                        "UNION inputs '{}' and '{alias}' have different arities ({} vs {})",
                        inputs[0],
                        first.arity(),
                        s.arity()
                    )));
                }
            }
            Ok((
                COp::Union {
                    inputs: inputs.clone(),
                },
                (**first).clone(),
            ))
        }
        Op::Distinct { input } => {
            let schema = lookup(scope, input)?;
            Ok((
                COp::Distinct {
                    input: input.clone(),
                },
                (**schema).clone(),
            ))
        }
        Op::Order { input, keys } => {
            let schema = lookup(scope, input)?;
            let mut ckeys = Vec::with_capacity(keys.len());
            for (field, asc) in keys {
                let pos = resolve_field(field, schema)?;
                ckeys.push(lipstick_nrel::sort::SortKey {
                    position: pos,
                    direction: if *asc {
                        lipstick_nrel::sort::Direction::Asc
                    } else {
                        lipstick_nrel::sort::Direction::Desc
                    },
                });
            }
            Ok((
                COp::Order {
                    input: input.clone(),
                    keys: ckeys,
                },
                (**schema).clone(),
            ))
        }
        Op::Limit { input, count } => {
            let schema = lookup(scope, input)?;
            Ok((
                COp::Limit {
                    input: input.clone(),
                    count: *count,
                },
                (**schema).clone(),
            ))
        }
    }
}

fn group_key_type(keys: &[CExpr], schema: &Schema) -> DataType {
    if keys.len() == 1 {
        infer_type(&keys[0], schema)
    } else {
        DataType::Tuple(Arc::new(Schema::new(
            keys.iter()
                .map(|k| Field::anon(infer_type(k, schema)))
                .collect(),
        )))
    }
}

fn resolve_field(r: &FieldRef, schema: &Schema) -> Result<usize> {
    match r {
        FieldRef::Positional(i) => {
            if *i < schema.arity() {
                Ok(*i)
            } else {
                Err(PigError::Plan(format!(
                    "positional ${i} out of range for schema {schema}"
                )))
            }
        }
        FieldRef::Named(n) => schema.resolve(n).map_err(|e| PigError::Plan(e.to_string())),
    }
}

/// Compile a scalar expression (aggregates/UDFs rejected here — they are
/// only legal as top-level GENERATE items).
fn compile_expr(e: &Expr, schema: &Schema) -> Result<CExpr> {
    match e {
        Expr::Lit(v) => Ok(CExpr::Lit(v.clone())),
        Expr::Field(r) => Ok(CExpr::Field(resolve_field(r, schema)?)),
        Expr::BagProject { bag, attr } => {
            let (bag, attr) = resolve_bag_attr(bag, Some(attr), schema)?;
            Ok(CExpr::BagProject {
                bag,
                attr: attr.expect("attr provided"),
            })
        }
        Expr::Unary { op, inner } => Ok(CExpr::Unary {
            op: *op,
            inner: Box::new(compile_expr(inner, schema)?),
        }),
        Expr::Binary { op, left, right } => Ok(CExpr::Binary {
            op: *op,
            left: Box::new(compile_expr(left, schema)?),
            right: Box::new(compile_expr(right, schema)?),
        }),
        Expr::IsNull { inner, negated } => Ok(CExpr::IsNull {
            inner: Box::new(compile_expr(inner, schema)?),
            negated: *negated,
        }),
        Expr::Agg { .. } => Err(PigError::Plan(
            "aggregates are only allowed as top-level GENERATE items".into(),
        )),
        Expr::Udf { .. } => Err(PigError::Plan(
            "UDF calls are only allowed as top-level GENERATE items (optionally under FLATTEN)"
                .into(),
        )),
    }
}

/// Resolve `bag[.attr]` for aggregate arguments: `bag` must be a
/// bag-typed field; `attr` (if given) resolves inside its tuple schema.
fn resolve_bag_attr(
    bag: &FieldRef,
    attr: Option<&FieldRef>,
    schema: &Schema,
) -> Result<(usize, Option<usize>)> {
    let bag_pos = resolve_field(bag, schema)?;
    let field = schema
        .field(bag_pos)
        .map_err(|e| PigError::Plan(e.to_string()))?;
    let DataType::Bag(elem) = &field.dtype else {
        return Err(PigError::Plan(format!(
            "field '{bag}' is not a bag (type {})",
            field.dtype
        )));
    };
    let attr_pos = match attr {
        None => None,
        Some(a) => Some(resolve_field(a, elem)?),
    };
    Ok((bag_pos, attr_pos))
}

fn infer_type(e: &CExpr, schema: &Schema) -> DataType {
    match e {
        CExpr::Lit(v) => match v {
            lipstick_nrel::Value::Bool(_) => DataType::Bool,
            lipstick_nrel::Value::Int(_) => DataType::Int,
            lipstick_nrel::Value::Float(_) => DataType::Float,
            lipstick_nrel::Value::Str(_) => DataType::Str,
            _ => DataType::Any,
        },
        CExpr::Field(i) => schema
            .field(*i)
            .map(|f| f.dtype.clone())
            .unwrap_or(DataType::Any),
        CExpr::BagProject { .. } => DataType::Any,
        CExpr::Unary { op, inner } => match op {
            UnaryOp::Not => DataType::Bool,
            UnaryOp::Neg => infer_type(inner, schema),
        },
        CExpr::Binary { op, left, right } => {
            if op.is_comparison() || op.is_logic() {
                DataType::Bool
            } else {
                match (infer_type(left, schema), infer_type(right, schema)) {
                    (DataType::Int, DataType::Int) => DataType::Int,
                    (DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
                        DataType::Float
                    }
                    _ => DataType::Any,
                }
            }
        }
        CExpr::IsNull { .. } => DataType::Bool,
    }
}

fn agg_result_type(op: AggOp, bag_elem: &Schema, attr: Option<usize>) -> DataType {
    match op {
        AggOp::Count => DataType::Int,
        AggOp::Avg => DataType::Float,
        AggOp::Sum | AggOp::Min | AggOp::Max => attr
            .and_then(|a| bag_elem.field(a).ok())
            .map(|f| f.dtype.clone())
            .unwrap_or(DataType::Any),
    }
}

fn compile_gen_item(
    item: &GenItem,
    schema: &Schema,
    udfs: &UdfRegistry,
) -> Result<(CGenItem, Vec<Field>)> {
    match item {
        GenItem::Star => Ok((
            CGenItem::Star {
                arity: schema.arity(),
            },
            schema.fields().to_vec(),
        )),
        GenItem::Expr { expr, alias } => compile_named_item(expr, alias.as_deref(), schema, udfs),
        GenItem::Flatten { expr, aliases } => match expr {
            Expr::Field(r) => {
                let (bag_pos, _) = resolve_bag_attr(r, None, schema)?;
                let DataType::Bag(elem) = &schema.field(bag_pos).expect("resolved").dtype else {
                    unreachable!("resolve_bag_attr checked bag type")
                };
                let mut fields = elem.fields().to_vec();
                apply_aliases(&mut fields, aliases)?;
                Ok((
                    CGenItem::FlattenField {
                        bag: bag_pos,
                        arity: fields.len(),
                    },
                    fields,
                ))
            }
            Expr::Udf { name, args } => {
                let udf = udfs.get(name)?;
                let cargs: Vec<CExpr> = args
                    .iter()
                    .map(|a| compile_expr(a, schema))
                    .collect::<Result<_>>()?;
                let arg_fields = referenced_fields_of(&cargs);
                let mut fields = match &udf.output_schema {
                    Some(s) => s.fields().to_vec(),
                    None if !aliases.is_empty() => aliases
                        .iter()
                        .map(|a| Field::named(a.clone(), DataType::Any))
                        .collect(),
                    None => {
                        return Err(PigError::Plan(format!(
                            "FLATTEN({name}(…)) needs AS aliases or a declared UDF output schema"
                        )))
                    }
                };
                apply_aliases(&mut fields, aliases)?;
                Ok((
                    CGenItem::FlattenUdf {
                        name: name.clone(),
                        args: cargs,
                        arg_fields,
                        returns_value: udf.returns_value,
                        arity: fields.len(),
                    },
                    fields,
                ))
            }
            other => Err(PigError::Plan(format!(
                "FLATTEN expects a bag field or a UDF call, found {other:?}"
            ))),
        },
    }
}

fn compile_named_item(
    expr: &Expr,
    alias: Option<&str>,
    schema: &Schema,
    udfs: &UdfRegistry,
) -> Result<(CGenItem, Vec<Field>)> {
    match expr {
        Expr::Agg { op, arg } => {
            let (bag, attr) = match &**arg {
                Expr::Field(r) => resolve_bag_attr(r, None, schema)?,
                Expr::BagProject { bag, attr } => resolve_bag_attr(bag, Some(attr), schema)?,
                other => {
                    return Err(PigError::Plan(format!(
                        "{op} expects a bag field or bag.attr argument, found {other:?}"
                    )))
                }
            };
            let DataType::Bag(elem) = &schema.field(bag).expect("resolved").dtype else {
                unreachable!("resolve_bag_attr checked bag type")
            };
            let dtype = agg_result_type(*op, elem, attr);
            let name = alias.map(String::from);
            Ok((
                CGenItem::Agg { op: *op, bag, attr },
                vec![Field { name, dtype }],
            ))
        }
        Expr::Udf { name, args } => {
            let udf = udfs.get(name)?;
            let cargs: Vec<CExpr> = args
                .iter()
                .map(|a| compile_expr(a, schema))
                .collect::<Result<_>>()?;
            let arg_fields = referenced_fields_of(&cargs);
            Ok((
                CGenItem::Udf {
                    name: name.clone(),
                    args: cargs,
                    arg_fields,
                    returns_value: udf.returns_value,
                },
                vec![Field {
                    name: alias.map(String::from),
                    dtype: DataType::Any,
                }],
            ))
        }
        other => {
            let cexpr = compile_expr(other, schema)?;
            let source_field = match &cexpr {
                CExpr::Field(i) => Some(*i),
                _ => None,
            };
            // A bare field keeps its name unless aliased.
            let name = alias.map(String::from).or_else(|| {
                source_field.and_then(|i| schema.field(i).ok().and_then(|f| f.name.clone()))
            });
            let dtype = infer_type(&cexpr, schema);
            Ok((
                CGenItem::Expr {
                    expr: cexpr,
                    source_field,
                },
                vec![Field { name, dtype }],
            ))
        }
    }
}

fn apply_aliases(fields: &mut [Field], aliases: &[String]) -> Result<()> {
    if aliases.is_empty() {
        return Ok(());
    }
    if aliases.len() != fields.len() {
        return Err(PigError::Plan(format!(
            "FLATTEN AS lists {} names but produces {} fields",
            aliases.len(),
            fields.len()
        )));
    }
    for (f, a) in fields.iter_mut().zip(aliases) {
        f.name = Some(a.clone());
    }
    Ok(())
}

fn referenced_fields_of(exprs: &[CExpr]) -> Vec<usize> {
    let mut out: Vec<usize> = exprs.iter().flat_map(|e| e.referenced_fields()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use lipstick_nrel::Value;

    fn cars_env() -> SchemaMap {
        let mut m = SchemaMap::new();
        m.insert(
            "Cars".into(),
            Arc::new(Schema::named(&[
                ("CarId", DataType::Str),
                ("Model", DataType::Str),
            ])),
        );
        m.insert(
            "Requests".into(),
            Arc::new(Schema::named(&[
                ("UserId", DataType::Str),
                ("BidId", DataType::Str),
                ("Model", DataType::Str),
            ])),
        );
        m
    }

    #[test]
    fn filter_keeps_schema() {
        let p = parse("B = FILTER Cars BY Model == 'Civic';").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        assert_eq!(c.stmts[0].schema.arity(), 2);
        assert_eq!(c.stmts[0].schema.resolve("Model").unwrap(), 1);
    }

    #[test]
    fn foreach_renames_and_types() {
        let p = parse("M = FOREACH Cars GENERATE Model AS m, 1 AS one;").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        let s = &c.stmts[0].schema;
        assert_eq!(s.resolve("m").unwrap(), 0);
        assert_eq!(s.field(1).unwrap().dtype, DataType::Int);
    }

    #[test]
    fn group_produces_nested_schema() {
        let p = parse("G = GROUP Cars BY Model;").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        let s = &c.stmts[0].schema;
        assert_eq!(s.resolve("group").unwrap(), 0);
        assert_eq!(s.field(0).unwrap().dtype, DataType::Str);
        match &s.field(1).unwrap().dtype {
            DataType::Bag(elem) => assert_eq!(elem.arity(), 2),
            other => panic!("expected bag, got {other}"),
        }
        assert_eq!(s.resolve("Cars").unwrap(), 1);
    }

    #[test]
    fn count_over_group_resolves() {
        let p = parse(
            "G = GROUP Cars BY Model; N = FOREACH G GENERATE group AS Model, COUNT(Cars) AS n;",
        )
        .unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        let s = &c.stmts[1].schema;
        assert_eq!(s.resolve("Model").unwrap(), 0);
        assert_eq!(s.field(1).unwrap().dtype, DataType::Int);
        match &c.stmts[1].op {
            COp::Foreach { items, .. } => {
                assert!(matches!(
                    items[1],
                    CGenItem::Agg {
                        op: AggOp::Count,
                        bag: 1,
                        attr: None
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_with_attr_path() {
        let p = parse("G = GROUP Cars ALL; S = FOREACH G GENERATE MIN(Cars.Model);").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        match &c.stmts[1].op {
            COp::Foreach { items, .. } => {
                assert!(matches!(
                    items[0],
                    CGenItem::Agg {
                        op: AggOp::Min,
                        bag: 1,
                        attr: Some(1)
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        // MIN over a chararray attr types as chararray
        assert_eq!(c.stmts[1].schema.field(0).unwrap().dtype, DataType::Str);
    }

    #[test]
    fn join_qualifies_both_sides() {
        let p = parse("I = JOIN Cars BY Model, Requests BY Model;").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        let s = &c.stmts[0].schema;
        assert_eq!(s.arity(), 5);
        assert_eq!(s.resolve("Cars::Model").unwrap(), 1);
        assert_eq!(s.resolve("Requests::Model").unwrap(), 4);
        assert_eq!(s.resolve("CarId").unwrap(), 0);
        // unqualified 'Model' is now ambiguous
        assert!(compile(
            &parse("I = JOIN Cars BY Model, Requests BY Model; X = FOREACH I GENERATE Model;")
                .unwrap(),
            &cars_env(),
            &UdfRegistry::new()
        )
        .is_err());
    }

    #[test]
    fn self_join_rejected() {
        let p = parse("I = JOIN Cars BY Model, Cars BY Model;").unwrap();
        assert!(compile(&p, &cars_env(), &UdfRegistry::new()).is_err());
    }

    #[test]
    fn union_arity_check() {
        let p = parse("U = UNION Cars, Requests;").unwrap();
        let err = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap_err();
        assert!(err.to_string().contains("different arities"));
    }

    #[test]
    fn unknown_alias_and_field() {
        let p = parse("B = FILTER Nope BY x == 1;").unwrap();
        assert!(matches!(
            compile(&p, &cars_env(), &UdfRegistry::new()),
            Err(PigError::UnknownAlias(_))
        ));
        let p = parse("B = FILTER Cars BY Price > 3;").unwrap();
        let err = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap_err();
        assert!(err.to_string().contains("Price"));
    }

    #[test]
    fn flatten_udf_requires_schema_or_aliases() {
        let mut udfs = UdfRegistry::new();
        udfs.register("Mk", false, None, |_| Ok(Value::Null));
        let p = parse("X = FOREACH Cars GENERATE FLATTEN(Mk(Model));").unwrap();
        assert!(compile(&p, &cars_env(), &udfs).is_err());
        let p = parse("X = FOREACH Cars GENERATE FLATTEN(Mk(Model)) AS (a, b);").unwrap();
        let c = compile(&p, &cars_env(), &udfs).unwrap();
        assert_eq!(c.stmts[0].schema.arity(), 2);
        assert_eq!(c.stmts[0].schema.resolve("a").unwrap(), 0);
    }

    #[test]
    fn flatten_bag_splices_element_schema() {
        let p =
            parse("G = GROUP Cars BY Model; F = FOREACH G GENERATE group, FLATTEN(Cars);").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        let s = &c.stmts[1].schema;
        assert_eq!(s.arity(), 3);
        assert_eq!(s.resolve("CarId").unwrap(), 1);
    }

    #[test]
    fn aggregate_not_allowed_nested() {
        let p = parse("G = GROUP Cars ALL; X = FOREACH G GENERATE COUNT(Cars) + 1;").unwrap();
        let err = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap_err();
        assert!(err.to_string().contains("top-level"));
    }

    #[test]
    fn order_key_resolution() {
        let p = parse("S = ORDER Cars BY Model DESC, $0;").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        match &c.stmts[0].op {
            COp::Order { keys, .. } => {
                assert_eq!(keys[0].position, 1);
                assert_eq!(keys[1].position, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn statement_chaining_sees_prior_aliases() {
        let p = parse("A = FILTER Cars BY true; B = FILTER A BY Model == 'x';").unwrap();
        let c = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap();
        assert_eq!(c.stmts.len(), 2);
    }

    #[test]
    fn plan_errors_cite_statement() {
        let p = parse("Bad = FOREACH Cars GENERATE Price;").unwrap();
        let err = compile(&p, &cars_env(), &UdfRegistry::new()).unwrap_err();
        assert!(err.to_string().contains("'Bad'"), "err: {err}");
    }
}
