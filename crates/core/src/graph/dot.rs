//! Graphviz (DOT) export of provenance graphs.
//!
//! Rendering conventions follow the paper's Figure 2(a) legend: p-nodes
//! are ellipses, v-nodes are boxes, module invocation nodes are bold,
//! zoomed-out composites are rounded rectangles. Only visible nodes are
//! exported, so exporting after ZoomOut / deletion shows the transformed
//! graph.

use std::fmt::Write as _;

use super::node::{NodeId, NodeKind};
use super::ProvGraph;

/// Render the visible part of the graph as a DOT digraph.
pub fn to_dot(graph: &ProvGraph, name: &str) -> String {
    let members: Vec<NodeId> = graph.iter_visible().map(|(id, _)| id).collect();
    to_dot_induced(graph, name, &members)
}

/// Render the subgraph induced by `members` (visible nodes only; edges
/// are kept when both endpoints are in the set). Query results —
/// subgraph extractions, bounded traversals, ProQL node sets — render
/// through this so they stay viewable in Graphviz.
pub fn to_dot_induced(graph: &ProvGraph, name: &str, members: &[NodeId]) -> String {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
    let in_set = |id: NodeId| members.binary_search(&id).is_ok();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=BT;");
    for &id in members {
        let node = graph.node(id);
        if !node.is_visible() {
            continue;
        }
        let label = escape(&node.kind.label());
        let (shape, extra) = match &node.kind {
            NodeKind::Invocation => ("ellipse", ", style=bold"),
            NodeKind::Zoomed { .. } => ("box", ", style=rounded"),
            k if k.is_value_node() => ("box", ""),
            NodeKind::WorkflowInput { .. } => ("ellipse", ", style=filled, fillcolor=lightgrey"),
            _ => ("ellipse", ""),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}: {}\", shape={}{}];",
            id.0, id, label, shape, extra
        );
    }
    for &id in members {
        let node = graph.node(id);
        if !node.is_visible() {
            continue;
        }
        for &succ in node.succs() {
            if graph.node(succ).is_visible() && in_set(succ) {
                let _ = writeln!(out, "  n{} -> n{};", id.0, succ.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let p = g.add_plus(&[a, b]);
        let dot = to_dot(&g, "test");
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("n0 ->"));
        assert!(dot.contains(&format!("n{} [label=", p.0)));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn hidden_nodes_are_not_exported() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let p = g.add_plus(&[a]);
        g.node_mut(p).deleted = true;
        let dot = to_dot(&g, "t");
        assert!(!dot.contains("->"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g = ProvGraph::new();
        g.add_base("to\"ken");
        let dot = to_dot(&g, "t");
        assert!(dot.contains("to\\\"ken"));
    }

    #[test]
    fn induced_render_keeps_only_in_set_edges() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let p = g.add_plus(&[a, b]);
        // Exclude b: its node and its edge to p must not appear.
        let dot = to_dot_induced(&g, "t", &[a, p]);
        assert!(dot.contains(&format!("n{} -> n{}", a.0, p.0)));
        assert!(!dot.contains(&format!("n{} [", b.0)));
        assert!(!dot.contains(&format!("n{} ->", b.0)));
    }
}
