//! Integration tests reproducing the paper's worked examples end to
//! end, across all crates.

use lipstick::core::query::{depends_on, propagate_deletion, zoom_in, zoom_out};
use lipstick::core::semiring::eval::{eval_expr, Valuation};
use lipstick::core::semiring::natural::Natural;
use lipstick::core::{GraphTracker, NodeKind};
use lipstick::prelude::*;
use lipstick::workflowgen::dealers::{self, DealersParams};

/// Build and run the dealership workflow once, returning the graph.
fn dealer_graph(num_exec: usize, seed: u64) -> lipstick::core::ProvGraph {
    let params = DealersParams {
        num_cars: 48,
        num_exec,
        seed,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("run");
    tracker.finish()
}

#[test]
fn intro_question_which_cars_affected_the_winning_bid() {
    // "Which cars affected the computation of this winning bid?"
    let g = dealer_graph(1, 3);
    // The winning-bid path: the Mxor output or Magg outputs; take the
    // last module output and collect its base-tuple ancestors.
    let output = g
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .last()
        .unwrap();
    let anc = lipstick::core::query::subgraph::ancestors(&g, output).unwrap();
    let car_ancestors = anc
        .iter()
        .filter(|id| {
            matches!(&g.node(**id).kind, NodeKind::BaseTuple { token }
                if token.as_str().starts_with('C'))
        })
        .count();
    let all_cars = g
        .iter_visible()
        .filter(|(_, n)| {
            matches!(&n.kind, NodeKind::BaseTuple { token }
                if token.as_str().starts_with('C'))
        })
        .count();
    // fine-grained: only the requested model's cars participate
    assert!(car_ancestors > 0, "the bid depends on some cars");
    assert!(
        car_ancestors < all_cars,
        "coarse-grained would implicate all {all_cars} cars; got {car_ancestors}"
    );
}

#[test]
fn intro_question_would_the_dealer_still_have_made_a_sale() {
    // "Had this car not been present, would its dealer still have made
    // a sale?" — deletion propagation on a graph with a sale.
    let params = DealersParams {
        num_cars: 48,
        num_exec: 30,
        seed: 2,
    };
    let mut tracker = GraphTracker::new();
    let (_, _, outcome) = dealers::run(&params, &mut tracker).expect("run");
    let g = tracker.finish();
    if outcome.purchased.is_none() {
        return; // this seed didn't sell; the deletion scenarios below
                // are covered by other tests
    }
    // The sold-car output node:
    let sale_output = g
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .last()
        .unwrap();
    // Deleting the entire first request kills the sale.
    let first_request = g
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, NodeKind::WorkflowInput { .. }))
        .map(|(id, _)| id)
        .unwrap();
    let (_, report) = propagate_deletion(&g, first_request).unwrap();
    // The sale happened in the *last* execution; deleting execution 0's
    // request does not necessarily kill it — but dependency queries
    // answer either way without crashing.
    let _ = report;
    let _ = depends_on(&g, sale_output, first_request).unwrap();
}

#[test]
fn zoom_out_everything_gives_opm_style_view() {
    let g0 = dealer_graph(2, 5);
    let mut g = g0.clone();
    let mut modules: Vec<String> = (1..=4).map(|k| format!("Mdealer{k}")).collect();
    for m in ["Mreq", "Mand", "Magg", "Mchoice", "Mxor", "Mcar"] {
        modules.push(m.to_string());
    }
    let refs: Vec<&str> = modules.iter().map(String::as_str).collect();
    zoom_out(&mut g, &refs).unwrap();
    // The coarse view contains only workflow-level node kinds.
    for (_, n) in g.iter_visible() {
        assert!(
            matches!(
                n.kind,
                NodeKind::WorkflowInput { .. }
                    | NodeKind::Invocation
                    | NodeKind::ModuleInput
                    | NodeKind::ModuleOutput
                    | NodeKind::Zoomed { .. }
            ),
            "fine-grained kind visible after full ZoomOut: {:?}",
            n.kind
        );
    }
    zoom_in(&mut g, &refs).unwrap();
    assert_eq!(g.visible_signature(), g0.visible_signature());
}

#[test]
fn storage_round_trip_preserves_queryability() {
    let g = dealer_graph(2, 7);
    let bytes = lipstick::storage::encode_graph(&g).unwrap();
    let mut loaded = lipstick::storage::decode_graph(&bytes).unwrap();
    assert_eq!(g.visible_signature(), loaded.visible_signature());
    // Zoom and deletion still work on the loaded graph.
    zoom_out(&mut loaded, &["Mdealer2"]).unwrap();
    zoom_in(&mut loaded, &["Mdealer2"]).unwrap();
    assert_eq!(g.visible_signature(), loaded.visible_signature());
    let some_base = loaded
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .unwrap();
    propagate_deletion(&loaded, some_base).unwrap();
}

#[test]
fn counting_semiring_certifies_bag_multiplicities() {
    // End-to-end homomorphism check on a standalone Pig script: the
    // multiplicity of each distinct output tuple equals the sum of its
    // rows' provenance evaluated in ℕ with all tokens = 1.
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_tokens(
        "R",
        Schema::named(&[("a", DataType::Int)]),
        vec![tuple![1i64], tuple![1i64], tuple![2i64]],
        &mut tracker,
    )
    .unwrap();
    env.bind_with_tokens(
        "S",
        Schema::named(&[("a", DataType::Int)]),
        vec![tuple![1i64], tuple![2i64], tuple![2i64]],
        &mut tracker,
    )
    .unwrap();
    run_script(
        "U = UNION R, S; J = JOIN R BY a, S BY a; P = FOREACH J GENERATE R::a;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    let p = env.relation("P").unwrap().clone();
    let g = tracker.finish();
    // multiplicities: a=1 joins 2×1=2 ways; a=2 joins 1×2=2 ways
    for key in [1i64, 2] {
        let target = tuple![key];
        let mult: u64 = p
            .rows
            .iter()
            .filter(|r| r.tuple == target)
            .map(|r| eval_expr(&g.expr_of(r.ann.prov), &Valuation::<Natural>::ones()).0)
            .sum();
        assert_eq!(mult, 2, "key {key}");
    }
}

#[test]
fn def_4_1_matches_tags_on_real_workflow_graphs() {
    let g = dealer_graph(2, 9);
    lipstick::core::graph::validate::check_intermediate_tags(&g).unwrap();
    lipstick::core::graph::validate::check_structure(&g).unwrap();
}

#[test]
fn facade_prelude_is_usable() {
    // Compile-time check that the prelude exposes the advertised API.
    let mut tracker = NoTracker;
    let mut env: Env<()> = Env::new();
    env.bind_with_tokens(
        "T",
        Schema::named(&[("x", DataType::Int)]),
        vec![tuple![5i64]],
        &mut tracker,
    )
    .unwrap();
    run_script(
        "O = FILTER T BY x > 1;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )
    .unwrap();
    assert_eq!(env.relation("O").unwrap().len(), 1);
}
