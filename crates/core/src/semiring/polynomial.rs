//! Canonical N\[X\] provenance polynomials.

use std::collections::BTreeMap;
use std::fmt;

use super::expr::{ProvExpr, Token};
use super::Semiring;

/// A monomial: tokens with positive integer exponents, e.g. `x²·y`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(BTreeMap<Token, u32>);

impl Monomial {
    /// The empty monomial (the constant 1).
    pub fn unit() -> Self {
        Monomial(BTreeMap::new())
    }

    /// A single token.
    pub fn token(t: Token) -> Self {
        let mut m = BTreeMap::new();
        m.insert(t, 1);
        Monomial(m)
    }

    /// Multiply two monomials (exponents add).
    pub fn times(&self, other: &Monomial) -> Monomial {
        let mut m = self.0.clone();
        for (t, e) in &other.0 {
            *m.entry(t.clone()).or_insert(0) += e;
        }
        Monomial(m)
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// Token → exponent pairs.
    pub fn factors(&self) -> impl Iterator<Item = (&Token, u32)> {
        self.0.iter().map(|(t, e)| (t, *e))
    }

    /// Does the monomial mention `t`?
    pub fn mentions(&self, t: &Token) -> bool {
        self.0.contains_key(t)
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, (t, e)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{t}")?;
            } else {
                write!(f, "{t}^{e}")?;
            }
        }
        Ok(())
    }
}

/// An element of N\[X\]: a finite formal sum of monomials with natural
/// coefficients. This is the *free* commutative semiring over X — the
/// most general provenance annotation, from which every other semiring's
/// answer is derived by homomorphism (see [`super::eval`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    terms: BTreeMap<Monomial, u64>,
}

impl Polynomial {
    /// A single token as a polynomial.
    pub fn token(t: impl Into<Token>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::token(t.into()), 1);
        Polynomial { terms }
    }

    /// A natural-number constant.
    pub fn constant(n: u64) -> Self {
        let mut terms = BTreeMap::new();
        if n > 0 {
            terms.insert(Monomial::unit(), n);
        }
        Polynomial { terms }
    }

    /// The monomial → coefficient map.
    pub fn terms(&self) -> &BTreeMap<Monomial, u64> {
        &self.terms
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The size of the fully expanded polynomial: Σ over terms of
    /// (coefficient-is-counted-once + monomial degree). Used by the
    /// representation ablation against graph node counts.
    pub fn expanded_size(&self) -> usize {
        self.terms.keys().map(|m| 1 + m.degree() as usize).sum()
    }

    /// Expand a δ-free [`ProvExpr`] to its canonical polynomial.
    ///
    /// Returns `None` if the expression contains δ, which has no
    /// polynomial normal form (δ is kept symbolic in graphs).
    pub fn from_expr(e: &ProvExpr) -> Option<Polynomial> {
        match e {
            ProvExpr::Zero => Some(Polynomial::zero()),
            ProvExpr::One => Some(Polynomial::one()),
            ProvExpr::Tok(t) => Some(Polynomial::token(t.clone())),
            ProvExpr::Sum(v) => {
                let mut acc = Polynomial::zero();
                for p in v {
                    acc = acc.plus(&Polynomial::from_expr(p)?);
                }
                Some(acc)
            }
            ProvExpr::Prod(v) => {
                let mut acc = Polynomial::one();
                for p in v {
                    acc = acc.times(&Polynomial::from_expr(p)?);
                }
                Some(acc)
            }
            ProvExpr::Delta(_) => None,
        }
    }

    /// Substitute 0 for `t` — the polynomial counterpart of deletion
    /// propagation: every monomial mentioning `t` vanishes.
    pub fn delete_token(&self, t: &Token) -> Polynomial {
        Polynomial {
            terms: self
                .terms
                .iter()
                .filter(|(m, _)| !m.mentions(t))
                .map(|(m, c)| (m.clone(), *c))
                .collect(),
        }
    }
}

impl Semiring for Polynomial {
    fn zero() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    fn one() -> Self {
        Polynomial::constant(1)
    }

    fn plus(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            *terms.entry(m.clone()).or_insert(0) += c;
        }
        Polynomial { terms }
    }

    fn times(&self, other: &Self) -> Self {
        let mut terms: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                *terms.entry(ma.times(mb)).or_insert(0) += ca * cb;
            }
        }
        Polynomial { terms }
    }

    /// δ has no canonical polynomial form; within N\[X\] we approximate it
    /// as the identity (the graph and [`ProvExpr`] forms keep δ exact).
    fn delta(&self) -> Self {
        self.clone()
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 {
                write!(f, "{c}")?;
                if m.degree() > 0 {
                    write!(f, "·")?;
                }
                if m.degree() > 0 {
                    write!(f, "{m}")?;
                }
            } else {
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(s: &str) -> Polynomial {
        Polynomial::token(Token::new(s))
    }

    #[test]
    fn join_produces_products() {
        // (a + b) · c = a·c + b·c
        let p = tok("a").plus(&tok("b")).times(&tok("c"));
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.to_string(), "a·c + b·c");
    }

    #[test]
    fn self_join_squares() {
        let p = tok("a").times(&tok("a"));
        assert_eq!(p.to_string(), "a^2");
    }

    #[test]
    fn union_sums_coefficients() {
        let p = tok("a").plus(&tok("a"));
        assert_eq!(p.to_string(), "2·a");
    }

    #[test]
    fn from_expr_matches_manual() {
        let e = ProvExpr::prod(vec![
            ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]),
            ProvExpr::tok("c"),
        ]);
        let p = Polynomial::from_expr(&e).unwrap();
        assert_eq!(p, tok("a").plus(&tok("b")).times(&tok("c")));
    }

    #[test]
    fn from_expr_rejects_delta() {
        let e = ProvExpr::delta(ProvExpr::tok("a"));
        assert!(Polynomial::from_expr(&e).is_none());
    }

    #[test]
    fn delete_token_kills_mentioning_monomials() {
        let p = tok("a").times(&tok("b")).plus(&tok("c"));
        let q = p.delete_token(&Token::new("a"));
        assert_eq!(q.to_string(), "c");
        let r = p.delete_token(&Token::new("c"));
        assert_eq!(r.to_string(), "a·b");
    }

    #[test]
    fn constant_zero_is_zero() {
        assert!(Polynomial::constant(0).is_zero());
        assert_eq!(Polynomial::constant(0), Polynomial::zero());
    }

    #[test]
    fn expanded_size_grows_with_distribution() {
        // (a+b)·(c+d) has 4 monomials of degree 2 → expanded 12
        let p = tok("a").plus(&tok("b")).times(&tok("c").plus(&tok("d")));
        assert_eq!(p.num_terms(), 4);
        assert_eq!(p.expanded_size(), 12);
    }

    #[test]
    fn semiring_laws_hold_on_samples() {
        let a = tok("x").plus(&Polynomial::constant(2));
        let b = tok("y").times(&tok("x"));
        let c = tok("z");
        crate::semiring::laws::check_laws(a, b, c);
    }
}
