//! ProQL planned-vs-naive execution (fig7-style, §5.1's trade-offs).
//!
//! - `proql_depends`: dependency tests via deletion propagation vs the
//!   planner's reach-index prefilter. With the closure built, negative
//!   answers become O(1) lookups, so the indexed plan must win.
//! - `proql_match`: `MATCH … WHERE module = …` as a naive full sweep +
//!   post-filter vs the planner's invocation-table-driven module scan
//!   with the predicate pushed into the traversal.
//! - `proql_descendants`: unbounded descendant walks, BFS vs closure
//!   lookup.
//! - `proql_ancestors`: the upward mirror — unbounded ancestor walks,
//!   BFS vs the transposed (ancestor) closure the bidirectional index
//!   added.
//! - `proql_cold_start`: a module-filtered `MATCH` against an on-disk
//!   log, full decode (`Session::load`) vs the v2 footer index
//!   (`Session::open`). The paged path reads only the module's postings
//!   records, so it must win on a ≥10k-node log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipstick_bench::run_dealers;
use lipstick_core::{NodeId, ProvGraph};
use lipstick_proql::Session;
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::DealersParams;

fn dealers_graph(num_exec: usize) -> ProvGraph {
    let params = DealersParams {
        num_cars: 200,
        num_exec,
        seed: 1_000_003,
    };
    run_dealers(&params, true).graph.expect("tracking on")
}

/// Roots × targets pairs exercised by the dependency benches.
fn depends_pairs(g: &ProvGraph) -> Vec<(NodeId, NodeId)> {
    let roots = g.top_fanout_nodes(4);
    let targets: Vec<NodeId> = g.iter_visible().map(|(id, _)| id).take(8).collect();
    roots
        .iter()
        .flat_map(|&r| targets.iter().map(move |&t| (t, r)))
        .collect()
}

fn proql_depends(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_depends");
    group.sample_size(10);
    let g = dealers_graph(10);
    let pairs = depends_pairs(&g);
    let stmts: Vec<String> = pairs
        .iter()
        .map(|(n, m)| format!("DEPENDS(#{}, #{})", n.0, m.0))
        .collect();

    let mut plain = Session::new(g.clone());
    group.bench_function(BenchmarkId::new("propagation", g.len()), |b| {
        b.iter(|| {
            stmts
                .iter()
                .filter(|s| plain.run_one(s).unwrap().bool_value().unwrap())
                .count()
        })
    });

    let mut indexed = Session::new(g.clone());
    indexed.run_one("BUILD INDEX").unwrap();
    group.bench_function(BenchmarkId::new("reach_prefilter", g.len()), |b| {
        b.iter(|| {
            stmts
                .iter()
                .filter(|s| indexed.run_one(s).unwrap().bool_value().unwrap())
                .count()
        })
    });
    group.finish();
}

fn proql_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_match");
    group.sample_size(10);
    let g = dealers_graph(10);
    let module = g.invocations()[0].module.clone();

    // Naive: sweep every visible node, post-filter on the module.
    group.bench_function(BenchmarkId::new("naive_fullscan", g.len()), |b| {
        b.iter(|| {
            g.iter_visible()
                .filter(|(_, n)| {
                    n.role
                        .invocation()
                        .is_some_and(|inv| g.invocation(inv).module == module)
                })
                .count()
        })
    });

    let mut session = Session::new(g.clone());
    let stmt = format!("MATCH nodes WHERE module = '{module}'");
    group.bench_function(BenchmarkId::new("module_scan", g.len()), |b| {
        b.iter(|| session.run_one(&stmt).unwrap().nodes().unwrap().len())
    });
    group.finish();
}

fn proql_descendants(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_descendants");
    group.sample_size(10);
    let g = dealers_graph(10);
    let stmts: Vec<String> = g
        .top_fanout_nodes(8)
        .into_iter()
        .map(|r| format!("DESCENDANTS OF #{}", r.0))
        .collect();

    let mut bfs = Session::new(g.clone());
    group.bench_function(BenchmarkId::new("bfs", g.len()), |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| bfs.run_one(s).unwrap().nodes().unwrap().len())
                .sum::<usize>()
        })
    });

    let mut indexed = Session::new(g.clone());
    indexed.run_one("BUILD INDEX").unwrap();
    group.bench_function(BenchmarkId::new("reach_index", g.len()), |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| indexed.run_one(s).unwrap().nodes().unwrap().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn proql_ancestors(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_ancestors");
    group.sample_size(10);
    let g = dealers_graph(10);
    // Deepest nodes (largest ancestor cones), found via a throwaway
    // index; the benched statements then run on fresh sessions.
    let index = lipstick_core::query::ReachIndex::build(&g);
    let roots = lipstick_bench::top_nodes_by(&g, 8, |id| index.ancestor_count(id));
    let stmts: Vec<String> = roots
        .iter()
        .map(|r| format!("ANCESTORS OF #{}", r.0))
        .collect();

    let mut bfs = Session::new(g.clone());
    group.bench_function(BenchmarkId::new("bfs", g.len()), |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| bfs.run_one(s).unwrap().nodes().unwrap().len())
                .sum::<usize>()
        })
    });

    let mut indexed = Session::new(g.clone());
    indexed.run_one("BUILD INDEX").unwrap();
    group.bench_function(BenchmarkId::new("reach_index", g.len()), |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| indexed.run_one(s).unwrap().nodes().unwrap().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn proql_cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("proql_cold_start");
    group.sample_size(10);
    // Grow the workload until the log holds at least 10k nodes, so the
    // cold-start gap is measured at a size where it matters.
    let mut num_exec = 10;
    let g = loop {
        let g = dealers_graph(num_exec);
        if g.len() >= 10_000 || num_exec >= 160 {
            break g;
        }
        num_exec *= 2;
    };
    assert!(g.len() >= 10_000, "workload too small: {} nodes", g.len());
    let dir = std::env::temp_dir().join("lipstick-bench-cold-start");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dealers.lpstk");
    write_graph_v2(&g, &path).unwrap();
    let module = g.invocations()[0].module.clone();
    let stmt = format!("MATCH nodes WHERE module = '{module}'");

    // Baseline sanity: both paths agree on the answer.
    let expect = Session::load(&path)
        .unwrap()
        .run_one(&stmt)
        .unwrap()
        .nodes()
        .unwrap()
        .len();

    group.bench_function(BenchmarkId::new("full_load_match", g.len()), |b| {
        b.iter(|| {
            let mut s = Session::load(&path).unwrap();
            let n = s.run_one(&stmt).unwrap().nodes().unwrap().len();
            assert_eq!(n, expect);
            n
        })
    });
    let total = g.len();
    group.bench_function(BenchmarkId::new("indexed_open_match", g.len()), |b| {
        b.iter(|| {
            let mut s = Session::open(&path).unwrap();
            let n = s.run_one(&stmt).unwrap().nodes().unwrap().len();
            assert_eq!(n, expect);
            assert!(
                s.records_read() < total,
                "lazy path must not decode the log"
            );
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    proql_depends,
    proql_match,
    proql_descendants,
    proql_ancestors,
    proql_cold_start
);
criterion_main!(benches);
