//! Workflow execution tests: reference semantics, state threading,
//! provenance capture, and sequential/parallel agreement.

use std::sync::Arc;

use lipstick_core::graph::validate::{check_intermediate_tags, check_structure};
use lipstick_core::graph::{GraphTracker, NoTracker};
use lipstick_core::query::{propagate_deletion, zoom_in, zoom_out};
use lipstick_core::{NodeKind, Role};
use lipstick_nrel::{tuple, Bag, DataType, Schema, Value};
use lipstick_piglatin::udf::UdfRegistry;

use crate::dag::{Workflow, WorkflowBuilder};
use crate::exec::{execute_once, execute_sequence, WorkflowInput, WorkflowState};
use crate::module::ModuleSpec;
use crate::parallel::execute_once_parallel;

/// A two-stage workflow: source module forwards readings; sink module
/// keeps a running minimum using its state.
fn min_chain() -> (Workflow, UdfRegistry) {
    let readings = Schema::named(&[("Temp", DataType::Float)]);
    let source = Arc::new(ModuleSpec {
        name: "Msrc".into(),
        input_schema: vec![("Readings".into(), readings.clone())],
        state_schema: vec![],
        output_schema: vec![("Out".into(), readings.clone())],
        q_state: String::new(),
        q_out: "Out = FILTER Readings BY Temp > -9000.0;".into(),
    });
    let sink = Arc::new(ModuleSpec {
        name: "Mmin".into(),
        input_schema: vec![("Out".into(), readings.clone())],
        state_schema: vec![("History".into(), readings.clone())],
        output_schema: vec![("Best".into(), readings.clone())],
        q_state: "History = UNION History, Out;".into(),
        q_out: "G = GROUP History ALL; Best = FOREACH G GENERATE MIN(History.Temp) AS Temp;".into(),
    });
    let mut b = WorkflowBuilder::new();
    let s = b.add_node("src", source);
    let m = b.add_node("min", sink);
    b.add_edge(s, m, &["Out"]);
    (b.build().unwrap(), UdfRegistry::new())
}

fn input_with(temps: &[f64]) -> WorkflowInput {
    WorkflowInput::new().provide(
        "src",
        "Readings",
        temps.iter().map(|t| tuple![*t]).collect(),
    )
}

#[test]
fn single_execution_produces_output() {
    let (wf, udfs) = min_chain();
    let mut tracker = NoTracker;
    let mut state = WorkflowState::empty(&wf);
    let out = execute_once(
        &wf,
        &input_with(&[3.0, -2.0, 7.0]),
        &mut state,
        &mut tracker,
        &udfs,
        0,
    )
    .unwrap();
    let best = out.relation("min", "Best").unwrap();
    assert_eq!(best.rows[0].tuple, tuple![-2.0f64]);
    // state accumulated three readings
    assert_eq!(state.relation(&wf, "Mmin", "History").unwrap().len(), 3);
}

#[test]
fn state_threads_across_executions() {
    let (wf, udfs) = min_chain();
    let mut tracker = NoTracker;
    let mut state = WorkflowState::empty(&wf);
    let inputs = vec![
        input_with(&[5.0]),
        input_with(&[9.0]),
        input_with(&[1.0]),
        input_with(&[4.0]),
    ];
    let outs = execute_sequence(&wf, &inputs, &mut state, &mut tracker, &udfs).unwrap();
    let bests: Vec<Value> = outs
        .iter()
        .map(|o| {
            o.relation("min", "Best").unwrap().rows[0]
                .tuple
                .get(0)
                .unwrap()
                .clone()
        })
        .collect();
    // running minimum: 5, 5, 1, 1
    assert_eq!(
        bests,
        vec![
            Value::Float(5.0),
            Value::Float(5.0),
            Value::Float(1.0),
            Value::Float(1.0)
        ]
    );
    assert_eq!(state.total_tuples(), 4);
}

#[test]
fn provenance_capture_structure() {
    let (wf, udfs) = min_chain();
    let mut tracker = GraphTracker::new();
    let mut state = WorkflowState::empty(&wf);
    execute_sequence(
        &wf,
        &[input_with(&[5.0]), input_with(&[1.0])],
        &mut state,
        &mut tracker,
        &udfs,
    )
    .unwrap();
    let g = tracker.finish();
    check_structure(&g).unwrap();
    check_intermediate_tags(&g).unwrap();
    // 2 executions × 2 modules = 4 invocations
    assert_eq!(g.invocations().len(), 4);
    assert_eq!(g.invocations_of("Msrc").len(), 2);
    // workflow inputs, i/o/s nodes present
    let mut kinds = std::collections::HashSet::new();
    for (_, n) in g.iter_visible() {
        kinds.insert(std::mem::discriminant(&n.kind));
    }
    for want in [
        NodeKind::WorkflowInput { token: "x".into() },
        NodeKind::Invocation,
        NodeKind::ModuleInput,
        NodeKind::ModuleOutput,
        NodeKind::StateUnit,
        NodeKind::Plus,
        NodeKind::Delta,
        NodeKind::AggResult {
            op: lipstick_core::agg::AggOp::Min,
        },
    ] {
        assert!(
            kinds.contains(&std::mem::discriminant(&want)),
            "missing node kind {want:?}"
        );
    }
}

#[test]
fn second_execution_output_depends_on_first_input() {
    // The running minimum after E1 depends on E0's reading via state.
    let (wf, udfs) = min_chain();
    let mut tracker = GraphTracker::new();
    let mut state = WorkflowState::empty(&wf);
    execute_sequence(
        &wf,
        &[input_with(&[1.0]), input_with(&[5.0])],
        &mut state,
        &mut tracker,
        &udfs,
    )
    .unwrap();
    let g = tracker.finish();
    // Find E1's Best output o-node: invocation of "min" with execution 1.
    let min_inv_e1 = g
        .invocations_of("Mmin")
        .into_iter()
        .find(|i| g.invocation(*i).execution == 1)
        .unwrap();
    let o_node = g
        .iter_visible()
        .find(|(_, n)| n.role == Role::ModuleOutput(min_inv_e1))
        .map(|(id, _)| id)
        .unwrap();
    let expr = g.expr_of(o_node).to_string();
    assert!(
        expr.contains("I0.src.Readings.0"),
        "E1 output must reach back to E0's input through module state: {expr}"
    );
}

#[test]
fn zoom_roundtrip_on_executed_workflow() {
    let (wf, udfs) = min_chain();
    let mut tracker = GraphTracker::new();
    let mut state = WorkflowState::empty(&wf);
    execute_sequence(
        &wf,
        &[input_with(&[2.0]), input_with(&[8.0])],
        &mut state,
        &mut tracker,
        &udfs,
    )
    .unwrap();
    let mut g = tracker.finish();
    let before = g.visible_signature();
    zoom_out(&mut g, &["Mmin", "Msrc"]).unwrap();
    // coarse view: no intermediate nodes remain
    assert!(g
        .iter_visible()
        .all(|(_, n)| !matches!(n.role, Role::Intermediate(_))));
    zoom_in(&mut g, &["Msrc", "Mmin"]).unwrap();
    assert_eq!(g.visible_signature(), before);
}

#[test]
fn deletion_of_input_propagates_through_module() {
    let (wf, udfs) = min_chain();
    let mut tracker = GraphTracker::new();
    let mut state = WorkflowState::empty(&wf);
    let out = execute_once(&wf, &input_with(&[2.0]), &mut state, &mut tracker, &udfs, 0).unwrap();
    let best_prov = out.relation("min", "Best").unwrap().rows[0].ann.prov;
    let g = tracker.finish();
    let wf_input = g
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, NodeKind::WorkflowInput { .. }))
        .map(|(id, _)| id)
        .unwrap();
    let (_, report) = propagate_deletion(&g, wf_input).unwrap();
    assert!(
        report.contains(best_prov),
        "with a single reading, the best-temperature output depends on it"
    );
}

#[test]
fn missing_output_relation_is_reported() {
    let s = Schema::named(&[("x", DataType::Int)]);
    let broken = Arc::new(ModuleSpec {
        name: "B".into(),
        input_schema: vec![("In".into(), s.clone())],
        state_schema: vec![],
        output_schema: vec![("Out".into(), s)],
        q_state: String::new(),
        q_out: "Other = FILTER In BY true;".into(), // never binds Out
    });
    let mut b = WorkflowBuilder::new();
    b.add_node("b", broken);
    let wf = b.build().unwrap();
    let mut state = WorkflowState::empty(&wf);
    let err = execute_once(
        &wf,
        &WorkflowInput::new().provide("b", "In", vec![tuple![1i64]]),
        &mut state,
        &mut NoTracker,
        &UdfRegistry::new(),
        0,
    )
    .unwrap_err();
    assert!(err.to_string().contains("Out"));
}

#[test]
fn empty_workflow_input_is_allowed() {
    // An execution with an empty bid request still runs (§1: such
    // executions exist; coarse provenance would not even record them,
    // but ours records the invocations).
    let (wf, udfs) = min_chain();
    let mut tracker = GraphTracker::new();
    let mut state = WorkflowState::empty(&wf);
    let out = execute_once(
        &wf,
        &WorkflowInput::new(),
        &mut state,
        &mut tracker,
        &udfs,
        0,
    )
    .unwrap();
    // GROUP ALL over an empty history produces no groups, hence an
    // empty Best relation.
    let best = out.relation("min", "Best").unwrap();
    assert!(best.is_empty());
    let g = tracker.finish();
    assert_eq!(
        g.invocations().len(),
        2,
        "invocations recorded despite empty input"
    );
}

// ---------- parallel executor ----------

/// A fan-out workflow: one source feeding `k` stateless workers feeding
/// one aggregator — the shape of the dealers workflow.
fn fan_out(k: usize) -> (Workflow, UdfRegistry) {
    let s = Schema::named(&[("V", DataType::Int)]);
    let source = Arc::new(ModuleSpec {
        name: "Src".into(),
        input_schema: vec![("In".into(), s.clone())],
        state_schema: vec![],
        output_schema: vec![("Req".into(), s.clone())],
        q_state: String::new(),
        q_out: "Req = FILTER In BY true;".into(),
    });
    let worker = Arc::new(ModuleSpec {
        name: "Worker".into(),
        input_schema: vec![("Req".into(), s.clone())],
        state_schema: vec![("Seen".into(), s.clone())],
        output_schema: vec![("Val".into(), s.clone())],
        q_state: "Seen = UNION Seen, Req;".into(),
        q_out: "G = GROUP Seen ALL; Val = FOREACH G GENERATE COUNT(Seen) AS V;".into(),
    });
    let sink = Arc::new(ModuleSpec {
        name: "Sink".into(),
        input_schema: (0..k).map(|i| (format!("Val{i}"), s.clone())).collect(),
        state_schema: vec![],
        output_schema: vec![("Total".into(), s.clone())],
        q_state: String::new(),
        q_out: {
            let unions = (0..k)
                .map(|i| format!("Val{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            if k > 1 {
                format!(
                    "U = UNION {unions}; G = GROUP U ALL; Total = FOREACH G GENERATE SUM(U.V) AS V;"
                )
            } else {
                "G = GROUP Val0 ALL; Total = FOREACH G GENERATE SUM(Val0.V) AS V;".into()
            }
        },
    });
    // Worker output is named Val; the sink expects Val{i}. Use per-
    // instance worker specs whose output names differ.
    let mut b = WorkflowBuilder::new();
    let src = b.add_node("src", source);
    let sink_idx = b.add_node("sink", sink);
    for i in 0..k {
        let spec_i = Arc::new(ModuleSpec {
            name: format!("Worker{i}"),
            output_schema: vec![(format!("Val{i}"), s.clone())],
            q_out: format!("G = GROUP Seen ALL; Val{i} = FOREACH G GENERATE COUNT(Seen) AS V;"),
            ..(*worker).clone()
        });
        let w = b.add_node(format!("w{i}"), spec_i);
        b.add_edge(src, w, &["Req"]);
        let rel = format!("Val{i}");
        b.add_edge(w, sink_idx, &[rel.as_str()]);
    }
    (b.build().unwrap(), UdfRegistry::new())
}

#[test]
fn parallel_matches_sequential_data() {
    let (wf, udfs) = fan_out(4);
    let input = WorkflowInput::new().provide("src", "In", vec![tuple![1i64], tuple![2i64]]);

    let mut seq_state = WorkflowState::empty(&wf);
    let seq_out = execute_once(&wf, &input, &mut seq_state, &mut NoTracker, &udfs, 0).unwrap();

    for reducers in [1, 2, 4, 8] {
        let mut par_state = WorkflowState::empty(&wf);
        let mut tracker = NoTracker;
        let par_out = execute_once_parallel(
            &wf,
            &input,
            &mut par_state,
            &mut tracker,
            &udfs,
            0,
            reducers,
        )
        .unwrap();
        assert_eq!(
            par_out.relation("sink", "Total").unwrap().tuples(),
            seq_out.relation("sink", "Total").unwrap().tuples(),
            "reducers={reducers}"
        );
        assert_eq!(par_state.total_tuples(), seq_state.total_tuples());
    }
}

#[test]
fn parallel_provenance_graph_is_equivalent() {
    let (wf, udfs) = fan_out(3);
    let input = WorkflowInput::new().provide("src", "In", vec![tuple![7i64]]);

    let mut seq_state = WorkflowState::empty(&wf);
    let mut seq_tracker = GraphTracker::new();
    let seq_out = execute_once(&wf, &input, &mut seq_state, &mut seq_tracker, &udfs, 0).unwrap();
    let seq_g = seq_tracker.finish();

    let mut par_state = WorkflowState::empty(&wf);
    let mut par_tracker = GraphTracker::new();
    let par_out =
        execute_once_parallel(&wf, &input, &mut par_state, &mut par_tracker, &udfs, 0, 3).unwrap();
    let par_g = par_tracker.finish();
    check_structure(&par_g).unwrap();

    // Same node-kind census and invocation count, and the output's
    // provenance expression is identical up to token names.
    assert_eq!(seq_g.invocations().len(), par_g.invocations().len());
    let seq_stats = lipstick_core::graph::stats::stats(&seq_g);
    let par_stats = lipstick_core::graph::stats::stats(&par_g);
    assert_eq!(seq_stats.by_kind, par_stats.by_kind);
    assert_eq!(seq_stats.edges, par_stats.edges);

    let seq_prov = seq_out.relation("sink", "Total").unwrap().rows[0].ann.prov;
    let par_prov = par_out.relation("sink", "Total").unwrap().rows[0].ann.prov;
    let mut seq_tokens: Vec<String> = seq_g
        .expr_of(seq_prov)
        .tokens()
        .iter()
        .map(|t| t.to_string())
        .collect();
    let mut par_tokens: Vec<String> = par_g
        .expr_of(par_prov)
        .tokens()
        .iter()
        .map(|t| t.to_string())
        .collect();
    seq_tokens.sort();
    par_tokens.sort();
    assert_eq!(seq_tokens, par_tokens);
}

#[test]
fn parallel_sequence_threads_state() {
    let (wf, udfs) = fan_out(2);
    let mut state = WorkflowState::empty(&wf);
    let mut tracker = GraphTracker::new();
    for exec in 0..3u32 {
        let input = WorkflowInput::new().provide("src", "In", vec![tuple![exec as i64]]);
        let out =
            execute_once_parallel(&wf, &input, &mut state, &mut tracker, &udfs, exec, 4).unwrap();
        // each worker has seen exec+1 tuples; SUM over 2 workers
        let total = out.relation("sink", "Total").unwrap().rows[0]
            .tuple
            .get(0)
            .unwrap()
            .clone();
        assert_eq!(total, Value::Int(2 * (exec as i64 + 1)));
    }
    let g = tracker.finish();
    check_structure(&g).unwrap();
    assert_eq!(g.invocations().len(), 3 * 4);
}

#[test]
fn bag_semantics_of_worker_outputs() {
    // sanity: UNION of worker outputs has one tuple per worker
    let (wf, udfs) = fan_out(4);
    let input = WorkflowInput::new().provide("src", "In", vec![tuple![1i64]]);
    let mut state = WorkflowState::empty(&wf);
    let out = execute_once(&wf, &input, &mut state, &mut NoTracker, &udfs, 0).unwrap();
    let total = &out.relation("sink", "Total").unwrap().rows[0].tuple;
    assert_eq!(total.get(0).unwrap(), &Value::Int(4));
    let _ = Bag::empty(); // keep Bag import exercised
}
