//! Repo automation, invoked as `cargo run -p xtask -- <command>`.
//!
//! The only command today is `lint`: a zero-dependency source checker
//! enforcing two invariants clippy has no lint for —
//!
//! 1. **Panic-free serve paths.** No `.unwrap()`, `.expect(…)`, or
//!    `panic!(…)` in `crates/serve/src/**` outside `#[cfg(test)]`
//!    modules: every statement a peer sends travels `proto.rs` →
//!    `server.rs`, and a panic there kills a worker serving *other*
//!    connections too. Malformed bytes must surface as typed
//!    `ProtoError` values instead. (`unwrap_or`/`unwrap_or_else` and
//!    friends remain fine — they don't panic.)
//! 2. **Cast-free storage codec.** No bare `as` numeric casts in
//!    `crates/storage/src/codec.rs`: a silently truncating cast in the
//!    codec corrupts logs instead of reporting them corrupt. Widths
//!    change via `From`/`TryFrom`, which either cannot fail or fail
//!    loudly.
//! 3. **Panic-free observability** (`crates/core/src/obs.rs`).
//! 4. **One IO seam in storage.** No direct `std::fs` / `File::` /
//!    `OpenOptions` use in `crates/storage/src/**` non-test code
//!    outside `io.rs`: every file operation must route through the
//!    `StorageIo` trait, or the fault-injection harness silently stops
//!    covering that call site.
//!
//! The scanner strips comments, strings, and char literals first (so
//! prose mentioning `panic!` doesn't trip it) and ignores everything
//! from a `#[cfg(test)]` line to end of file — test modules sit last
//! in every file in this workspace, and tests may assert with panics.
//!
//! CI runs `cargo run -p xtask -- lint`; exit status 1 means
//! violations were printed, one per line, as `path:line: message`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Violation {
    line: usize,
    message: String,
}

/// Replace comment bodies, string contents, and char literals with
/// spaces, preserving line structure so reported line numbers match the
/// original file. Handles nested `/* */`, raw strings (`r"…"`,
/// `r#"…"#`), escapes, and tells lifetimes (`'a`) from char literals.
fn strip_comments_and_strings(src: &str) -> String {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if matches!(bytes.get(i + 1), Some('"') | Some('#')) => {
                // Raw string: count the hashes, skip to the matching
                // closer.
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) != Some(&'"') {
                    out.push(c);
                    i += 1;
                    continue;
                }
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                'raw: while i < bytes.len() {
                    if bytes[i] == '"' {
                        let mut k = 0;
                        while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if bytes[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '\'' => {
                // Char literal iff it closes within a few chars
                // (`'x'`, `'\n'`, `'\u{1f}'`); otherwise a lifetime.
                let close = (i + 2..(i + 12).min(bytes.len())).find(|&j| {
                    bytes[j] == '\''
                        && !(bytes[i + 1] == '\\' && j == i + 2 && bytes[j - 1] == '\\')
                });
                let is_char = bytes.get(i + 1) == Some(&'\\') || close == Some(i + 2);
                if is_char {
                    if let Some(j) = close {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                }
                out.push(c);
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Integer and float type names a bare `as` cast can target.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The panic-ban rule: no panicking calls outside test code. `context`
/// names the protected path and the right alternative in the printed
/// message, so serve and core::obs report in their own terms.
fn check_no_panics(src: &str, context: &str) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(src);
    let mut out = Vec::new();
    for (n, line) in stripped.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            // Test modules sit at the bottom of every file here;
            // everything below may panic at will.
            break;
        }
        for (pat, what) in [
            (".unwrap()", "unwrap()"),
            (".expect(", "expect()"),
            ("panic!", "panic!()"),
            ("unreachable!", "unreachable!()"),
            ("todo!", "todo!()"),
        ] {
            if line.contains(pat) {
                out.push(Violation {
                    line: n + 1,
                    message: format!("{what} {context}"),
                });
            }
        }
    }
    out
}

/// Rule 1's message context: why panics are banned in serve sources.
const SERVE_CONTEXT: &str = "on a serve request path (return a typed ProtoError instead)";

/// Rule 3's message context: why panics are banned in `core::obs`.
const OBS_CONTEXT: &str =
    "in core::obs non-test code (observability must never take the process down; \
     recover poisoned locks with into_inner)";

/// The codec rule: no bare `as` numeric casts.
fn check_no_numeric_casts(src: &str) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(src);
    let mut out = Vec::new();
    for (n, line) in stripped.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        let words: Vec<&str> = line
            .split(|c: char| !is_ident_char(c))
            .filter(|w| !w.is_empty())
            .collect();
        for pair in words.windows(2) {
            if pair[0] == "as" && NUMERIC_TYPES.contains(&pair[1]) {
                out.push(Violation {
                    line: n + 1,
                    message: format!(
                        "bare `as {}` cast in the storage codec (use From/TryFrom; casts \
                         truncate silently)",
                        pair[1]
                    ),
                });
            }
        }
    }
    out
}

/// Rule 4: no filesystem calls in storage sources outside the
/// `StorageIo` passthrough module. One violation per line (a single
/// `std::fs::File::open` would otherwise report three times).
fn check_no_direct_fs(src: &str) -> Vec<Violation> {
    let stripped = strip_comments_and_strings(src);
    let mut out = Vec::new();
    for (n, line) in stripped.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        let hit = ["std::fs", "fs::", "File::", "OpenOptions"]
            .into_iter()
            .find(|pat| {
                line.match_indices(*pat)
                    .any(|(i, _)| !line[..i].chars().next_back().is_some_and(is_ident_char))
            });
        if let Some(pat) = hit {
            out.push(Violation {
                line: n + 1,
                message: format!(
                    "direct filesystem access `{pat}` in crates/storage (route file IO \
                     through the StorageIo trait in io.rs so the fault-injection harness \
                     covers this call site)"
                ),
            });
        }
    }
    out
}

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run every lint over the repo. Returns the rendered violations.
fn run_lint(root: &Path) -> std::io::Result<Vec<String>> {
    let mut findings = Vec::new();

    // Rule 1: the whole serve crate's sources.
    let serve_dir = root.join("crates/serve/src");
    let mut serve_files: Vec<PathBuf> = std::fs::read_dir(&serve_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    serve_files.sort();
    for path in serve_files {
        let src = std::fs::read_to_string(&path)?;
        for v in check_no_panics(&src, SERVE_CONTEXT) {
            findings.push(format!("{}:{}: {}", path.display(), v.line, v.message));
        }
    }

    // Rule 2: the storage codec.
    let codec = root.join("crates/storage/src/codec.rs");
    let src = std::fs::read_to_string(&codec)?;
    for v in check_no_numeric_casts(&src) {
        findings.push(format!("{}:{}: {}", codec.display(), v.line, v.message));
    }

    // Rule 3: the observability module every layer calls into. A panic
    // in a metrics or memory-accounting helper would convert "record a
    // number" into "kill the worker", so the serve-path ban applies.
    let obs = root.join("crates/core/src/obs.rs");
    let src = std::fs::read_to_string(&obs)?;
    for v in check_no_panics(&src, OBS_CONTEXT) {
        findings.push(format!("{}:{}: {}", obs.display(), v.line, v.message));
    }

    // Rule 4: storage sources route file IO through io.rs (the
    // `StorageIo` passthrough module — the one place allowed to touch
    // the real filesystem).
    let storage_dir = root.join("crates/storage/src");
    let mut storage_files: Vec<PathBuf> = std::fs::read_dir(&storage_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .filter(|p| p.file_name().is_none_or(|f| f != "io.rs"))
        .collect();
    storage_files.sort();
    for path in storage_files {
        let src = std::fs::read_to_string(&path)?;
        for v in check_no_direct_fs(&src) {
            findings.push(format!("{}:{}: {}", path.display(), v.line, v.message));
        }
    }

    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match run_lint(&workspace_root()) {
            Ok(findings) if findings.is_empty() => {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            }
            Ok(findings) => {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask lint: cannot read sources: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_panics_are_caught() {
        let bad = "fn handle() {\n    let x = foo().unwrap();\n    bar().expect(\"x\");\n    \
                   panic!(\"boom\");\n}\n";
        let vs = check_no_panics(bad, SERVE_CONTEXT);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0].line, 2);
        assert!(vs[0].message.contains("unwrap"));
        assert_eq!(vs[1].line, 3);
        assert!(vs[1].message.contains("expect"));
        assert_eq!(vs[2].line, 4);
        assert!(vs[2].message.contains("panic!"));
    }

    #[test]
    fn non_panicking_variants_and_test_code_are_allowed() {
        let ok = "fn handle() {\n    let x = foo().unwrap_or(0);\n    let y = \
                  foo().unwrap_or_else(|| 1);\n    let z = foo().unwrap_or_default();\n}\n\
                  #[cfg(test)]\nmod tests {\n    fn t() { foo().unwrap(); panic!(\"fine\"); }\n}\n";
        assert_eq!(check_no_panics(ok, SERVE_CONTEXT), Vec::new());
    }

    #[test]
    fn panics_in_comments_and_strings_are_ignored() {
        let ok = "// a doc line saying .unwrap() is forbidden\n/* and panic!( too,\n   even \
                  .expect( here */\nfn f() { let s = \".unwrap()\"; let c = '\\''; }\n";
        assert_eq!(check_no_panics(ok, SERVE_CONTEXT), Vec::new());
    }

    #[test]
    fn seeded_numeric_casts_are_caught() {
        let bad = "fn enc(n: usize) {\n    put(n as u64);\n    let x = k as i32;\n}\n";
        let vs = check_no_numeric_casts(bad);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].line, 2);
        assert!(vs[0].message.contains("as u64"));
        assert_eq!(vs[1].line, 3);
    }

    #[test]
    fn cast_free_conversions_and_prose_are_allowed() {
        let ok = "fn enc(n: usize) {\n    put(u64::try_from(n).unwrap_or(u64::MAX));\n    let s = \
                  v.as_str();\n    // a comment about `n as u64` casts\n    let t: u64 = \
                  u64::from(k);\n}\n";
        assert_eq!(check_no_numeric_casts(ok), Vec::new());
    }

    #[test]
    fn raw_strings_and_lifetimes_survive_stripping() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"panic!(\"in raw\")\"#;\n";
        assert_eq!(check_no_panics(src, SERVE_CONTEXT), Vec::new());
        let stripped = strip_comments_and_strings(src);
        assert!(stripped.contains("fn f<'a>"));
        assert!(!stripped.contains("in raw"));
    }

    #[test]
    fn seeded_direct_fs_access_is_caught_once_per_line() {
        let bad = "use std::fs::{self, File};\nfn w(p: &Path) {\n    let f = \
                   File::create(p);\n    fs::rename(a, b);\n    OpenOptions::new();\n}\n";
        let vs = check_no_direct_fs(bad);
        assert_eq!(vs.len(), 4, "{vs:?}");
        assert_eq!(vs[0].line, 1);
        assert!(vs[0].message.contains("std::fs"));
        assert_eq!(vs[2].line, 4);
    }

    #[test]
    fn storage_io_seam_and_test_modules_are_allowed() {
        // Routed IO, idents that merely end in "fs", prose, and
        // anything under #[cfg(test)] must all pass.
        let ok = "fn commit(&mut self) {\n    self.io.append(&self.tail_path, &frame)?;\n    \
                  let offs::Kind = x;\n    // prose about std::fs and File::open\n}\n\
                  #[cfg(test)]\nmod tests {\n    use std::fs;\n    fn t() { \
                  fs::remove_file(p).ok(); }\n}\n";
        assert_eq!(check_no_direct_fs(ok), Vec::new());
    }

    /// The real repo must currently be clean — this is the same check
    /// CI runs, so a panicking call can't land in serve without a
    /// failing test pointing at the exact line.
    #[test]
    fn the_repo_itself_is_clean() {
        let findings = run_lint(&workspace_root()).expect("workspace sources readable");
        assert!(
            findings.is_empty(),
            "xtask lint violations:\n{}",
            findings.join("\n")
        );
    }
}
