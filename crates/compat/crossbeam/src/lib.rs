//! Minimal in-tree subset of `crossbeam`: an unbounded MPMC channel
//! and scoped threads, built on `std::sync` and `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// The channel was closed: every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Debug without a `T: Debug` bound, as upstream does, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel drained and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    /// An unbounded multi-producer multi-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value or until every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().unwrap();
            state.receivers -= 1;
        }
    }
}

/// Scoped-thread handle passed to [`scope`] closures; `spawn`ed
/// closures receive the scope again, as crossbeam's do.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope that can spawn threads borrowing from the
/// caller. Returns `Err` if the closure or any unjoined spawned thread
/// panicked, matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_channel_drains_and_closes() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
        assert!(rx.recv().is_err(), "all senders gone, queue empty");
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_workers() {
        let (tx, rx) = channel::unbounded::<u64>();
        let total: u64 = super::scope(|scope| {
            for i in 0..4u64 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .unwrap();
        assert_eq!(total, 6);
    }

    #[test]
    fn panicking_worker_surfaces_as_error() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
