//! Why-provenance: sets of witnesses (Buneman/Khanna/Tan, ICDT'01).
//!
//! A *witness* is a set of input tuples sufficient to derive the output;
//! why-provenance is the set of minimal witnesses. The paper contrasts
//! Ibis's "simple form of why-provenance" with Lipstick's full
//! polynomials — this implementation makes that comparison concrete.

use std::collections::BTreeSet;

use super::expr::Token;
use super::Semiring;

type Witness = BTreeSet<Token>;

/// Sets of minimal witnesses. + unions witness sets; · takes pairwise
/// unions of witnesses; both re-minimize (absorption: a witness that is a
/// superset of another is dropped).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Why(pub BTreeSet<Witness>);

impl Why {
    pub fn token(t: impl Into<Token>) -> Self {
        let mut w = BTreeSet::new();
        w.insert(t.into());
        let mut s = BTreeSet::new();
        s.insert(w);
        Why(s)
    }

    /// Drop witnesses that strictly contain another witness.
    fn minimize(mut set: BTreeSet<Witness>) -> BTreeSet<Witness> {
        let all: Vec<Witness> = set.iter().cloned().collect();
        set.retain(|w| !all.iter().any(|other| other != w && other.is_subset(w)));
        set
    }

    /// The minimal witnesses.
    pub fn witnesses(&self) -> &BTreeSet<Witness> {
        &self.0
    }
}

impl Semiring for Why {
    /// No witnesses: underivable.
    fn zero() -> Self {
        Why(BTreeSet::new())
    }
    /// One empty witness: derivable from nothing tracked.
    fn one() -> Self {
        let mut s = BTreeSet::new();
        s.insert(BTreeSet::new());
        Why(s)
    }
    fn plus(&self, other: &Self) -> Self {
        Why(Self::minimize(self.0.union(&other.0).cloned().collect()))
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Why(Self::minimize(out))
    }
    // δ is the identity: plus is idempotent after minimization.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(tokens: &[&str]) -> Witness {
        tokens.iter().map(Token::new).collect()
    }

    fn why(witnesses: &[&[&str]]) -> Why {
        Why(witnesses.iter().map(|ws| w(ws)).collect())
    }

    #[test]
    fn alternative_derivations_are_separate_witnesses() {
        let p = Why::token("a").plus(&Why::token("b"));
        assert_eq!(p, why(&[&["a"], &["b"]]));
    }

    #[test]
    fn joint_derivation_unions_witnesses() {
        let p = Why::token("a").times(&Why::token("b"));
        assert_eq!(p, why(&[&["a", "b"]]));
    }

    #[test]
    fn absorption_minimizes() {
        // a + a·b = a  (witness {a,b} is absorbed by {a})
        let p = Why::token("a").plus(&Why::token("a").times(&Why::token("b")));
        assert_eq!(p, why(&[&["a"]]));
    }

    #[test]
    fn one_is_absorbing_in_plus() {
        // 1 + a = 1 under minimal-witness semantics
        let p = Why::one().plus(&Why::token("a"));
        assert_eq!(p, Why::one());
    }

    #[test]
    fn laws_on_samples() {
        crate::semiring::laws::check_laws(
            why(&[&["a"], &["b", "c"]]),
            why(&[&["b"]]),
            why(&[&["c", "d"]]),
        );
        crate::semiring::laws::check_laws(Why::zero(), Why::one(), why(&[&["x"]]));
    }
}
