//! The Arctic stations workflow family (paper §5.2, Figure 4).
//!
//! Station modules hold monthly meteorological observations
//! (1961–2000) as state, take a new measurement per execution (a
//! `Measure` black box), compute the lowest air temperature w.r.t. the
//! query's *selectivity* (all / season / month / year — fractions 1,
//! 1/4, 1/12, ≤12/480 of the state), fold in the minima received from
//! upstream stations, and output the running minimum. An input module
//! distributes the query; an output module takes the overall minimum.
//!
//! Topologies: *serial* (a chain), *parallel* (no station-to-station
//! edges), and *dense* (layers of `fanout` stations, fully bipartite
//! between consecutive layers — Figure 4(c)).
//!
//! The NSIDC dataset is replaced by [`observations`], a deterministic
//! synthetic generator with the same shape (480 monthly rows per
//! station, seasonal temperature structure). Selectivity drives
//! provenance-graph density exactly as in the paper, which is what the
//! Figure 6/7 experiments measure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::{Bag, DataType, Schema, Tuple, Value};
use lipstick_piglatin::udf::UdfRegistry;
use lipstick_workflow::{
    execute_once, ExecutionOutput, ModuleSpec, Result, Workflow, WorkflowBuilder, WorkflowInput,
    WorkflowState,
};

/// Workflow topology (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `in → s0 → s1 → … → out`
    Serial,
    /// All stations independent, all feeding the output module.
    Parallel,
    /// Layers of `fanout` stations; consecutive layers fully connected.
    Dense { fanout: usize },
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Serial => write!(f, "serial"),
            Topology::Parallel => write!(f, "parallel"),
            Topology::Dense { fanout } => write!(f, "dense(fan-out {fanout})"),
        }
    }
}

/// Query selectivity: which state tuples a station's minimum considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selectivity {
    /// All historical measurements (fraction 1).
    All,
    /// The current season's measurements (1/4).
    Season,
    /// The current month's (1/12).
    Month,
    /// The current year's (≤ 12 tuples).
    Year,
}

impl Selectivity {
    /// The fraction of state tuples selected (the paper's accounting).
    pub fn fraction(&self) -> f64 {
        match self {
            Selectivity::All => 1.0,
            Selectivity::Season => 0.25,
            Selectivity::Month => 1.0 / 12.0,
            Selectivity::Year => 12.0 / 480.0,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Selectivity::All => "all",
            Selectivity::Season => "season",
            Selectivity::Month => "month",
            Selectivity::Year => "year",
        }
    }
}

impl std::fmt::Display for Selectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcticParams {
    /// Number of station modules (2–24 in the paper).
    pub stations: usize,
    pub topology: Topology,
    pub selectivity: Selectivity,
    /// Number of workflow executions per run.
    pub num_exec: usize,
    pub seed: u64,
}

impl Default for ArcticParams {
    fn default() -> Self {
        ArcticParams {
            stations: 4,
            topology: Topology::Parallel,
            selectivity: Selectivity::Month,
            num_exec: 10,
            seed: 42,
        }
    }
}

/// Season of a month (meteorological seasons).
pub fn season_of(month: i64) -> &'static str {
    match month {
        12 | 1 | 2 => "winter",
        3..=5 => "spring",
        6..=8 => "summer",
        _ => "autumn",
    }
}

fn obs_schema() -> Schema {
    Schema::named(&[
        ("Year", DataType::Int),
        ("Month", DataType::Int),
        ("Season", DataType::Str),
        ("Tair", DataType::Float),
        ("Pressure", DataType::Float),
        ("Humidity", DataType::Float),
        ("Wind", DataType::Float),
        ("Precip", DataType::Float),
    ])
}

fn query_schema() -> Schema {
    Schema::named(&[
        ("Year", DataType::Int),
        ("Month", DataType::Int),
        ("Season", DataType::Str),
    ])
}

fn min_schema() -> Schema {
    Schema::named(&[("Temp", DataType::Float)])
}

/// Deterministic pseudo-random stream (splitmix64) — keeps the dataset
/// generator independent of RNG crate versions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn noise(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let z = mix(seed ^ mix(a) ^ mix(b.wrapping_mul(31)) ^ mix(c.wrapping_mul(1009)));
    (z >> 11) as f64 / (1u64 << 53) as f64 // [0, 1)
}

/// One station's synthetic monthly observation.
fn observation(station: usize, seed: u64, year: i64, month: i64, sample: u64) -> Tuple {
    let s = station as u64;
    // Seasonal structure: Arctic winters near -30 °C, summers near 5 °C.
    let phase = (month as f64 - 1.5) / 12.0 * std::f64::consts::TAU;
    let seasonal = -13.0 - 17.0 * phase.cos();
    let station_offset = (s % 7) as f64 * 1.3 - 4.0;
    let jitter = (noise(seed, s, (year * 12 + month) as u64, sample) - 0.5) * 8.0;
    let tair = seasonal + station_offset + jitter;
    Tuple::new(vec![
        Value::Int(year),
        Value::Int(month),
        Value::str(season_of(month)),
        Value::Float((tair * 10.0).round() / 10.0),
        Value::Float(1000.0 + (noise(seed, s + 1, year as u64, month as u64) - 0.5) * 40.0),
        Value::Float(60.0 + noise(seed, s + 2, year as u64, month as u64) * 35.0),
        Value::Float(noise(seed, s + 3, year as u64, month as u64) * 20.0),
        Value::Float(noise(seed, s + 4, year as u64, month as u64) * 50.0),
    ])
}

/// The full 1961–2000 monthly history for one station (480 rows) — the
/// synthetic substitute for the NSIDC dataset.
pub fn observations(station: usize, seed: u64) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(480);
    for year in 1961..=2000i64 {
        for month in 1..=12i64 {
            out.push(observation(station, seed, year, month, 0));
        }
    }
    out
}

/// Incoming-minimum relation name produced by station `i`.
fn min_rel(i: usize) -> String {
    format!("Min{i}")
}

/// Build the selectivity-specific output query of station `i`, given
/// the stations feeding minima into it.
fn station_qout(i: usize, selectivity: Selectivity, upstream: &[usize]) -> String {
    let local = match selectivity {
        Selectivity::All => "RelG = GROUP Obs ALL;
             LocalMin = FOREACH RelG GENERATE MIN(Obs.Tair) AS Temp;"
            .to_string(),
        Selectivity::Season => "Rel = JOIN Obs BY Season, Query BY Season;
             RelG = GROUP Rel ALL;
             LocalMin = FOREACH RelG GENERATE MIN(Rel.Tair) AS Temp;"
            .to_string(),
        Selectivity::Month => "Rel = JOIN Obs BY Month, Query BY Month;
             RelG = GROUP Rel ALL;
             LocalMin = FOREACH RelG GENERATE MIN(Rel.Tair) AS Temp;"
            .to_string(),
        Selectivity::Year => "Rel = JOIN Obs BY Year, Query BY Year;
             RelG = GROUP Rel ALL;
             LocalMin = FOREACH RelG GENERATE MIN(Rel.Tair) AS Temp;"
            .to_string(),
    };
    let combine = if upstream.is_empty() {
        format!(
            "MinG = GROUP LocalMin ALL;
             Min{i} = FOREACH MinG GENERATE MIN(LocalMin.Temp) AS Temp;"
        )
    } else {
        let rels: Vec<String> = std::iter::once("LocalMin".to_string())
            .chain(upstream.iter().map(|j| min_rel(*j)))
            .collect();
        format!(
            "AllMins = UNION {};
             MinG = GROUP AllMins ALL;
             Min{i} = FOREACH MinG GENERATE MIN(AllMins.Temp) AS Temp;",
            rels.join(", ")
        )
    };
    format!("{local}\n{combine}")
}

fn station_spec(i: usize, selectivity: Selectivity, upstream: &[usize]) -> Arc<ModuleSpec> {
    let mut input_schema = vec![("Query".to_string(), query_schema())];
    for &j in upstream {
        input_schema.push((min_rel(j), min_schema()));
    }
    Arc::new(ModuleSpec {
        name: format!("Msta{i}"),
        input_schema,
        state_schema: vec![("Obs".into(), obs_schema())],
        output_schema: vec![(min_rel(i), min_schema())],
        q_state: format!(
            "NewObs = FOREACH Query GENERATE FLATTEN(Measure{i}(Year, Month, Season));
             Obs = UNION Obs, NewObs;"
        ),
        q_out: station_qout(i, selectivity, upstream),
    })
}

/// Register the per-station `Measure` black boxes: a new observation per
/// invocation, deterministic in (station, seed, call counter).
pub fn register_udfs(udfs: &mut UdfRegistry, stations: usize, seed: u64) {
    for i in 0..stations {
        let counter = Arc::new(AtomicU64::new(1));
        let schema = obs_schema();
        udfs.register(format!("Measure{i}"), false, Some(schema), move |args| {
            let year = args[0].as_i64().map_err(|e| e.to_string())?;
            let month = args[1].as_i64().map_err(|e| e.to_string())?;
            let sample = counter.fetch_add(1, Ordering::Relaxed);
            let obs = observation(i, seed, year, month, sample);
            Ok(Value::Bag(Bag::from_tuples(vec![obs])))
        });
    }
}

/// Compute each station's upstream stations under a topology.
pub fn upstream_map(stations: usize, topology: Topology) -> Vec<Vec<usize>> {
    let mut up = vec![Vec::new(); stations];
    match topology {
        Topology::Parallel => {}
        Topology::Serial => {
            for (i, ups) in up.iter_mut().enumerate().skip(1) {
                ups.push(i - 1);
            }
        }
        Topology::Dense { fanout } => {
            let fanout = fanout.max(1);
            for (i, ups) in up.iter_mut().enumerate() {
                let layer = i / fanout;
                if layer > 0 {
                    let prev_start = (layer - 1) * fanout;
                    let prev_end = (layer * fanout).min(stations);
                    ups.extend(prev_start..prev_end);
                }
            }
        }
    }
    up
}

/// The stations that feed the output module (the DAG's sinks).
pub fn sink_stations(stations: usize, topology: Topology) -> Vec<usize> {
    match topology {
        Topology::Parallel => (0..stations).collect(),
        Topology::Serial => vec![stations - 1],
        Topology::Dense { fanout } => {
            let fanout = fanout.max(1);
            let last_layer = (stations - 1) / fanout;
            (last_layer * fanout..stations).collect()
        }
    }
}

/// Build the Arctic workflow and register its UDFs.
pub fn build(params: &ArcticParams, udfs: &mut UdfRegistry) -> Workflow {
    assert!(params.stations >= 1, "need at least one station");
    register_udfs(udfs, params.stations, params.seed);
    let upstream = upstream_map(params.stations, params.topology);
    let sinks = sink_stations(params.stations, params.topology);

    let mut b = WorkflowBuilder::new();
    let min_in = b.add_node(
        "Min",
        Arc::new(ModuleSpec {
            name: "Min".into(),
            input_schema: vec![("QueryIn".into(), query_schema())],
            state_schema: vec![],
            output_schema: vec![("Query".into(), query_schema())],
            q_state: String::new(),
            q_out: "Query = FILTER QueryIn BY true;".into(),
        }),
    );

    let station_nodes: Vec<_> = (0..params.stations)
        .map(|i| {
            b.add_node(
                format!("Msta{i}"),
                station_spec(i, params.selectivity, &upstream[i]),
            )
        })
        .collect();
    for (i, &node) in station_nodes.iter().enumerate() {
        b.add_edge(min_in, node, &["Query"]);
        for &j in &upstream[i] {
            let rel = min_rel(j);
            b.add_edge(station_nodes[j], node, &[rel.as_str()]);
        }
    }

    let out_spec = {
        let input_schema: Vec<(String, Schema)> =
            sinks.iter().map(|&i| (min_rel(i), min_schema())).collect();
        let q_out = if sinks.len() == 1 {
            let r = min_rel(sinks[0]);
            format!(
                "MinG = GROUP {r} ALL;
                 MinTemp = FOREACH MinG GENERATE MIN({r}.Temp) AS Temp;"
            )
        } else {
            let rels: Vec<String> = sinks.iter().map(|&i| min_rel(i)).collect();
            format!(
                "AllMins = UNION {};
                 MinG = GROUP AllMins ALL;
                 MinTemp = FOREACH MinG GENERATE MIN(AllMins.Temp) AS Temp;",
                rels.join(", ")
            )
        };
        Arc::new(ModuleSpec {
            name: "Mout".into(),
            input_schema,
            state_schema: vec![],
            output_schema: vec![("MinTemp".into(), min_schema())],
            q_state: String::new(),
            q_out,
        })
    };
    let out_node = b.add_node("Mout", out_spec);
    for &i in &sinks {
        let rel = min_rel(i);
        b.add_edge(station_nodes[i], out_node, &[rel.as_str()]);
    }

    b.build().expect("arctic workflow is statically valid")
}

/// Seed every station's `Obs` state with its 1961–2000 history.
pub fn seed_state<T: Tracker>(
    wf: &Workflow,
    state: &mut WorkflowState<T::Ref>,
    tracker: &mut T,
    params: &ArcticParams,
) -> Result<()> {
    for i in 0..params.stations {
        let obs = observations(i, params.seed);
        state.seed(wf, &format!("Msta{i}"), "Obs", obs, tracker, move |j, _| {
            format!("S{i}.O{j}")
        })?;
    }
    Ok(())
}

/// The query input of one execution: current year/month cycling through
/// 2001, 2002, … month by month.
pub fn query_input(execution: u32) -> WorkflowInput {
    let month = (execution % 12) as i64 + 1;
    let year = 2001 + (execution / 12) as i64;
    WorkflowInput::new().provide(
        "Min",
        "QueryIn",
        vec![Tuple::new(vec![
            Value::Int(year),
            Value::Int(month),
            Value::str(season_of(month)),
        ])],
    )
}

/// What [`run`] returns: the workflow, final state, and per-execution
/// outputs.
pub type ArcticRun<R> = (Workflow, WorkflowState<R>, Vec<ExecutionOutput<R>>);

/// Execute a full run of `num_exec` executions; returns the workflow,
/// final state, and the per-execution outputs.
pub fn run<T: Tracker>(params: &ArcticParams, tracker: &mut T) -> Result<ArcticRun<T::Ref>> {
    let mut udfs = UdfRegistry::new();
    let wf = build(params, &mut udfs);
    let mut state = WorkflowState::empty(&wf);
    seed_state(&wf, &mut state, tracker, params)?;
    let mut outputs = Vec::with_capacity(params.num_exec);
    for e in 0..params.num_exec {
        outputs.push(execute_once(
            &wf,
            &query_input(e as u32),
            &mut state,
            tracker,
            &udfs,
            e as u32,
        )?);
    }
    Ok((wf, state, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_core::graph::validate::check_structure;
    use lipstick_core::graph::{GraphTracker, NoTracker};
    use lipstick_core::NodeKind;

    #[test]
    fn dataset_shape_matches_nsidc_substitute() {
        let obs = observations(3, 42);
        assert_eq!(obs.len(), 480);
        // deterministic
        assert_eq!(obs, observations(3, 42));
        assert_ne!(obs, observations(4, 42));
        // winters are colder than summers on average
        let avg = |m: i64| {
            let (sum, n) = obs
                .iter()
                .filter(|t| t.get(1).unwrap().as_i64().unwrap() == m)
                .map(|t| t.get(3).unwrap().as_f64().unwrap())
                .fold((0.0, 0usize), |(s, c), v| (s + v, c + 1));
            sum / n as f64
        };
        assert!(avg(1) < avg(7) - 15.0, "Jan {} vs Jul {}", avg(1), avg(7));
    }

    #[test]
    fn topologies_wire_correctly() {
        assert_eq!(upstream_map(4, Topology::Serial)[3], vec![2]);
        assert!(upstream_map(4, Topology::Parallel)
            .iter()
            .all(Vec::is_empty));
        let dense = upstream_map(9, Topology::Dense { fanout: 3 });
        assert!(dense[0].is_empty());
        assert_eq!(dense[4], vec![0, 1, 2]);
        assert_eq!(dense[8], vec![3, 4, 5]);
        assert_eq!(
            sink_stations(9, Topology::Dense { fanout: 3 }),
            vec![6, 7, 8]
        );
        assert_eq!(sink_stations(5, Topology::Serial), vec![4]);
    }

    #[test]
    fn all_topologies_agree_on_the_global_minimum() {
        // With selectivity = all, the output is the global minimum over
        // every station's history — independent of topology.
        let mut results = Vec::new();
        for topology in [
            Topology::Serial,
            Topology::Parallel,
            Topology::Dense { fanout: 2 },
        ] {
            let params = ArcticParams {
                stations: 6,
                topology,
                selectivity: Selectivity::All,
                num_exec: 2,
                seed: 9,
            };
            let mut tracker = NoTracker;
            let (_, _, outs) = run(&params, &mut tracker).unwrap();
            let v = outs[0].relation("Mout", "MinTemp").unwrap().rows[0]
                .tuple
                .get(0)
                .unwrap()
                .clone();
            results.push(v);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn selectivity_controls_tensor_count() {
        // Lower selectivity ⇒ more state tuples feed the MIN ⇒ more ⊗
        // tensors in the provenance graph (the paper's Figure 6(b)
        // mechanism).
        let mut tensor_counts = Vec::new();
        for selectivity in [
            Selectivity::Year,
            Selectivity::Month,
            Selectivity::Season,
            Selectivity::All,
        ] {
            let params = ArcticParams {
                stations: 2,
                topology: Topology::Parallel,
                selectivity,
                num_exec: 1,
                seed: 3,
            };
            let mut tracker = GraphTracker::new();
            run(&params, &mut tracker).unwrap();
            let g = tracker.finish();
            let tensors = g
                .iter_visible()
                .filter(|(_, n)| matches!(n.kind, NodeKind::Tensor))
                .count();
            tensor_counts.push(tensors);
        }
        assert!(
            tensor_counts.windows(2).all(|w| w[0] < w[1]),
            "tensor counts not increasing with selectivity fraction: {tensor_counts:?}"
        );
    }

    #[test]
    fn state_grows_by_one_observation_per_execution() {
        let params = ArcticParams {
            stations: 3,
            topology: Topology::Serial,
            selectivity: Selectivity::Month,
            num_exec: 5,
            seed: 1,
        };
        let mut tracker = NoTracker;
        let (wf, state, _) = run(&params, &mut tracker).unwrap();
        for i in 0..3 {
            let obs = state.relation(&wf, &format!("Msta{i}"), "Obs").unwrap();
            assert_eq!(obs.len(), 480 + 5);
        }
    }

    #[test]
    fn provenance_graph_structurally_valid() {
        let params = ArcticParams {
            stations: 4,
            topology: Topology::Dense { fanout: 2 },
            selectivity: Selectivity::Year,
            num_exec: 2,
            seed: 2,
        };
        let mut tracker = GraphTracker::new();
        let (_, _, outs) = run(&params, &mut tracker).unwrap();
        let g = tracker.finish();
        check_structure(&g).unwrap();
        // (stations + in + out) × executions invocations
        assert_eq!(g.invocations().len(), 6 * 2);
        // With year selectivity, only the fresh (year-2001) measurements
        // match the query, so the minimum's provenance reaches back to
        // the workflow inputs through the Measure black boxes.
        let prov = outs[1].relation("Mout", "MinTemp").unwrap().rows[0]
            .ann
            .prov;
        let expr = g.expr_of(prov).to_string();
        assert!(expr.contains("QueryIn"), "{expr}");
        assert!(
            g.iter_visible().any(|(_, n)| matches!(
                &n.kind,
                NodeKind::BlackBox { name, .. } if name.starts_with("Measure")
            )),
            "Measure black boxes recorded"
        );
    }

    #[test]
    fn with_and_without_provenance_agree() {
        let params = ArcticParams {
            stations: 4,
            topology: Topology::Serial,
            selectivity: Selectivity::Season,
            num_exec: 3,
            seed: 5,
        };
        let mut t1 = NoTracker;
        let (_, _, o1) = run(&params, &mut t1).unwrap();
        let mut t2 = GraphTracker::new();
        let (_, _, o2) = run(&params, &mut t2).unwrap();
        for (a, b) in o1.iter().zip(&o2) {
            assert_eq!(
                a.relation("Mout", "MinTemp").unwrap().tuples(),
                b.relation("Mout", "MinTemp").unwrap().tuples()
            );
        }
    }

    #[test]
    fn season_function_covers_all_months() {
        for m in 1..=12 {
            assert!(!season_of(m).is_empty());
        }
        assert_eq!(season_of(12), "winter");
        assert_eq!(season_of(6), "summer");
    }
}
