//! Ground truth for `EXPLAIN ANALYZE`: the rendered actuals must equal
//! the counters the executors themselves report — `rows`/`visited`
//! against the returned node-set result, `reads` against the session's
//! backend record-decode counter. Shape invariance is locked down too:
//! a traced set operation renders the same span tree whether branches
//! ran sequentially or on the worker pool.

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::{Parallelism, QueryOutput, Session};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph() -> ProvGraph {
    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 11,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn temp_log(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lipstick-analyze-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_graph_v2(&dealers_graph(), &path).unwrap();
    path
}

/// The value of `key=` on the first actuals line whose label matches.
/// (The plan section above `actuals:` repeats operator names without
/// attributes, so the search starts below it.)
fn attr_on(analyze: &str, label: &str, key: &str) -> u64 {
    let at = analyze
        .find("actuals:")
        .unwrap_or_else(|| panic!("no actuals section in:\n{analyze}"));
    let line = analyze[at..]
        .lines()
        .find(|l| l.trim_start().starts_with(label))
        .unwrap_or_else(|| panic!("no `{label}` span in:\n{analyze}"));
    let field = line
        .split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= on `{line}` in:\n{analyze}"));
    field.parse().unwrap()
}

fn analyze_text(session: &Session, stmt: &str) -> String {
    match session
        .run_read(&format!("EXPLAIN ANALYZE {stmt}"))
        .unwrap_or_else(|e| panic!("ANALYZE {stmt}: {e}"))
    {
        QueryOutput::Text(t) => t,
        other => panic!("ANALYZE must render text, got {other:?}"),
    }
}

/// Resident executor: `rows`/`visited` on the scan span are exactly the
/// node-set result's count and visited mask size.
#[test]
fn resident_actuals_match_the_returned_result() {
    let session = Session::new(dealers_graph());
    for stmt in [
        "MATCH m-nodes",
        "MATCH base-nodes WHERE token LIKE 'C%'",
        "DESCENDANTS OF #0 DEPTH 3",
    ] {
        let QueryOutput::Nodes(ns) = session.run_read(stmt).unwrap() else {
            panic!("{stmt} must return nodes");
        };
        let analyze = analyze_text(&session, stmt);
        let label = if stmt.starts_with("DESCENDANTS") {
            "walk"
        } else {
            "scan"
        };
        assert_eq!(
            attr_on(&analyze, label, "rows"),
            ns.len() as u64,
            "{stmt}\n{analyze}"
        );
        assert_eq!(
            attr_on(&analyze, label, "visited"),
            ns.visited as u64,
            "{stmt}\n{analyze}"
        );
        assert!(analyze.contains("actuals:"), "{analyze}");
        assert!(analyze.contains("total: "), "{analyze}");
    }
}

/// Paged executor: the `reads` attributes are deltas of the session's
/// record-decode counter, so under sequential execution the top-level
/// spans' reads sum to exactly the statement's records_read() delta.
#[test]
fn paged_reads_attrs_sum_to_the_records_read_delta() {
    let session = Session::open(temp_log("reads.lpstk")).unwrap();
    assert!(session.is_paged());
    for stmt in ["MATCH base-nodes", "MATCH m-nodes GROUP BY module"] {
        let before = session.records_read();
        let analyze = analyze_text(&session, stmt);
        let delta = (session.records_read() - before) as u64;
        let scan = attr_on(&analyze, "scan", "reads");
        let shaping = attr_on(&analyze, "shaping", "reads");
        assert_eq!(
            scan + shaping,
            delta,
            "{stmt}: span reads must account for every decode\n{analyze}"
        );
    }
}

/// The traced span tree has one canonical shape: a set operation always
/// renders flattened `branch i` spans with identical rows, whether the
/// branches ran sequentially or engaged the worker pool.
#[test]
fn set_op_actuals_are_identical_across_parallelism_modes() {
    let stmt = "MATCH base-nodes UNION MATCH m-nodes UNION MATCH o-nodes";

    let mut sequential = Session::new(dealers_graph());
    sequential.set_parallelism_policy(Parallelism::SEQUENTIAL);
    let seq = analyze_text(&sequential, stmt);

    let mut parallel = Session::new(dealers_graph());
    parallel.set_parallelism_policy(Parallelism {
        threads: 4,
        min_nodes: 0, // force the worker-pool path
    });
    let par = analyze_text(&parallel, stmt);

    for text in [&seq, &par] {
        assert!(text.contains("union rows="), "{text}");
        for i in 0..3 {
            assert!(text.contains(&format!("branch {i} rows=")), "{text}");
        }
    }
    for label in ["union", "branch 0", "branch 1", "branch 2"] {
        assert_eq!(
            attr_on(&seq, label, "rows"),
            attr_on(&par, label, "rows"),
            "rows for {label} must not depend on scheduling\nseq:\n{seq}\npar:\n{par}"
        );
        assert_eq!(
            attr_on(&seq, label, "visited"),
            attr_on(&par, label, "visited"),
            "visited for {label} must not depend on scheduling"
        );
    }
}

/// `EXPLAIN ANALYZE` executes its statement, so a mutating inner is
/// rejected by both planners with the read-only error.
#[test]
fn analyze_of_a_mutation_is_rejected_by_both_planners() {
    let resident = Session::new(dealers_graph());
    let paged = Session::open(temp_log("reject.lpstk")).unwrap();
    for session in [&resident, &paged] {
        let err = session
            .run_read("EXPLAIN ANALYZE DELETE #0 PROPAGATE")
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("read-only") && err.contains("EXPLAIN ANALYZE DELETE #0 PROPAGATE"),
            "{err}"
        );
    }
}

/// Promotion must not reset the session's cumulative read counter: the
/// paged-era decodes are banked, so `records_read()` stays monotonic.
#[test]
fn records_read_is_monotonic_across_promotion() {
    let mut session = Session::open(temp_log("promote.lpstk")).unwrap();
    session.run_one("MATCH base-nodes").unwrap();
    let paged_reads = session.records_read();
    assert!(paged_reads > 0, "a paged scan decodes records");

    // First mutation promotes to resident.
    session.run_one("BUILD INDEX").unwrap();
    assert!(!session.is_paged());
    assert!(
        session.records_read() >= paged_reads,
        "promotion must bank paged-era reads, not reset them: {} < {paged_reads}",
        session.records_read()
    );
}
