//! Runtime values: atoms, tuples, and nested bags.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::bag::Bag;
use crate::error::{NrelError, Result};

/// A runtime value in the nested relational model.
///
/// `Value` is a tree: leaves are atoms (`Null`, `Bool`, `Int`, `Float`,
/// `Str`), inner nodes are [`Tuple`]s, [`Bag`]s, or string-keyed maps
/// (Pig's `map` type).
///
/// Equality, ordering and hashing are **total**: floats compare with
/// [`f64::total_cmp`] and hash by bit pattern, so `Value` can be used as a
/// key in `HashMap`/`BTreeMap` — which the engine relies on for GROUP,
/// COGROUP, JOIN, and DISTINCT.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null / Pig's null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (covers Pig's int and long).
    Int(i64),
    /// 64-bit float (covers Pig's float and double).
    Float(f64),
    /// UTF-8 string (Pig's chararray). Reference-counted: projections and
    /// joins copy values freely, so cloning must be cheap.
    Str(Arc<str>),
    /// Nested tuple.
    Tuple(Tuple),
    /// Nested bag (unordered multiset of tuples).
    Bag(Bag),
    /// String-keyed map (Pig's map type).
    Map(Arc<BTreeMap<String, Value>>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "chararray",
            Value::Tuple(_) => "tuple",
            Value::Bag(_) => "bag",
            Value::Map(_) => "map",
        }
    }

    /// Interpret the value as a boolean (for FILTER conditions).
    ///
    /// `Null` is treated as `false` (three-valued logic collapses to
    /// "not selected", matching Pig's behaviour for FILTER).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            _ => true,
        }
    }

    /// Numeric view used by arithmetic and aggregates.
    ///
    /// Ints widen to floats on demand; anything non-numeric is an error.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(NrelError::TypeMismatch {
                expected: "numeric",
                found: other.type_name(),
            }),
        }
    }

    /// Integer view; floats are rejected (no silent truncation).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(NrelError::TypeMismatch {
                expected: "int",
                found: other.type_name(),
            }),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(NrelError::TypeMismatch {
                expected: "chararray",
                found: other.type_name(),
            }),
        }
    }

    /// Bag view (for aggregation and FLATTEN).
    pub fn as_bag(&self) -> Result<&Bag> {
        match self {
            Value::Bag(b) => Ok(b),
            other => Err(NrelError::TypeMismatch {
                expected: "bag",
                found: other.type_name(),
            }),
        }
    }

    /// Tuple view.
    pub fn as_tuple(&self) -> Result<&Tuple> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(NrelError::TypeMismatch {
                expected: "tuple",
                found: other.type_name(),
            }),
        }
    }

    /// Render as a display string without quoting (used by CONCAT etc.).
    pub fn to_text(&self) -> Cow<'_, str> {
        match self {
            Value::Str(s) => Cow::Borrowed(s),
            other => Cow::Owned(other.to_string()),
        }
    }

    /// Number of heap nodes in this value tree (used by memory accounting
    /// and the storage codec's size hints).
    pub fn node_count(&self) -> usize {
        match self {
            Value::Tuple(t) => 1 + t.fields().iter().map(Value::node_count).sum::<usize>(),
            Value::Bag(b) => {
                1 + b
                    .iter()
                    .map(|t| 1 + t.fields().iter().map(Value::node_count).sum::<usize>())
                    .sum::<usize>()
            }
            Value::Map(m) => 1 + m.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all values.
    ///
    /// Values of different runtime types order by a fixed type rank
    /// (null < bool < numeric < string < tuple < bag < map); ints and
    /// floats inhabit a single *numeric* rank and compare by value so that
    /// `2 == 2.0` in joins, as in Pig. Floats use [`f64::total_cmp`].
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (Bag(a), Bag(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats must hash identically when equal (2 == 2.0):
            // hash every numeric through the f64 bit pattern. Non-finite
            // and negative-zero cases are fine because equality uses
            // total_cmp, under which -0.0 != 0.0 — and their bit patterns
            // differ as well, keeping Eq/Hash consistent... except
            // -0.0 vs 0.0: total_cmp orders them as unequal, so distinct
            // hashes are *allowed*. 2 and 2.0 map to the same bits.
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Tuple(t) => {
                state.write_u8(4);
                t.hash(state);
            }
            Value::Bag(b) => {
                state.write_u8(5);
                b.hash(state);
            }
            Value::Map(m) => {
                state.write_u8(6);
                m.hash(state);
            }
        }
    }
}

impl Value {
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Tuple(_) => 4,
            Value::Bag(_) => 5,
            Value::Map(_) => 6,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Tuple(t) => write!(f, "{t}"),
            Value::Bag(b) => write!(f, "{b}"),
            Value::Map(m) => {
                write!(f, "[")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}#{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Tuple> for Value {
    fn from(v: Tuple) -> Self {
        Value::Tuple(v)
    }
}
impl From<Bag> for Value {
    fn from(v: Bag) -> Self {
        Value::Bag(v)
    }
}

/// A tuple: an ordered sequence of values.
///
/// Fields are stored behind an `Arc` so that tuples flowing through
/// projections, joins and group nests can be cloned in O(1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    fields: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from field values.
    pub fn new(fields: Vec<Value>) -> Self {
        Tuple {
            fields: fields.into(),
        }
    }

    /// The empty tuple.
    pub fn empty() -> Self {
        Tuple {
            fields: Arc::from([]),
        }
    }

    /// Number of fields (the tuple's arity).
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field access by position.
    pub fn get(&self, idx: usize) -> Result<&Value> {
        self.fields.get(idx).ok_or(NrelError::FieldOutOfRange {
            index: idx,
            arity: self.fields.len(),
        })
    }

    /// All fields as a slice.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Concatenate two tuples (used by JOIN, which produces both sides'
    /// columns, and by FLATTEN).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.fields);
        v.extend_from_slice(&other.fields);
        Tuple::new(v)
    }

    /// Project the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Result<Tuple> {
        let mut v = Vec::with_capacity(positions.len());
        for &p in positions {
            v.push(self.get(p)?.clone());
        }
        Ok(Tuple::new(v))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn total_order_is_transitive_across_types() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(0.5),
            Value::Int(7),
            Value::str("abc"),
            Value::Tuple(Tuple::new(vec![Value::Int(1)])),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        // null < bools < numerics < strings < tuples
        assert_eq!(sorted[0], Value::Null);
        assert!(matches!(sorted[1], Value::Bool(false)));
        assert!(matches!(sorted[2], Value::Bool(true)));
        assert_eq!(sorted[3], Value::Int(-3));
        assert_eq!(sorted[4], Value::Float(0.5));
        assert_eq!(sorted[5], Value::Int(7));
    }

    #[test]
    fn nan_is_orderable_and_hashable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        assert!(Value::Float(f64::INFINITY) > Value::Int(i64::MAX));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy()); // only bools/null gate FILTER
    }

    #[test]
    fn tuple_get_out_of_range() {
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(t.get(0).is_ok());
        let err = t.get(3).unwrap_err();
        assert!(matches!(
            err,
            NrelError::FieldOutOfRange { index: 3, arity: 1 }
        ));
    }

    #[test]
    fn tuple_concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        let b = Tuple::new(vec![Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]).unwrap();
        assert_eq!(p.fields(), &[Value::Bool(true), Value::Int(1)]);
    }

    #[test]
    fn value_display_round_shapes() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        let t = Tuple::new(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(t.to_string(), "(1, 'a')");
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::str("x").as_f64().is_err());
    }

    #[test]
    fn node_count_counts_nested() {
        let inner = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let v = Value::Tuple(Tuple::new(vec![
            Value::Int(0),
            Value::Bag(crate::Bag::from_tuples(vec![inner])),
        ]));
        // tuple + int + bag + (tuple wrapper + 2 ints) = 6
        assert_eq!(v.node_count(), 6);
    }
}
