//! Ablations for the design choices DESIGN.md calls out.
//!
//! - `repr`: graph representation vs expanded polynomials (§3.2's
//!   compactness claim — graphs share sub-derivations, polynomials
//!   explode).
//! - `zoom`: O(V+E) role-tag ZoomOut vs the Definition 4.1
//!   reachability characterization.
//! - `reach`: adjacency-only subgraph queries vs a precomputed
//!   descendant closure (§5.1's memory/time trade-off).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lipstick_bench::run_dealers;
use lipstick_core::graph::validate::intermediate_nodes_by_definition;
use lipstick_core::query::{subgraph, zoom_out, ReachIndex};
use lipstick_core::semiring::Polynomial;
use lipstick_workflowgen::DealersParams;

fn graph_for(num_exec: usize) -> lipstick_core::ProvGraph {
    let params = DealersParams {
        num_cars: 200,
        num_exec,
        seed: 1_000_003,
    };
    run_dealers(&params, true).graph.expect("tracking on")
}

/// Graph vs polynomial representation: compare extracting and expanding
/// polynomials for all module outputs against walking the shared graph.
fn ablation_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_repr");
    group.sample_size(10);
    let g = graph_for(5);
    let outputs: Vec<_> = g
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, lipstick_core::NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .collect();
    group.bench_function("expand_polynomials", |b| {
        b.iter(|| {
            outputs
                .iter()
                .map(|&o| {
                    let expr = g.expr_of(o);
                    Polynomial::from_expr(&expr)
                        .map(|p| p.expanded_size())
                        .unwrap_or_else(|| expr.size())
                })
                .sum::<usize>()
        })
    });
    group.bench_function("graph_signature", |b| {
        b.iter(|| g.visible_signature().0.len())
    });
    group.finish();
}

/// ZoomOut via role tags vs Definition 4.1 reachability.
fn ablation_zoom(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_zoom");
    group.sample_size(10);
    for num_exec in [5usize, 10] {
        let g = graph_for(num_exec);
        group.bench_with_input(BenchmarkId::new("tags", g.len()), &g, |b, g| {
            b.iter_batched(
                || g.clone(),
                |mut g| zoom_out(&mut g, &["Mdealer1"]).expect("zoom"),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("definition", g.len()), &g, |b, g| {
            b.iter(|| {
                g.invocations_of("Mdealer1")
                    .into_iter()
                    .map(|inv| intermediate_nodes_by_definition(g, inv).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

/// Subgraph descendants via BFS vs precomputed reachability index.
fn ablation_reach(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reach");
    group.sample_size(10);
    let g = graph_for(10);
    let roots = g.top_fanout_nodes(8);
    group.bench_function("bfs_subgraph", |b| {
        b.iter(|| {
            roots
                .iter()
                .map(|&r| subgraph(&g, r).expect("visible").len())
                .sum::<usize>()
        })
    });
    group.bench_function("index_build", |b| {
        b.iter(|| ReachIndex::build(&g).memory_bytes())
    });
    let index = ReachIndex::build(&g);
    group.bench_function("indexed_descendants", |b| {
        b.iter(|| {
            roots
                .iter()
                .map(|&r| index.descendants(r).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, ablation_repr, ablation_zoom, ablation_reach);
criterion_main!(benches);
