//! Parallel workflow execution — the Hadoop substitute for Figure 5(c).
//!
//! The paper controls parallelism with Pig's `PARALLEL` clause (number
//! of reducers) on a 27-node Hadoop cluster. Here, ready workflow
//! modules execute on a pool of `reducers` worker threads. Each worker
//! records provenance into a [`ShardTracker`]; on completion the
//! coordinator absorbs the shard into the global tracker (a short
//! critical section that models the reducer-commit overhead) and
//! schedules newly-ready modules. Data semantics are serializable and
//! identical to the sequential executor — a property the tests check.

use std::collections::HashMap;

use crossbeam::channel;
use lipstick_core::graph::shard::ShardTracker;
use lipstick_core::{GraphTracker, NoTracker, NodeId, Tracker};
use lipstick_nrel::Tuple;
use lipstick_piglatin::eval::{ARelation, ATuple, Ann};
use lipstick_piglatin::udf::UdfRegistry;

use crate::dag::{NodeIdx, Workflow};
use crate::error::{Result, WfError};
use crate::exec::{invoke_module, ExecutionOutput, Executor, WorkflowInput, WorkflowState};

/// A tracker that can hand out worker shards and absorb them back.
pub trait ParallelTracker: Tracker {
    /// Worker-local tracker type.
    type Shard: Tracker<Ref = Self::Ref> + Send;

    /// Create an empty shard.
    fn make_shard(&self) -> Self::Shard;

    /// Import a global ref into a shard (placeholder id).
    fn import(shard: &mut Self::Shard, global: Self::Ref) -> Self::Ref;

    /// Absorb a finished shard; returns a function-table mapping shard
    /// refs to global refs.
    fn absorb(&mut self, shard: Self::Shard) -> RemapTable<Self::Ref>;
}

/// Shard→global reference mapping. `None` is the identity (no-op
/// trackers have nothing to remap).
#[derive(Debug)]
pub struct RemapTable<R>(Option<Vec<R>>);

impl RemapTable<NodeId> {
    fn map(&self, r: NodeId) -> NodeId {
        match &self.0 {
            Some(table) => table[r.index()],
            None => r,
        }
    }
}

impl ParallelTracker for NoTracker {
    type Shard = NoTracker;
    fn make_shard(&self) -> NoTracker {
        NoTracker
    }
    fn import(_shard: &mut NoTracker, _global: ()) {}
    fn absorb(&mut self, _shard: NoTracker) -> RemapTable<()> {
        RemapTable(None)
    }
}

impl ParallelTracker for GraphTracker {
    type Shard = ShardTracker;
    fn make_shard(&self) -> ShardTracker {
        ShardTracker::new()
    }
    fn import(shard: &mut ShardTracker, global: NodeId) -> NodeId {
        shard.import(global)
    }
    fn absorb(&mut self, shard: ShardTracker) -> RemapTable<NodeId> {
        RemapTable(Some(self.absorb_shard(shard)))
    }
}

/// Remap every provenance reference in a relation.
fn remap_relation(rel: ARelation<NodeId>, table: &RemapTable<NodeId>) -> ARelation<NodeId> {
    let mut out = ARelation::empty(rel.schema.clone());
    out.rows.reserve(rel.rows.len());
    for row in rel.rows {
        out.rows.push(ATuple {
            tuple: row.tuple,
            ann: Ann {
                prov: table.map(row.ann.prov),
                vrefs: row
                    .ann
                    .vrefs
                    .iter()
                    .map(|(i, r)| (*i, table.map(*r)))
                    .collect(),
            },
            // members are not routed across module boundaries
            members: Vec::new(),
        });
    }
    out
}

/// Import every provenance reference of a relation into a shard.
fn import_relation<T: ParallelTracker>(
    rel: &ARelation<T::Ref>,
    shard: &mut T::Shard,
) -> ARelation<T::Ref> {
    let mut out = ARelation::empty(rel.schema.clone());
    out.rows.reserve(rel.rows.len());
    for row in &rel.rows {
        out.rows.push(ATuple {
            tuple: row.tuple.clone(),
            ann: Ann {
                prov: T::import(shard, row.ann.prov),
                vrefs: row
                    .ann
                    .vrefs
                    .iter()
                    .map(|(i, r)| (*i, T::import(shard, *r)))
                    .collect(),
            },
            members: Vec::new(),
        });
    }
    out
}

/// Run one workflow execution with module-level parallelism on
/// `reducers` worker threads. Specializations exist because shard
/// absorption needs access to the concrete tracker; the generic entry
/// point is [`execute_once_parallel`].
pub fn execute_once_parallel<T: ParallelTracker + Send>(
    wf: &Workflow,
    input: &WorkflowInput,
    state: &mut WorkflowState<T::Ref>,
    tracker: &mut T,
    udfs: &UdfRegistry,
    execution: u32,
    reducers: usize,
) -> Result<ExecutionOutput<T::Ref>>
where
    T::Ref: Send + Sync,
    RemapTable<T::Ref>: RefMapper<T::Ref>,
{
    let reducers = reducers.max(1);
    // Pre-compile every module (the cache is per-Executor; in the
    // parallel path plans are cloned into tasks).
    let mut plan_cache = Executor::new(wf, udfs);
    let mut compiled = Vec::with_capacity(wf.len());
    for i in 0..wf.len() {
        compiled.push(plan_cache.compiled_for(NodeIdx(i as u32))?);
    }

    // Scheduling state.
    let n = wf.len();
    let mut indeg = vec![0usize; n];
    for e in wf.edges() {
        indeg[e.to.index()] += 1;
    }
    let mut staged: HashMap<(NodeIdx, String), ARelation<T::Ref>> = HashMap::new();
    let mut result = ExecutionOutput {
        outputs: HashMap::new(),
    };

    struct Task<T: ParallelTracker> {
        idx: NodeIdx,
        shard: T::Shard,
        external_inputs: HashMap<String, Vec<Tuple>>,
        edge_inputs: HashMap<String, ARelation<T::Ref>>,
        state_rels: HashMap<String, ARelation<T::Ref>>,
        compiled: std::sync::Arc<lipstick_piglatin::plan::Compiled>,
    }
    struct Done<T: ParallelTracker> {
        idx: NodeIdx,
        shard: T::Shard,
        outputs: HashMap<String, ARelation<T::Ref>>,
        new_state: HashMap<String, ARelation<T::Ref>>,
    }

    let (task_tx, task_rx) = channel::unbounded::<Task<T>>();
    let (done_tx, done_rx) = channel::unbounded::<Result<Done<T>>>();

    let mut ready: Vec<NodeIdx> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| NodeIdx(i as u32))
        .collect();
    let mut completed = 0usize;

    crossbeam::scope(|scope| -> Result<()> {
        for _ in 0..reducers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            let wf_ref = &*wf;
            scope.spawn(move |_| {
                while let Ok(mut task) = task_rx.recv() {
                    let node = wf_ref.node(task.idx);
                    let outcome = invoke_module(
                        &node.instance,
                        &node.spec,
                        &task.compiled,
                        &task.external_inputs,
                        std::mem::take(&mut task.edge_inputs),
                        std::mem::take(&mut task.state_rels),
                        &mut task.shard,
                        udfs,
                        execution,
                    );
                    let msg = outcome.map(|inv| Done::<T> {
                        idx: task.idx,
                        shard: task.shard,
                        outputs: inv.outputs,
                        new_state: inv.new_state,
                    });
                    if done_tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        let dispatch = |idx: NodeIdx,
                        staged: &mut HashMap<(NodeIdx, String), ARelation<T::Ref>>,
                        state: &mut WorkflowState<T::Ref>,
                        tracker: &mut T|
         -> Result<()> {
            let node = wf.node(idx);
            let is_input_node = wf.input_nodes().contains(&idx);
            let mut shard = tracker.make_shard();
            let mut external_inputs = HashMap::new();
            let mut edge_inputs = HashMap::new();
            for (rel, _schema) in &node.spec.input_schema {
                if is_input_node {
                    external_inputs.insert(rel.clone(), input.get(&node.instance, rel).to_vec());
                } else if let Some(r) = staged.remove(&(idx, rel.clone())) {
                    edge_inputs.insert(rel.clone(), import_relation::<T>(&r, &mut shard));
                }
            }
            let mut state_rels = HashMap::new();
            for (rel, r) in state.module_state_mut(&node.spec.name).drain() {
                state_rels.insert(rel.clone(), import_relation::<T>(&r, &mut shard));
            }
            task_tx
                .send(Task {
                    idx,
                    shard,
                    external_inputs,
                    edge_inputs,
                    state_rels,
                    compiled: compiled[idx.index()].clone(),
                })
                .expect("workers outlive dispatch");
            Ok(())
        };

        for idx in ready.drain(..) {
            dispatch(idx, &mut staged, state, tracker)?;
        }

        while completed < n {
            let done = done_rx
                .recv()
                .expect("a worker or a pending task always exists")?;
            completed += 1;
            let idx = done.idx;
            let table = tracker.absorb(done.shard);
            // Commit state with refs remapped into global space.
            let node_state = state.module_state_mut(&wf.node(idx).spec.name);
            for (rel, r) in done.new_state {
                node_state.insert(rel, RefMapper::remap(&table, r));
            }
            // Route outputs.
            let node = wf.node(idx);
            let mut remapped_outputs: HashMap<String, ARelation<T::Ref>> = HashMap::new();
            for (rel, r) in done.outputs {
                remapped_outputs.insert(rel, RefMapper::remap(&table, r));
            }
            for edge in wf.outgoing(idx) {
                for rel in &edge.relations {
                    let out = remapped_outputs
                        .get(rel)
                        .expect("edge validated against Sout");
                    // vrefs stay within their invocation (see the
                    // sequential executor's routing).
                    let mut routed = out.clone();
                    for row in &mut routed.rows {
                        row.ann.vrefs.clear();
                    }
                    staged.insert((edge.to, rel.clone()), routed);
                }
                indeg[edge.to.index()] -= 1;
                if indeg[edge.to.index()] == 0 {
                    dispatch(edge.to, &mut staged, state, tracker)?;
                }
            }
            if wf.output_nodes().contains(&idx) {
                result
                    .outputs
                    .insert(node.instance.clone(), remapped_outputs);
            }
        }
        drop(task_tx);
        Ok(())
    })
    .map_err(
        |_| WfError::Cyclic, /* a worker panicked; surfaced as error */
    )??;

    Ok(result)
}

/// Remap an entire relation through a [`RemapTable`]; implemented for
/// both ref types so the executor stays generic.
pub trait RefMapper<R: Copy> {
    fn remap(&self, rel: ARelation<R>) -> ARelation<R>;
}

impl RefMapper<NodeId> for RemapTable<NodeId> {
    fn remap(&self, rel: ARelation<NodeId>) -> ARelation<NodeId> {
        remap_relation(rel, self)
    }
}

impl RefMapper<()> for RemapTable<()> {
    fn remap(&self, rel: ARelation<()>) -> ARelation<()> {
        rel
    }
}
