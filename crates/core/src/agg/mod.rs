//! Provenance for aggregation (paper §2.3, based on PODS'11).
//!
//! Aggregate results are not plain values: they are *values paired with
//! provenance*. SUM-aggregating a set of tuples yields the formal sum
//! `Σᵢ tᵢ ⊗ vᵢ` where `vᵢ` is the aggregated attribute of the i-th tuple
//! and `tᵢ` its provenance annotation. The ⊗ "pairs" values with
//! annotations; the algebra of such sums is a semimodule over N\[X\]
//! tensored with the value monoid.
//!
//! [`aggop::AggOp`] enumerates the aggregate operations of the Pig Latin
//! fragment; [`tensor::AggValue`] is the formal-sum representation, with
//! concrete evaluation under a counting valuation (which the engine's
//! property tests compare against direct aggregation).

pub mod aggop;
pub mod tensor;

pub use aggop::AggOp;
pub use tensor::AggValue;
