//! Evaluation of compiled programs with provenance capture.
//!
//! Every tuple flowing through the engine is an [`ATuple`]: the tuple
//! value plus an [`Ann`] — its provenance reference and any *value
//! references* (v-nodes for fields computed by aggregation or black
//! boxes). Bag fields produced by GROUP/COGROUP additionally carry the
//! member tuples' annotations so later aggregation can pair each
//! member's value with its provenance (the ⊗ tensor construction).
//!
//! All operators are generic over [`Tracker`]; run them with
//! [`lipstick_core::NoTracker`] for the provenance-free baseline.

pub mod context;
pub mod foreach;
pub mod group;
pub mod join;
pub mod setops;
#[cfg(test)]
mod tests;

pub use context::{ARelation, ATuple, Ann, Env};

use lipstick_core::Tracker;

use crate::error::{PigError, Result};
use crate::plan::{COp, Compiled};
use crate::udf::UdfRegistry;

/// Execute a compiled program against an environment, binding every
/// statement's result under its alias.
pub fn execute<T: Tracker>(
    program: &Compiled,
    env: &mut Env<T::Ref>,
    tracker: &mut T,
    udfs: &UdfRegistry,
) -> Result<()> {
    for stmt in &program.stmts {
        let out = match &stmt.op {
            COp::Filter { input, cond } => {
                setops::eval_filter(env.relation_or_err(input)?, cond, stmt.schema.clone())?
            }
            COp::Foreach { input, items } => foreach::eval_foreach(
                env.relation_or_err(input)?,
                items,
                stmt.schema.clone(),
                tracker,
                udfs,
            )?,
            COp::Group { input, keys, .. } => group::eval_group(
                env.relation_or_err(input)?,
                keys.as_deref(),
                stmt.schema.clone(),
                tracker,
            )?,
            COp::Cogroup { inputs } => {
                let mut rels = Vec::with_capacity(inputs.len());
                for (alias, keys) in inputs {
                    rels.push((env.relation_or_err(alias)?, keys.as_slice()));
                }
                group::eval_cogroup(&rels, stmt.schema.clone(), tracker)?
            }
            COp::Join { left, right } => join::eval_join(
                env.relation_or_err(&left.0)?,
                &left.1,
                env.relation_or_err(&right.0)?,
                &right.1,
                stmt.schema.clone(),
                tracker,
            )?,
            COp::Union { inputs } => {
                let mut rels = Vec::with_capacity(inputs.len());
                for alias in inputs {
                    rels.push(env.relation_or_err(alias)?);
                }
                setops::eval_union(&rels, stmt.schema.clone())
            }
            COp::Distinct { input } => {
                setops::eval_distinct(env.relation_or_err(input)?, stmt.schema.clone(), tracker)
            }
            COp::Order { input, keys } => {
                setops::eval_order(env.relation_or_err(input)?, keys, stmt.schema.clone())?
            }
            COp::Limit { input, count } => {
                setops::eval_limit(env.relation_or_err(input)?, *count, stmt.schema.clone())
            }
        };
        env.bind(stmt.alias.clone(), out);
    }
    Ok(())
}

/// Parse, compile, and execute a script in one call (convenience for
/// tests and examples).
pub fn run_script<T: Tracker>(
    script: &str,
    env: &mut Env<T::Ref>,
    tracker: &mut T,
    udfs: &UdfRegistry,
) -> Result<Compiled> {
    let program = crate::parse(script)?;
    let compiled = crate::plan::compile(&program, &env.schemas(), udfs)?;
    execute(&compiled, env, tracker, udfs)?;
    Ok(compiled)
}

impl<R: Copy> Env<R> {
    pub(crate) fn relation_or_err(&self, alias: &str) -> Result<&ARelation<R>> {
        self.relation(alias)
            .ok_or_else(|| PigError::UnknownAlias(alias.to_string()))
    }
}
