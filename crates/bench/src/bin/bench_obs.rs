//! Observability overhead benchmarks.
//!
//! Writes `BENCH_obs.json` so the cost of the span tracer and metrics
//! registry is tracked across PRs:
//!
//! - `trace_overhead`: the same read statements executed with tracing
//!   disabled (the default for every statement that is not under
//!   `EXPLAIN ANALYZE`) vs under a live tracer — the headline claim is
//!   that a live tracer stays within 5% of untraced execution;
//! - `counter_hot_path`: the sharded registry counter vs a plain
//!   uncontended `AtomicU64` increment, per operation;
//! - `hot_cache_server`: median round-trip for a cache-hit statement on
//!   a `lipstick-serve` instance — the path the timing trailers and
//!   per-statement instruments were added to — plus a `/metrics` scrape
//!   validated in-process.
//!
//! Usage: `bench_obs [--smoke] [--out PATH]`. `--smoke` runs one
//! iteration of everything (CI keeps it in the build to catch rot); the
//! default run uses enough iterations for stable medians, and asserts
//! the ≤5% tracing-overhead claim.

use std::time::Instant;

use lipstick_bench::run_dealers;
use lipstick_core::obs::{registry, validate_prometheus_text, Tracer};
use lipstick_proql::parser::parse_statement;
use lipstick_proql::Session;
use lipstick_serve::{Client, Server, ServerConfig};
use lipstick_workflowgen::DealersParams;

/// Median wall-clock of `reps` runs of `f`, in nanoseconds.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut samples: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let reps = if smoke { 1 } else { 41 };

    let graph = run_dealers(
        &DealersParams {
            num_cars: 200,
            num_exec: 20,
            seed: 1_000_003,
        },
        true,
    )
    .graph
    .expect("tracking on");
    eprintln!("graph: {} nodes", graph.len());
    let graph_nodes = graph.len();

    // ---- traced vs untraced execution ----
    // A mix of the executor shapes spans were threaded through: a full
    // scan, a predicate scan, a bounded walk, and a flattened union.
    let statements: Vec<_> = [
        "MATCH base-nodes",
        "MATCH m-nodes WHERE execution < 3",
        "DESCENDANTS OF #0 DEPTH 4",
        "MATCH base-nodes UNION MATCH m-nodes UNION MATCH o-nodes",
    ]
    .iter()
    .map(|s| parse_statement(s).unwrap())
    .collect();
    let session = Session::new(graph);
    let run_untraced = |session: &Session| {
        for stmt in &statements {
            session.run_read_stmt(stmt).unwrap();
        }
    };
    let run_traced = |session: &Session| {
        for stmt in &statements {
            let tracer = Tracer::new();
            session.run_read_stmt_traced(stmt, Some(&tracer)).unwrap();
            std::hint::black_box(tracer.finish());
        }
    };
    // Paired samples, alternating order each rep: machine-level drift
    // (a neighbour process, frequency scaling) hits both variants of a
    // pair equally, so the median of per-pair ratios isolates the
    // tracer's own cost far better than two independent medians.
    let mut untraced_samples = Vec::with_capacity(reps);
    let mut traced_samples = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (u, t) = if rep % 2 == 0 {
            let u = median_ns(1, || run_untraced(&session));
            let t = median_ns(1, || run_traced(&session));
            (u, t)
        } else {
            let t = median_ns(1, || run_traced(&session));
            let u = median_ns(1, || run_untraced(&session));
            (u, t)
        };
        untraced_samples.push(u);
        traced_samples.push(t);
        ratios.push(t as f64 / u.max(1) as f64);
    }
    untraced_samples.sort_unstable();
    traced_samples.sort_unstable();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let untraced_ns = untraced_samples[untraced_samples.len() / 2];
    let traced_ns = traced_samples[traced_samples.len() / 2];
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    eprintln!(
        "trace overhead: untraced {:.1} µs, traced {:.1} µs, {overhead_pct:+.2}%",
        untraced_ns as f64 / 1e3,
        traced_ns as f64 / 1e3
    );

    // ---- registry counter vs plain atomic ----
    let counter = registry().counter("lipstick_bench_obs_ops_total", "bench_obs scratch counter");
    let plain = std::sync::atomic::AtomicU64::new(0);
    let ops = if smoke { 1_000 } else { 1_000_000 };
    let counter_ns = median_ns(reps.min(9), || {
        for _ in 0..ops {
            counter.inc();
        }
    });
    let plain_ns = median_ns(reps.min(9), || {
        for _ in 0..ops {
            plain.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    });
    let counter_ns_per_op = counter_ns as f64 / ops as f64;
    eprintln!(
        "counter: {:.2} ns/op (plain atomic {:.2} ns/op)",
        counter_ns_per_op,
        plain_ns as f64 / ops as f64
    );

    // ---- hot-cache server round trip + /metrics scrape ----
    let log_path = std::env::temp_dir().join(format!("bench-obs-{}.lpstk", std::process::id()));
    let small = run_dealers(
        &DealersParams {
            num_cars: 24,
            num_exec: 2,
            seed: 7,
        },
        true,
    )
    .graph
    .unwrap();
    lipstick_storage::write_graph_v2(&small, &log_path).unwrap();
    let handle = Server::new(
        Session::open(&log_path).unwrap(),
        ServerConfig {
            workers: 2,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let warm = client.query("MATCH base-nodes").unwrap();
    assert!(warm.is_ok(), "{warm:?}");
    let hot_ns = median_ns(reps, || {
        let reply = client.query("MATCH base-nodes").unwrap();
        assert!(reply.cache_hit(), "hot path must stay cached");
        reply
    });
    let (status, scrape) =
        lipstick_serve::client::http_get(handle.addr(), "/metrics").expect("scrape /metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    validate_prometheus_text(&scrape).expect("self-scrape must be valid exposition");
    let scrape_lines = scrape.lines().count();
    eprintln!(
        "hot-cache round trip: {:.1} µs; /metrics scrape: {scrape_lines} line(s), valid",
        hot_ns as f64 / 1e3
    );
    drop(client);
    handle.shutdown();
    std::fs::remove_file(&log_path).ok();

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"graph_nodes\": {graph_nodes},\n  \
         \"trace_overhead\": {{ \"statements\": {nstmts}, \"untraced_us\": {untraced_us:.1}, \
         \"traced_us\": {traced_us:.1}, \"overhead_pct\": {overhead_pct:.2} }},\n  \
         \"counter_hot_path\": {{ \"ops\": {ops}, \"registry_ns_per_op\": {counter_ns_per_op:.2}, \
         \"plain_atomic_ns_per_op\": {plain_per_op:.2} }},\n  \
         \"hot_cache_server\": {{ \"round_trip_us\": {hot_us:.1}, \
         \"metrics_scrape_lines\": {scrape_lines}, \"metrics_valid\": true }}\n}}\n",
        nstmts = statements.len(),
        untraced_us = untraced_ns as f64 / 1e3,
        traced_us = traced_ns as f64 / 1e3,
        plain_per_op = plain_ns as f64 / ops as f64,
        hot_us = hot_ns as f64 / 1e3,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    eprintln!("wrote {out_path}");
    print!("{json}");

    if !smoke {
        // The tentpole's headline claim: tracing must be opt-in-cheap.
        // 5% is the budget; the median over a 4-statement batch keeps
        // scheduler noise out of the figure.
        assert!(
            overhead_pct <= 5.0,
            "live tracer exceeded the 5% overhead budget: {overhead_pct:+.2}%"
        );
    }
}
