//! `CHECK` / `EXPLAIN LINT` static-analysis tests: exact snapshots of
//! diagnostic codes, byte spans, suggestions, and the caret rendering;
//! proof that CHECK never executes the statement it analyzes; and
//! resident/paged agreement on a corpus of broken statements (the
//! three-engine differential lives in `tests/differential.rs`).

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::{Session, Severity};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph() -> ProvGraph {
    let mut tracker = GraphTracker::new();
    dealers::run_declining(
        &DealersParams {
            num_cars: 8,
            num_exec: 2,
            seed: 42,
        },
        &mut tracker,
    )
    .expect("dealers run");
    tracker.finish()
}

fn temp_log(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lipstick-proql-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("graph-{tag}.lpstk"));
    write_graph_v2(&dealers_graph(), &path).unwrap();
    path
}

/// A broken-statement corpus covering every diagnostic family. Kept in
/// sync with the differential harness's corpus by convention: these are
/// the *interesting* shapes, that one locks cross-engine agreement.
const CORPUS: &[&str] = &[
    "MATCH q-nodes",
    "MATCH nodes WHERE size = 3",
    "MATCH nodes WHERE kind = 'detla'",
    "MATCH nodes WHERE module = 'Mag'",
    "MATCH nodes WHERE",
    "EVAL #0 IN countng",
    "MATCH nodes WHERE execution = 'two'",
    "MATCH m-nodes WHERE token = 'C2'",
    "SUBGRAPH OF #999999",
    "MATCH nodes WHERE module = 'a' AND module = 'b'",
    "MATCH nodes WHERE execution > 5 AND execution < 3",
    "MATCH nodes",
    "ANCESTORS OF #0",
    "DESCENDANTS OF #0 DEPTH 0",
    "MATCH nodes WHERE kind LIKE 'delta'",
    "MATCH base-nodes WHERE kind != 'base_tuple'",
    "MATCH nodes WHERE role = 'free' AND role = 'free'",
    "DELETE #0 PROPAGATE",
];

#[test]
fn clean_statement_reports_no_diagnostics() {
    let path = temp_log("clean");
    let session = Session::load(&path).unwrap();
    let out = session
        .run_read("CHECK MATCH m-nodes WHERE module = 'Magg'")
        .unwrap();
    assert_eq!(out.to_string(), "no diagnostics: statement is clean");
    assert!(out.diagnostics().unwrap().is_clean());
    std::fs::remove_file(&path).ok();
}

#[test]
fn kind_typo_snapshot_code_span_suggestion_and_rendering() {
    let path = temp_log("typo");
    let session = Session::load(&path).unwrap();
    let inner = "MATCH nodes WHERE kind = 'detla'";
    let d = session.check(inner);
    assert_eq!(d.items.len(), 1);
    let item = &d.items[0];
    assert_eq!(item.code, "W202");
    assert_eq!(item.severity, Severity::Warning);
    // The span covers the quoted literal, as bytes into the source.
    let at = inner.find("'detla'").unwrap();
    assert_eq!((item.span.start, item.span.end), (at, at + "'detla'".len()));
    assert_eq!(item.suggestion.as_deref(), Some("did you mean 'delta'?"));
    assert_eq!(
        d.to_string(),
        "warning[W202]: no node kind named 'detla'; the comparison can never match\n  \
         --> 1:26 (bytes 25..32)\n   \
         1 | MATCH nodes WHERE kind = 'detla'\n     \
         |                          ^^^^^^^\n     \
         = help: did you mean 'delta'?\n\
         1 diagnostic(s): 0 error(s), 1 warning(s), 0 info"
    );
    // CHECK and the direct helper agree, and both serve paths render
    // through the same Display.
    let out = session.run_read(&format!("CHECK {inner}")).unwrap();
    assert_eq!(out.to_string(), d.to_string());
    std::fs::remove_file(&path).ok();
}

#[test]
fn parse_stage_errors_carry_spans_and_suggestions() {
    let path = temp_log("parse");
    let session = Session::load(&path).unwrap();

    let d = session.check("MATCH q-nodes");
    assert_eq!(d.items.len(), 1);
    assert_eq!(d.items[0].code, "E003");
    assert_eq!(
        &d.source[d.items[0].span.start..d.items[0].span.end],
        "q-nodes"
    );
    // Every one-letter class is distance 1 from `q-nodes`; ties break
    // lexicographically so all backends agree.
    assert_eq!(
        d.items[0].suggestion.as_deref(),
        Some("did you mean 'i-nodes'?")
    );

    let d = session.check("MATCH nodes WHERE size = 3");
    assert_eq!(d.items[0].code, "E004");
    assert_eq!(
        &d.source[d.items[0].span.start..d.items[0].span.end],
        "size"
    );

    let d = session.check("EVAL #0 IN countng");
    assert_eq!(d.items[0].code, "E005");
    assert_eq!(
        &d.source[d.items[0].span.start..d.items[0].span.end],
        "countng"
    );
    assert_eq!(
        d.items[0].suggestion.as_deref(),
        Some("did you mean 'counting'?")
    );

    // A dangling WHERE: plain syntax error, zero-width span at the end.
    let d = session.check("MATCH nodes WHERE");
    assert_eq!(d.items[0].code, "E002");
    assert_eq!(d.items[0].span.start, d.source.len());

    // Lex errors surface too, at a byte offset.
    let d = session.check("MATCH nodes @");
    assert_eq!(d.items[0].code, "E001");
    assert_eq!(d.items[0].span.start, 12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn semantic_and_cost_lints_fire_with_codes() {
    let path = temp_log("lints");
    let session = Session::load(&path).unwrap();
    let code_of = |stmt: &str| -> Vec<&'static str> {
        session.check(stmt).items.iter().map(|d| d.code).collect()
    };

    assert_eq!(code_of("MATCH nodes WHERE module = 'Mag'"), ["W201"]);
    assert_eq!(code_of("MATCH nodes WHERE role = 'fre'"), ["W203"]);
    assert_eq!(code_of("MATCH nodes WHERE execution = 99"), ["W204"]);
    assert_eq!(code_of("MATCH nodes WHERE execution = 'two'"), ["W210"]);
    assert_eq!(code_of("MATCH nodes WHERE execution != 'two'"), ["W211"]);
    assert_eq!(code_of("MATCH m-nodes WHERE token = 'C2'"), ["W212"]);
    // Diagnostics sort by span start: the unknown-module warning for
    // 'a', then the contradiction (anchored at the whole second
    // conjunct), then the unknown-module warning for 'b'.
    assert_eq!(
        code_of("MATCH nodes WHERE module = 'a' AND module = 'b'"),
        ["W201", "W213", "W201"]
    );
    assert_eq!(
        code_of("MATCH nodes WHERE execution > 5 AND execution < 3"),
        ["W214"]
    );
    assert_eq!(
        code_of("MATCH base-nodes WHERE kind != 'base_tuple'"),
        ["W215"]
    );
    assert_eq!(
        code_of("MATCH nodes WHERE role = 'free' AND role = 'free'"),
        ["W216"]
    );
    assert_eq!(code_of("ANCESTORS OF #0"), ["C301"]);
    assert_eq!(code_of("MATCH nodes"), ["C302"]);
    assert_eq!(code_of("MATCH nodes WHERE kind LIKE 'delta'"), ["I401"]);
    assert_eq!(code_of("DESCENDANTS OF #0 DEPTH 0"), ["I404"]);
    assert_eq!(code_of("SUBGRAPH OF #999999"), ["E101"]);
    assert_eq!(code_of("DELETE #0 PROPAGATE"), ["I405"]);
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_never_executes_even_mutating_statements() {
    let path = temp_log("noexec");
    let mut session = Session::load(&path).unwrap();
    let before = session.run_one("COUNT(*) MATCH nodes").unwrap().to_string();

    // CHECK of a DELETE is read-only: it runs through the shared-access
    // path and must leave the graph untouched.
    let out = session.run_read("CHECK DELETE #0 PROPAGATE").unwrap();
    let d = out.diagnostics().unwrap();
    assert!(d.items.iter().any(|i| i.code == "I405"));

    let after = session.run_one("COUNT(*) MATCH nodes").unwrap().to_string();
    assert_eq!(before, after, "CHECK must not execute the statement");
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_stays_paged_and_matches_resident_byte_for_byte() {
    let path = temp_log("paged");
    let resident = Session::load(&path).unwrap();
    let paged = Session::open(&path).unwrap();
    assert!(paged.is_paged());
    for stmt in CORPUS {
        let text = format!("CHECK {stmt}");
        let r = resident.run_read(&text).unwrap().to_string();
        let p = paged.run_read(&text).unwrap().to_string();
        assert_eq!(r, p, "diagnostics diverged on: {text}");
        let rj = resident.run_read(&text).unwrap().to_json();
        let pj = paged.run_read(&text).unwrap().to_json();
        assert_eq!(rj, pj, "JSON diagnostics diverged on: {text}");
    }
    assert!(paged.is_paged(), "CHECK must not promote a paged session");
    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_lint_is_byte_identical_to_check() {
    let path = temp_log("lint-alias");
    let session = Session::load(&path).unwrap();
    for stmt in CORPUS {
        let c = session.run_read(&format!("CHECK {stmt}")).unwrap();
        let l = session.run_read(&format!("EXPLAIN LINT {stmt}")).unwrap();
        assert_eq!(c, l, "EXPLAIN LINT diverged from CHECK on: {stmt}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn check_round_trips_through_display_and_cache_key() {
    // The canonical rendering is the serve cache key; CHECK must
    // survive a parse → display → parse loop with its source verbatim.
    let text = "CHECK MATCH nodes WHERE kind = 'detla'";
    let stmt = lipstick_proql::parser::parse_statement(text).unwrap();
    assert_eq!(stmt.to_string(), text);
    let reparsed = lipstick_proql::parser::parse_statement(&stmt.to_string()).unwrap();
    assert_eq!(reparsed, stmt);
}
