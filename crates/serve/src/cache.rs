//! The plan-keyed result cache.
//!
//! Keys are the canonical [`Display`](lipstick_proql::ast::Statement)
//! rendering of the *parsed* statement, so two spellings of the same
//! query — different whitespace, keyword case, a trailing `;`, an
//! omitted optional keyword (`ANCESTORS #1` vs `ANCESTORS OF #1`) —
//! share one entry. Every entry is tagged with the
//! server's write epoch at execution time; a lookup only hits when the
//! tags match, so a mutation (which bumps the epoch) invalidates the
//! whole cache at once without touching it — the same
//! invalidate-on-write discipline the session already applies to its
//! reachability index. Stale entries are dropped lazily on lookup and
//! by LRU eviction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached, fully rendered query result: both wire representations,
/// produced once at insert so repeated hits skip planning, execution,
/// *and* rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Line-protocol payload ([`std::fmt::Display`] of the output).
    pub text: String,
    /// HTTP-shim payload (`QueryOutput::to_json`).
    pub json: String,
}

struct Entry {
    epoch: u64,
    result: CachedResult,
    last_used: u64,
}

struct Lru {
    map: HashMap<String, Entry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
}

/// A bounded, epoch-aware LRU from normalized statements to rendered
/// results. Eviction scans for the least-recently-used entry — O(n) at
/// the default capacity of a few hundred entries, which is far below
/// the cost of the query execution a hit saves.
///
/// Capacity 0 disables the cache entirely (every lookup misses, every
/// insert is dropped) — the `proql_server` bench's uncached baseline.
pub struct QueryCache {
    inner: Mutex<Lru>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key` at the given epoch. An entry from an older epoch
    /// is stale: it is removed and the lookup misses.
    pub fn get(&self, key: &str, epoch: u64) -> Option<CachedResult> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        lru.tick += 1;
        let tick = lru.tick;
        match lru.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = tick;
                let result = entry.result.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            Some(_) => {
                lru.map.remove(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a result computed at `epoch`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&self, key: String, epoch: u64, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        lru.tick += 1;
        let tick = lru.tick;
        if !lru.map.contains_key(&key) && lru.map.len() >= self.capacity {
            // Prefer evicting a stale entry; otherwise the coldest.
            let victim = lru
                .map
                .iter()
                .min_by_key(|(_, e)| (e.epoch == epoch, e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                lru.map.remove(&v);
            }
        }
        lru.map.insert(
            key,
            Entry {
                epoch,
                result,
                last_used: tick,
            },
        );
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (including stale-entry evictions) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Live entries (stale ones included until they are looked up or
    /// evicted).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            text: tag.to_string(),
            json: format!("\"{tag}\""),
        }
    }

    #[test]
    fn hit_after_insert_at_same_epoch() {
        let cache = QueryCache::new(4);
        assert_eq!(cache.get("q", 0), None);
        cache.insert("q".into(), 0, result("r"));
        assert_eq!(cache.get("q", 0), Some(result("r")));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = QueryCache::new(4);
        cache.insert("q".into(), 0, result("old"));
        assert_eq!(cache.get("q", 1), None, "stale entry must not serve");
        assert_eq!(cache.len(), 0, "stale entry dropped on lookup");
        cache.insert("q".into(), 1, result("new"));
        assert_eq!(cache.get("q", 1), Some(result("new")));
    }

    #[test]
    fn lru_evicts_coldest_first_and_stale_before_fresh() {
        let cache = QueryCache::new(2);
        cache.insert("a".into(), 0, result("a"));
        cache.insert("b".into(), 0, result("b"));
        let _ = cache.get("a", 0); // b is now coldest
        cache.insert("c".into(), 0, result("c"));
        assert_eq!(cache.get("b", 0), None, "coldest evicted");
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("c", 0).is_some());
        // A stale entry is preferred over any fresh one, even a colder
        // fresh one.
        let cache = QueryCache::new(2);
        cache.insert("fresh".into(), 1, result("f"));
        cache.insert("stale".into(), 0, result("s"));
        let _ = cache.get("stale", 0); // stale is warmest, fresh coldest
        cache.insert("new".into(), 1, result("n"));
        assert!(cache.get("fresh", 1).is_some(), "fresh survived");
        assert!(cache.get("new", 1).is_some());
    }
}
