//! Property-style integration tests: the provenance graph's what-if
//! answers must agree with actually re-running the workflow on reduced
//! inputs — across crates, through the full workflow machinery.

use lipstick::core::semiring::boolean::Bools;
use lipstick::core::semiring::eval::{eval_expr, Valuation};
use lipstick::core::{GraphTracker, NodeKind, Semiring};
use lipstick::prelude::*;
use lipstick::workflowgen::arctic::{self, ArcticParams, Selectivity, Topology};

/// Deleting an observation that is NOT the minimum must leave the
/// workflow's output value unchanged (re-execution oracle), and the
/// provenance graph must agree (the output's ⊗ tensors recompute to
/// the same minimum).
#[test]
fn deleting_a_non_minimal_observation_preserves_the_minimum() {
    let params = ArcticParams {
        stations: 2,
        topology: Topology::Parallel,
        selectivity: Selectivity::All,
        num_exec: 1,
        seed: 33,
    };
    let mut tracker = GraphTracker::new();
    let (_, _, outs) = arctic::run(&params, &mut tracker).unwrap();
    let out_row = &outs[0].relation("Mout", "MinTemp").unwrap().rows[0];
    let min_temp = out_row.tuple.get(0).unwrap().as_f64().unwrap();
    let g = tracker.finish();

    // Find a station-0 observation whose temperature is far above the
    // minimum.
    let victim = g
        .iter_visible()
        .find(|(_, n)| {
            matches!(&n.kind, NodeKind::BaseTuple { token }
                if token.as_str().starts_with("S0.O"))
        })
        .map(|(id, _)| id)
        .expect("seeded observations exist");

    // Graph-side: the final MIN aggregate recomputes to the same value
    // without the victim. Find the Mout MIN v-node via the output row.
    let vref = out_row.ann.vref(0).expect("MIN value node");
    let agg = g.agg_value_of(vref).expect("aggregate");
    let victim_token = match &g.node(victim).kind {
        NodeKind::BaseTuple { token } => token.to_string(),
        _ => unreachable!(),
    };
    // Only sound if the victim is not itself the minimum: check first.
    let v = Valuation::with_default(lipstick::core::semiring::natural::Natural(1))
        .set(&victim_token, lipstick::core::semiring::natural::Natural(0));
    let recomputed = agg.evaluate(&v).unwrap();
    let without_victim = recomputed.as_f64().unwrap();
    assert!(
        without_victim >= min_temp,
        "removing a tuple can only raise the minimum"
    );
}

/// Boolean-semiring survival of a station's output against deletion of
/// ALL of its fresh measurements and seeded observations: with
/// `Selectivity::All` the station minimum derives from state, so
/// deleting one observation never kills the output tuple.
#[test]
fn station_output_survives_single_observation_deletion() {
    let params = ArcticParams {
        stations: 2,
        topology: Topology::Serial,
        selectivity: Selectivity::All,
        num_exec: 1,
        seed: 5,
    };
    let mut tracker = GraphTracker::new();
    let (_, _, outs) = arctic::run(&params, &mut tracker).unwrap();
    let out_prov = outs[0].relation("Mout", "MinTemp").unwrap().rows[0]
        .ann
        .prov;
    let g = tracker.finish();
    let expr = g.expr_of(out_prov);
    let surviving = eval_expr(
        &expr,
        &Valuation::<Bools>::with_default(Bools::one()).set("S0.O17", Bools(false)),
    );
    assert!(surviving.0, "δ over 480 observations has other derivations");
}

/// Workflow-level determinism: two identical runs produce identical
/// outputs and isomorphic graphs (equal node-kind census and edges).
#[test]
fn runs_are_deterministic() {
    let params = ArcticParams {
        stations: 3,
        topology: Topology::Dense { fanout: 2 },
        selectivity: Selectivity::Month,
        num_exec: 3,
        seed: 77,
    };
    let mut t1 = GraphTracker::new();
    let (_, _, o1) = arctic::run(&params, &mut t1).unwrap();
    let g1 = t1.finish();
    let mut t2 = GraphTracker::new();
    let (_, _, o2) = arctic::run(&params, &mut t2).unwrap();
    let g2 = t2.finish();
    for (a, b) in o1.iter().zip(&o2) {
        assert_eq!(
            a.relation("Mout", "MinTemp").unwrap().tuples(),
            b.relation("Mout", "MinTemp").unwrap().tuples()
        );
    }
    assert_eq!(g1.visible_signature(), g2.visible_signature());
}

/// The sequential and parallel executors agree on outputs and graph
/// censuses for the dealership workflow (the Fig 5(c) workload).
#[test]
fn parallel_dealers_agree_with_sequential() {
    use lipstick::workflow::parallel::execute_once_parallel;
    use lipstick::workflowgen::dealers::{self, DealersParams};

    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 3,
    };
    // Sequential reference.
    let mut seq_tracker = GraphTracker::new();
    let (_, _, seq) = dealers::run_declining(&params, &mut seq_tracker).unwrap();
    let seq_g = seq_tracker.finish();

    // Parallel with 4 reducers.
    let mut udfs = UdfRegistry::new();
    let wf = dealers::build(&mut udfs);
    let mut state = WorkflowState::empty(&wf);
    let mut tracker = GraphTracker::new();
    dealers::seed_state(&wf, &mut state, &mut tracker, &params).unwrap();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut buyer = dealers::Buyer::draw(&mut rng);
    buyer.reserve = 0.0;
    let mut par_outputs = Vec::new();
    for e in 0..params.num_exec {
        let input = dealers::execution_input(&buyer, e as u32, 0.99);
        par_outputs.push(
            execute_once_parallel(&wf, &input, &mut state, &mut tracker, &udfs, e as u32, 4)
                .unwrap(),
        );
    }
    let par_g = tracker.finish();

    for (a, b) in seq.outputs.iter().zip(&par_outputs) {
        assert_eq!(
            a.relation("Mcar", "Car").unwrap().tuples().len(),
            b.relation("Mcar", "Car").unwrap().tuples().len()
        );
    }
    let s1 = lipstick::prelude::stats(&seq_g);
    let s2 = lipstick::prelude::stats(&par_g);
    assert_eq!(s1.by_kind, s2.by_kind);
    assert_eq!(s1.edges, s2.edges);
}
