//! Query outputs.

use std::fmt;

use lipstick_core::graph::dot::to_dot_induced;
use lipstick_core::{NodeId, ProvGraph};

/// A sorted node set plus the work the executor did to produce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSetResult {
    /// Members, ascending by id.
    pub nodes: Vec<NodeId>,
    /// Nodes the executor visited (the planner's cost unit), summed
    /// over sub-plans for set operations.
    pub visited: usize,
}

impl NodeSetResult {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// Render the induced subgraph as Graphviz DOT.
    pub fn to_dot(&self, graph: &ProvGraph, name: &str) -> String {
        to_dot_induced(graph, name, &self.nodes)
    }

    /// Multi-line listing with node labels, capped at `limit` rows.
    pub fn render(&self, graph: &ProvGraph, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{} nodes (visited {})", self.len(), self.visited);
        for id in self.nodes.iter().take(limit) {
            let node = graph.node(*id);
            let _ = write!(
                out,
                "\n  {id}  {}  [{}]",
                node.kind.label(),
                node.kind.name()
            );
        }
        if self.len() > limit {
            let _ = write!(out, "\n  … {} more", self.len() - limit);
        }
        out
    }
}

impl fmt::Display for NodeSetResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nodes (visited {}):", self.len(), self.visited)?;
        for chunk in self.nodes.chunks(16) {
            write!(f, "\n  ")?;
            for (i, id) in chunk.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{id}")?;
            }
        }
        Ok(())
    }
}

/// The result of one executed ProQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Node-set queries (`MATCH`, walks, `SUBGRAPH OF`, set ops).
    Nodes(NodeSetResult),
    /// `DEPENDS`.
    Bool(bool),
    /// `WHY`, `EVAL`, `STATS`, `EXPLAIN`.
    Text(String),
    /// `DELETE … PROPAGATE`: the deleted node ids, root first.
    Deleted { nodes: Vec<NodeId> },
    /// Zoom and index statements report what they did.
    Message(String),
}

impl QueryOutput {
    /// The node set, when this output carries one.
    pub fn nodes(&self) -> Option<&NodeSetResult> {
        match self {
            QueryOutput::Nodes(ns) => Some(ns),
            _ => None,
        }
    }

    /// The boolean, when this output carries one.
    pub fn bool_value(&self) -> Option<bool> {
        match self {
            QueryOutput::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The text, when this output carries some.
    pub fn text(&self) -> Option<&str> {
        match self {
            QueryOutput::Text(t) => Some(t),
            QueryOutput::Message(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::Nodes(ns) => write!(f, "{ns}"),
            QueryOutput::Bool(b) => write!(f, "{b}"),
            QueryOutput::Text(t) => write!(f, "{t}"),
            QueryOutput::Deleted { nodes } => {
                write!(f, "deleted {} nodes:", nodes.len())?;
                for chunk in nodes.chunks(16) {
                    write!(f, "\n  ")?;
                    for (i, id) in chunk.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{id}")?;
                    }
                }
                Ok(())
            }
            QueryOutput::Message(m) => write!(f, "{m}"),
        }
    }
}
