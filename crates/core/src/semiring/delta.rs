//! The δ (duplicate elimination) extension.
//!
//! Group-by "requires exactly one tuple for each occurring value of the
//! grouping attribute — an implicit duplicate elimination" (§2.3). The
//! result tuple of a group with member provenances t₁…tₙ is annotated
//! `δ(t₁ + … + tₙ)`.
//!
//! δ is characterized by the equations (for + -idempotent targets it
//! collapses to the identity):
//!
//! - `δ(0) = 0`, `δ(1) = 1`
//! - `δ(δ(a)) = δ(a)`          (idempotence)
//! - `δ(a)·δ(a) = δ(a)`        (multiplicative idempotence of dedup)
//!
//! This module implements δ-normalization for [`ProvExpr`] under those
//! equations, used to compare expressions extracted from provenance
//! graphs.

use super::expr::ProvExpr;

/// Apply the δ-equations as a rewriting normalization (outside-in):
///
/// - `δ(0) → 0`, `δ(1) → 1`
/// - `δ(δ(e)) → δ(e)`
/// - within sums/products, recurse.
///
/// The result is δ-minimal: no δ directly wraps 0, 1, or another δ.
pub fn normalize(e: &ProvExpr) -> ProvExpr {
    match e {
        ProvExpr::Zero | ProvExpr::One | ProvExpr::Tok(_) => e.clone(),
        ProvExpr::Sum(v) => ProvExpr::sum(v.iter().map(normalize)),
        ProvExpr::Prod(v) => ProvExpr::prod(v.iter().map(normalize)),
        ProvExpr::Delta(inner) => {
            let n = normalize(inner);
            match n {
                ProvExpr::Zero => ProvExpr::Zero,
                ProvExpr::One => ProvExpr::One,
                ProvExpr::Delta(_) => n,
                other => ProvExpr::Delta(Box::new(other)),
            }
        }
    }
}

/// Check whether two expressions are equal modulo δ-normalization and
/// the smart-constructor algebraic simplifications (flattening, identity
/// and annihilator elimination). This is *sound* but not complete for
/// full semiring equivalence (it does not distribute products over sums).
pub fn delta_equal(a: &ProvExpr, b: &ProvExpr) -> bool {
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_of_one_is_one() {
        let e = ProvExpr::Delta(Box::new(ProvExpr::One));
        assert_eq!(normalize(&e), ProvExpr::One);
    }

    #[test]
    fn nested_delta_collapses() {
        let e = ProvExpr::Delta(Box::new(ProvExpr::delta(ProvExpr::tok("a"))));
        assert_eq!(normalize(&e), ProvExpr::delta(ProvExpr::tok("a")));
    }

    #[test]
    fn delta_of_zero_inside_sum_vanishes() {
        let e = ProvExpr::Sum(vec![
            ProvExpr::Delta(Box::new(ProvExpr::Zero)),
            ProvExpr::tok("b"),
        ]);
        assert_eq!(normalize(&e), ProvExpr::tok("b"));
    }

    #[test]
    fn delta_equal_modulo_flattening() {
        let a = ProvExpr::Sum(vec![
            ProvExpr::tok("x"),
            ProvExpr::Sum(vec![ProvExpr::tok("y")]),
        ]);
        let b = ProvExpr::sum(vec![ProvExpr::tok("x"), ProvExpr::tok("y")]);
        assert!(delta_equal(&a, &b));
    }

    #[test]
    fn delta_not_erased_over_tokens() {
        // δ(a + b) is NOT equal to (a + b): dedup is observable in N[X].
        let lhs = ProvExpr::delta(ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]));
        let rhs = ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]);
        assert!(!delta_equal(&lhs, &rhs));
    }
}
