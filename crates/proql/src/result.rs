//! Query outputs.

use std::fmt;

use lipstick_core::graph::dot::to_dot_induced;
use lipstick_core::{NodeId, ProvGraph};

/// A sorted node set plus the work the executor did to produce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSetResult {
    /// Members, ascending by id.
    pub nodes: Vec<NodeId>,
    /// Nodes the executor visited (the planner's cost unit), summed
    /// over sub-plans for set operations.
    pub visited: usize,
}

impl NodeSetResult {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// Render the induced subgraph as Graphviz DOT.
    pub fn to_dot(&self, graph: &ProvGraph, name: &str) -> String {
        to_dot_induced(graph, name, &self.nodes)
    }

    /// Multi-line listing with node labels, capped at `limit` rows.
    pub fn render(&self, graph: &ProvGraph, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{} nodes (visited {})", self.len(), self.visited);
        for id in self.nodes.iter().take(limit) {
            let node = graph.node(*id);
            let _ = write!(
                out,
                "\n  {id}  {}  [{}]",
                node.kind.label(),
                node.kind.name()
            );
        }
        if self.len() > limit {
            let _ = write!(out, "\n  … {} more", self.len() - limit);
        }
        out
    }
}

impl fmt::Display for NodeSetResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nodes (visited {}):", self.len(), self.visited)?;
        for chunk in self.nodes.chunks(16) {
            write!(f, "\n  ")?;
            for (i, id) in chunk.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{id}")?;
            }
        }
        Ok(())
    }
}

/// One value in a [`TableResult`] row. Integers and strings order
/// among themselves the way the corresponding fields compare in
/// predicates; a shaped query never mixes the two within a column
/// except for the `(none)` marker, which [`Ord`]ers after integers by
/// construction (`Int` precedes `Str` in the enum).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cell {
    Int(u64),
    Str(String),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Int(n) => write!(f, "{n}"),
            Cell::Str(s) => f.write_str(s),
        }
    }
}

impl Cell {
    /// JSON rendering: integers bare, strings quoted and escaped.
    pub fn to_json(&self) -> String {
        match self {
            Cell::Int(n) => n.to_string(),
            Cell::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }
}

/// Rows of computed cells — what `GROUP BY` and `COUNT(…)` queries
/// return. Row order is part of the result (it reflects `ORDER BY`),
/// and `visited` reports the executor work exactly as
/// [`NodeSetResult::visited`] does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableResult {
    /// Column names, e.g. `["module", "count"]`.
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
    pub visited: usize,
}

impl TableResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TableResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} row(s) (visited {}):\n  {}",
            self.len(),
            self.visited,
            self.columns.join(" | ")
        )?;
        for row in &self.rows {
            write!(f, "\n  ")?;
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell}")?;
            }
        }
        Ok(())
    }
}

/// The result of one executed ProQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Node-set queries (`MATCH`, walks, `SUBGRAPH OF`, set ops).
    Nodes(NodeSetResult),
    /// Shaped queries (`GROUP BY`, `COUNT(…)`): computed rows.
    Table(TableResult),
    /// `DEPENDS`.
    Bool(bool),
    /// `WHY`, `EVAL`, `STATS`, `EXPLAIN`.
    Text(String),
    /// `DELETE … PROPAGATE`: the deleted node ids, root first.
    Deleted { nodes: Vec<NodeId> },
    /// Zoom and index statements report what they did.
    Message(String),
    /// `CHECK` / `EXPLAIN LINT`: typed static-analysis diagnostics.
    Diagnostics(crate::analyze::Diagnostics),
}

/// Escape a string for embedding in a JSON document (quotes,
/// backslashes, and control characters; everything else passes
/// through, JSON being UTF-8).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_id_array(nodes: &[NodeId]) -> String {
    let ids: Vec<String> = nodes.iter().map(|n| n.0.to_string()).collect();
    format!("[{}]", ids.join(","))
}

impl QueryOutput {
    /// Render as a single-line JSON value — the representation
    /// `lipstick-serve`'s HTTP shim returns. Every variant carries a
    /// `"type"` discriminator:
    ///
    /// ```text
    /// {"type":"nodes","count":3,"visited":9,"nodes":[1,4,7]}
    /// {"type":"table","columns":["module","count"],"visited":9,"rows":[["M",2]]}
    /// {"type":"bool","value":true}
    /// {"type":"text","text":"…"}
    /// {"type":"deleted","count":2,"nodes":[3,5]}
    /// {"type":"message","message":"…"}
    /// {"type":"diagnostics","errors":1,"warnings":0,"infos":0,"diagnostics":[…]}
    /// ```
    pub fn to_json(&self) -> String {
        match self {
            QueryOutput::Nodes(ns) => format!(
                r#"{{"type":"nodes","count":{},"visited":{},"nodes":{}}}"#,
                ns.len(),
                ns.visited,
                json_id_array(&ns.nodes)
            ),
            QueryOutput::Table(t) => {
                let columns: Vec<String> = t
                    .columns
                    .iter()
                    .map(|c| format!("\"{}\"", json_escape(c)))
                    .collect();
                let rows: Vec<String> = t
                    .rows
                    .iter()
                    .map(|row| {
                        let cells: Vec<String> = row.iter().map(Cell::to_json).collect();
                        format!("[{}]", cells.join(","))
                    })
                    .collect();
                format!(
                    r#"{{"type":"table","columns":[{}],"visited":{},"rows":[{}]}}"#,
                    columns.join(","),
                    t.visited,
                    rows.join(",")
                )
            }
            QueryOutput::Bool(b) => format!(r#"{{"type":"bool","value":{b}}}"#),
            QueryOutput::Text(t) => format!(r#"{{"type":"text","text":"{}"}}"#, json_escape(t)),
            QueryOutput::Deleted { nodes } => format!(
                r#"{{"type":"deleted","count":{},"nodes":{}}}"#,
                nodes.len(),
                json_id_array(nodes)
            ),
            QueryOutput::Message(m) => {
                format!(r#"{{"type":"message","message":"{}"}}"#, json_escape(m))
            }
            QueryOutput::Diagnostics(d) => d.to_json(),
        }
    }

    /// The node set, when this output carries one.
    pub fn nodes(&self) -> Option<&NodeSetResult> {
        match self {
            QueryOutput::Nodes(ns) => Some(ns),
            _ => None,
        }
    }

    /// The table, when this output carries one.
    pub fn table(&self) -> Option<&TableResult> {
        match self {
            QueryOutput::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The boolean, when this output carries one.
    pub fn bool_value(&self) -> Option<bool> {
        match self {
            QueryOutput::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The text, when this output carries some.
    pub fn text(&self) -> Option<&str> {
        match self {
            QueryOutput::Text(t) => Some(t),
            QueryOutput::Message(t) => Some(t),
            _ => None,
        }
    }

    /// The diagnostics, when this output carries them.
    pub fn diagnostics(&self) -> Option<&crate::analyze::Diagnostics> {
        match self {
            QueryOutput::Diagnostics(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::Nodes(ns) => write!(f, "{ns}"),
            QueryOutput::Table(t) => write!(f, "{t}"),
            QueryOutput::Bool(b) => write!(f, "{b}"),
            QueryOutput::Text(t) => write!(f, "{t}"),
            QueryOutput::Deleted { nodes } => {
                write!(f, "deleted {} nodes:", nodes.len())?;
                for chunk in nodes.chunks(16) {
                    write!(f, "\n  ")?;
                    for (i, id) in chunk.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{id}")?;
                    }
                }
                Ok(())
            }
            QueryOutput::Message(m) => write!(f, "{m}"),
            QueryOutput::Diagnostics(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshots_cover_every_variant() {
        let nodes = QueryOutput::Nodes(NodeSetResult {
            nodes: vec![NodeId(1), NodeId(4), NodeId(7)],
            visited: 9,
        });
        assert_eq!(
            nodes.to_json(),
            r#"{"type":"nodes","count":3,"visited":9,"nodes":[1,4,7]}"#
        );
        assert_eq!(
            QueryOutput::Bool(true).to_json(),
            r#"{"type":"bool","value":true}"#
        );
        assert_eq!(
            QueryOutput::Text("a \"quoted\"\nline".into()).to_json(),
            r#"{"type":"text","text":"a \"quoted\"\nline"}"#
        );
        assert_eq!(
            QueryOutput::Deleted {
                nodes: vec![NodeId(3), NodeId(5)],
            }
            .to_json(),
            r#"{"type":"deleted","count":2,"nodes":[3,5]}"#
        );
        assert_eq!(
            QueryOutput::Message("zoomed out 1 module(s)".into()).to_json(),
            r#"{"type":"message","message":"zoomed out 1 module(s)"}"#
        );
        let table = QueryOutput::Table(TableResult {
            columns: vec!["module".into(), "count".into()],
            rows: vec![
                vec![Cell::Str("Magg".into()), Cell::Int(4)],
                vec![Cell::Str("(none)".into()), Cell::Int(2)],
            ],
            visited: 9,
        });
        assert_eq!(
            table.to_json(),
            r#"{"type":"table","columns":["module","count"],"visited":9,"rows":[["Magg",4],["(none)",2]]}"#
        );
        assert_eq!(
            table.to_string(),
            "2 row(s) (visited 9):\n  module | count\n  Magg | 4\n  (none) | 2"
        );
        let diags = QueryOutput::Diagnostics(crate::analyze::Diagnostics {
            source: "MATCH nodes".into(),
            items: vec![crate::analyze::Diagnostic {
                code: "C302",
                severity: crate::analyze::Severity::Info,
                span: crate::lexer::Span::new(6, 11),
                message: "full scan".into(),
                suggestion: Some("add a WHERE predicate".into()),
            }],
        });
        assert_eq!(
            diags.to_json(),
            r#"{"type":"diagnostics","errors":0,"warnings":0,"infos":1,"diagnostics":[{"code":"C302","severity":"info","start":6,"end":11,"message":"full scan","suggestion":"add a WHERE predicate"}]}"#
        );
        let clean = QueryOutput::Diagnostics(crate::analyze::Diagnostics {
            source: "STATS".into(),
            items: vec![],
        });
        assert_eq!(
            clean.to_json(),
            r#"{"type":"diagnostics","errors":0,"warnings":0,"infos":0,"diagnostics":[]}"#
        );
        assert_eq!(clean.to_string(), "no diagnostics: statement is clean");
    }

    #[test]
    fn empty_table_is_well_formed() {
        let out = QueryOutput::Table(TableResult {
            columns: vec!["kind".into(), "count".into()],
            rows: vec![],
            visited: 3,
        });
        assert_eq!(
            out.to_json(),
            r#"{"type":"table","columns":["kind","count"],"visited":3,"rows":[]}"#
        );
        assert_eq!(out.to_string(), "0 row(s) (visited 3):\n  kind | count");
        assert!(out.table().unwrap().is_empty());
    }

    #[test]
    fn json_escape_handles_controls_and_unicode() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("naïve ⟨M#1⟩"), "naïve ⟨M#1⟩");
        assert_eq!(json_escape("back\\slash \"q\""), "back\\\\slash \\\"q\\\"");
    }

    #[test]
    fn empty_node_set_renders_empty_array() {
        let out = QueryOutput::Nodes(NodeSetResult {
            nodes: vec![],
            visited: 0,
        });
        assert_eq!(
            out.to_json(),
            r#"{"type":"nodes","count":0,"visited":0,"nodes":[]}"#
        );
    }
}
