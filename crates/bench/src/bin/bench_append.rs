//! Machine-readable streaming-append benchmarks.
//!
//! Writes `BENCH_append.json` so the write-path trajectory is tracked
//! across PRs: the WAL-style tail segment lets a mutation commit by
//! appending a durable record and repairing the reach overlay in
//! place, where the old write path first *promoted* the whole sealed
//! log to a resident graph. On a ≥11k-node log that promotion is the
//! entire cost of the first write; the append path never pays it.
//!
//! - `append.first_commit_us`: first `ingest` on a fresh
//!   `Session::open_append` — one durable tail record, zero promotion;
//! - `promote.first_commit_us`: the same `ingest` on a fresh paged
//!   session, which must materialize the full log before it can splice
//!   the fragment in (`promotions == 1` afterwards);
//! - `steady_commit_us` / `delete_us`: the per-mutation cost once each
//!   backend is warm (medians over distinct fragments / victims);
//! - `append.compact_ms`: folding the accumulated tail back into a
//!   sealed v2 segment.
//!
//! Both backends ingest the identical fragments and delete the
//! identical victims, and the run asserts their visible node counts
//! agree before any number is written out.
//!
//! Usage: `bench_append [--smoke] [--out PATH]`. `--smoke` shrinks the
//! base log so CI keeps the path built and honest; the default run uses
//! a ≥40k-node dealers workload (the appended commit is a durable
//! `sync_data` either way, so it only wins once the log is big enough
//! that promotion costs more than one disk flush).

use std::path::PathBuf;
use std::time::Instant;

use lipstick_bench::run_dealers;
use lipstick_core::ProvGraph;
use lipstick_proql::Session;
use lipstick_workflowgen::DealersParams;

fn dealers_graph_of_at_least(nodes: usize) -> ProvGraph {
    let mut num_exec = 10;
    loop {
        let g = run_dealers(
            &DealersParams {
                num_cars: 200,
                num_exec,
                seed: 1_000_003,
            },
            true,
        )
        .graph
        .expect("tracking on");
        if g.len() >= nodes || num_exec >= 320 {
            assert!(g.len() >= nodes, "workload too small: {} nodes", g.len());
            return g;
        }
        num_exec *= 2;
    }
}

/// A distinct small fragment per ingest: each commit appends fresh
/// work, the way a live tracker hands over completed workflow runs.
fn fragment(seed: u64) -> ProvGraph {
    run_dealers(
        &DealersParams {
            num_cars: 8,
            num_exec: 1,
            seed,
        },
        true,
    )
    .graph
    .expect("tracking on")
}

fn median_us(mut samples: Vec<u128>) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2] as f64 / 1e3
}

struct MutationRun {
    first_commit_us: f64,
    steady_commit_us: f64,
    delete_us: f64,
    final_count: String,
    promotions: u64,
}

/// Drive one backend through the shared mutation schedule: `reps`
/// fragment ingests (the first one timed separately — that is where
/// the paged backend pays its promotion) followed by one
/// `DELETE PROPAGATE` per ingested fragment root.
fn drive(session: &mut Session, fragments: &[ProvGraph]) -> MutationRun {
    let start = Instant::now();
    let mut roots = vec![session.ingest(&fragments[0]).expect("first ingest")[0]];
    let first_commit_us = start.elapsed().as_nanos() as f64 / 1e3;

    let mut steady = Vec::new();
    for frag in &fragments[1..] {
        let start = Instant::now();
        let ids = session.ingest(frag).expect("ingest fragment");
        steady.push(start.elapsed().as_nanos());
        roots.push(ids[0]);
    }

    let mut deletes = Vec::new();
    for root in roots {
        let stmt = format!("DELETE #{} PROPAGATE", root.0);
        let start = Instant::now();
        session.run_one(&stmt).expect("delete fragment root");
        deletes.push(start.elapsed().as_nanos());
    }

    MutationRun {
        first_commit_us,
        steady_commit_us: median_us(steady),
        delete_us: median_us(deletes),
        final_count: session
            .run_one("COUNT(*) MATCH nodes")
            .expect("count")
            .to_string(),
        promotions: session.promotions(),
    }
}

fn temp_log(tag: &str, graph: &ProvGraph) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("bench-append-{}-{tag}.lpstk", std::process::id()));
    lipstick_storage::write_graph_v2(graph, &path).expect("write v2 log");
    let mut tail = path.clone().into_os_string();
    tail.push(".tail");
    let _ = std::fs::remove_file(tail);
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_append.json".to_string());

    let base = if smoke {
        run_dealers(
            &DealersParams {
                num_cars: 24,
                num_exec: 2,
                seed: 7,
            },
            true,
        )
        .graph
        .expect("tracking on")
    } else {
        dealers_graph_of_at_least(40_000)
    };
    eprintln!(
        "base log: {} nodes, {} visible",
        base.len(),
        base.visible_count()
    );
    let reps = if smoke { 3 } else { 9 };
    let fragments: Vec<ProvGraph> = (0..reps).map(|i| fragment(9_000 + i as u64)).collect();

    // ---- appended commits: durable tail records, no promotion ----
    let append_path = temp_log("append", &base);
    let mut append = Session::open_append(&append_path).expect("open append session");
    let a = drive(&mut append, &fragments);
    let tail_records = append.append_log().expect("append backend").tail_records();
    let start = Instant::now();
    append.run_one("COMPACT").expect("compact tail");
    let compact_ms = start.elapsed().as_nanos() as f64 / 1e6;
    let compacted_count = append
        .run_one("COUNT(*) MATCH nodes")
        .expect("count after compact")
        .to_string();
    assert_eq!(a.promotions, 0, "append sessions must never promote");
    assert_eq!(a.final_count, compacted_count, "COMPACT preserves answers");
    drop(append);

    // ---- promote-then-mutate: the baseline the tail replaces ----
    let promote_path = temp_log("promote", &base);
    let mut promote = Session::open(&promote_path).expect("open paged session");
    let p = drive(&mut promote, &fragments);
    assert_eq!(
        p.promotions, 1,
        "the paged baseline pays exactly one promotion"
    );
    assert_eq!(
        a.final_count, p.final_count,
        "both backends must agree on the surviving graph"
    );
    drop(promote);
    let _ = std::fs::remove_file(&append_path);
    let _ = std::fs::remove_file(&promote_path);

    let first_commit_speedup = p.first_commit_us / a.first_commit_us.max(0.001);
    eprintln!(
        "first commit: append {:.1} µs vs promote-then-mutate {:.1} µs ({first_commit_speedup:.1}×)",
        a.first_commit_us, p.first_commit_us
    );
    eprintln!(
        "steady commit: append {:.1} µs, resident {:.1} µs; delete: append {:.1} µs, \
         resident {:.1} µs; compact {compact_ms:.2} ms over {tail_records} tail record(s)",
        a.steady_commit_us, p.steady_commit_us, a.delete_us, p.delete_us
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"graph_nodes\": {graph_nodes},\n  \
         \"fragment_nodes\": {fragment_nodes},\n  \"fragments\": {reps},\n  \
         \"append\": {{ \"first_commit_us\": {af:.1}, \"steady_commit_us\": {as_:.1}, \
         \"delete_us\": {ad:.1}, \"compact_ms\": {compact_ms:.3}, \
         \"tail_records\": {tail_records}, \"promotions\": 0 }},\n  \
         \"promote\": {{ \"first_commit_us\": {pf:.1}, \"steady_commit_us\": {ps:.1}, \
         \"delete_us\": {pd:.1}, \"promotions\": 1 }},\n  \
         \"first_commit_speedup\": {first_commit_speedup:.2}\n}}\n",
        graph_nodes = base.len(),
        fragment_nodes = fragments[0].len(),
        af = a.first_commit_us,
        as_ = a.steady_commit_us,
        ad = a.delete_us,
        pf = p.first_commit_us,
        ps = p.steady_commit_us,
        pd = p.delete_us,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_append.json");
    eprintln!("wrote {out_path}");
    print!("{json}");

    if !smoke {
        // The headline the tail segment exists for: the first write no
        // longer pays an O(log) promotion before it can commit.
        assert!(
            first_commit_speedup > 1.0,
            "appended first commit must beat promote-then-mutate \
             (got {first_commit_speedup:.2}×)"
        );
    }
}
