//! Typed abstract syntax for ProQL statements.

use std::fmt;

/// How a statement names a graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef {
    /// `#42` — direct node id.
    Id(u32),
    /// `'C2'` — the token of a base-tuple or workflow-input node.
    Token(String),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Id(n) => write!(f, "#{n}"),
            NodeRef::Token(t) => write!(f, "'{t}'"),
        }
    }
}

/// Node classes selectable by `MATCH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Every visible node.
    All,
    /// Module invocation nodes (`m`).
    Invocation,
    /// Module input nodes (`i`).
    ModuleInput,
    /// Module output nodes (`o`).
    ModuleOutput,
    /// Module state nodes (`s`).
    State,
    /// Base tuple nodes.
    Base,
    /// Provenance nodes (p-nodes).
    PNodes,
    /// Value nodes (v-nodes).
    VNodes,
}

impl NodeClass {
    /// Parse a class name (case-insensitive).
    pub fn parse(name: &str) -> Option<NodeClass> {
        Some(match name.to_ascii_lowercase().as_str() {
            "nodes" | "all" => NodeClass::All,
            "m-nodes" => NodeClass::Invocation,
            "i-nodes" => NodeClass::ModuleInput,
            "o-nodes" => NodeClass::ModuleOutput,
            "s-nodes" => NodeClass::State,
            "base-nodes" => NodeClass::Base,
            "p-nodes" => NodeClass::PNodes,
            "v-nodes" => NodeClass::VNodes,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            NodeClass::All => "nodes",
            NodeClass::Invocation => "m-nodes",
            NodeClass::ModuleInput => "i-nodes",
            NodeClass::ModuleOutput => "o-nodes",
            NodeClass::State => "s-nodes",
            NodeClass::Base => "base-nodes",
            NodeClass::PNodes => "p-nodes",
            NodeClass::VNodes => "v-nodes",
        }
    }

    /// The single [`lipstick_core::NodeKind::name`] this class selects,
    /// when there is one — the paged planner's kind-postings
    /// opportunity. `None` for classes spanning several kinds.
    pub fn single_kind_name(&self) -> Option<&'static str> {
        match self {
            NodeClass::Invocation => Some("invocation"),
            NodeClass::ModuleInput => Some("module_input"),
            NodeClass::ModuleOutput => Some("module_output"),
            NodeClass::State => Some("state"),
            NodeClass::Base => Some("base_tuple"),
            NodeClass::All | NodeClass::PNodes | NodeClass::VNodes => None,
        }
    }
}

/// Predicate fields over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Owning module name (via the node's invocation).
    Module,
    /// Node kind name (`plus`, `delta`, `module_output`, …).
    Kind,
    /// Role name (`intermediate`, `state`, `free`, …).
    Role,
    /// Owning invocation's execution number.
    Execution,
    /// Base-tuple / workflow-input token (`'C2'`); inapplicable to
    /// every other node kind.
    Token,
}

impl Field {
    pub fn parse(name: &str) -> Option<Field> {
        Some(match name.to_ascii_lowercase().as_str() {
            "module" => Field::Module,
            "kind" => Field::Kind,
            "role" => Field::Role,
            "execution" => Field::Execution,
            "token" => Field::Token,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            Field::Module => "module",
            Field::Kind => "kind",
            Field::Role => "role",
            Field::Execution => "execution",
            Field::Token => "token",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// SQL-style pattern match: `%` any sequence, `_` one character.
    Like,
    NotLike,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "LIKE",
            CmpOp::NotLike => "NOT LIKE",
        }
    }
}

/// SQL `LIKE` matching: `%` matches any (possibly empty) sequence,
/// `_` matches exactly one character, everything else is literal.
/// Classic two-pointer scan with backtracking on the last `%`.
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after %, text pos)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Let the last % swallow one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Literal comparison value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lit {
    Str(String),
    Int(u64),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Str(s) => write!(f, "'{s}'"),
            Lit::Int(n) => write!(f, "{n}"),
        }
    }
}

/// One `field op value` comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    pub field: Field,
    pub op: CmpOp,
    pub value: Lit,
}

/// A node's actual value for a predicate field, when the field applies
/// to the node.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    Str(&'a str),
    Int(u64),
}

impl Comparison {
    /// Evaluate against a node's actual field value. `None` means the
    /// field does not apply (e.g. `module` on a free node); then — and
    /// on a type-mismatched literal — `!=` and `NOT LIKE` hold and
    /// every other operator fails, matching the original equality-only
    /// semantics. Integers compare numerically, strings
    /// lexicographically; `LIKE` matches string fields against a
    /// `%`/`_` wildcard pattern.
    pub fn eval(&self, actual: Option<FieldValue<'_>>) -> bool {
        if matches!(self.op, CmpOp::Like | CmpOp::NotLike) {
            let matched = match (actual, &self.value) {
                (Some(FieldValue::Str(a)), Lit::Str(pattern)) => like_match(pattern, a),
                _ => false,
            };
            return (self.op == CmpOp::NotLike) != matched;
        }
        let ord = match (actual, &self.value) {
            (Some(FieldValue::Str(a)), Lit::Str(want)) => Some(a.cmp(want.as_str())),
            (Some(FieldValue::Int(a)), Lit::Int(want)) => Some(a.cmp(want)),
            _ => None,
        };
        match (self.op, ord) {
            (CmpOp::Ne, None) => true,
            (_, None) => false,
            (CmpOp::Eq, Some(o)) => o.is_eq(),
            (CmpOp::Ne, Some(o)) => o.is_ne(),
            (CmpOp::Lt, Some(o)) => o.is_lt(),
            (CmpOp::Le, Some(o)) => o.is_le(),
            (CmpOp::Gt, Some(o)) => o.is_gt(),
            (CmpOp::Ge, Some(o)) => o.is_ge(),
            (CmpOp::Like | CmpOp::NotLike, Some(_)) => unreachable!("handled above"),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.field.name(),
            self.op.symbol(),
            self.value
        )
    }
}

/// Conjunction of comparisons (`WHERE a = x AND b != y`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Predicate {
    pub conjuncts: Vec<Comparison>,
}

impl Predicate {
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// The module name demanded by a `module = '…'` equality conjunct,
    /// if present — the planner's index-scan opportunity.
    pub fn required_module(&self) -> Option<&str> {
        self.conjuncts.iter().find_map(|c| match c {
            Comparison {
                field: Field::Module,
                op: CmpOp::Eq,
                value: Lit::Str(s),
            } => Some(s.as_str()),
            _ => None,
        })
    }

    /// The kind name demanded by a `kind = '…'` equality conjunct, if
    /// present — the paged planner's kind-postings opportunity.
    pub fn required_kind(&self) -> Option<&str> {
        self.conjuncts.iter().find_map(|c| match c {
            Comparison {
                field: Field::Kind,
                op: CmpOp::Eq,
                value: Lit::Str(s),
            } => Some(s.as_str()),
            _ => None,
        })
    }

    /// Does any conjunct demand an *applicable* token — i.e. use an
    /// operator that fails on token-less nodes? Such a predicate can
    /// only match base-tuple / workflow-input nodes, which is the
    /// paged planner's token-kind-postings opportunity (`token LIKE
    /// 'C%'` narrows the scan to the two token-bearing kinds).
    pub fn requires_token(&self) -> bool {
        self.conjuncts
            .iter()
            .any(|c| c.field == Field::Token && !matches!(c.op, CmpOp::Ne | CmpOp::NotLike))
    }

    /// The pattern of a `module LIKE '…'` conjunct, if present — the
    /// paged planner matches it against the (resident) invocation
    /// table and unions the matching modules' postings.
    pub fn module_like_pattern(&self) -> Option<&str> {
        self.conjuncts.iter().find_map(|c| match c {
            Comparison {
                field: Field::Module,
                op: CmpOp::Like,
                value: Lit::Str(s),
            } => Some(s.as_str()),
            _ => None,
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Traversal direction for `ANCESTORS` / `DESCENDANTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkDir {
    Ancestors,
    Descendants,
}

/// A term producing a node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetTerm {
    /// `SUBGRAPH OF ref`.
    Subgraph(NodeRef),
    /// `ANCESTORS/DESCENDANTS [OF] ref [DEPTH k] [WHERE pred]`.
    Walk {
        dir: WalkDir,
        root: NodeRef,
        depth: Option<u32>,
        filter: Predicate,
    },
    /// `MATCH class [WHERE pred]`.
    Match { class: NodeClass, filter: Predicate },
    /// Parenthesized sub-expression.
    Paren(Box<SetExpr>),
}

/// Node-set expressions composed with set operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetExpr {
    Term(SetTerm),
    Union(Box<SetExpr>, Box<SetExpr>),
    Intersect(Box<SetExpr>, Box<SetExpr>),
}

/// Semirings `EVAL … IN <name>` can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiringName {
    Counting,
    Boolean,
    Tropical,
    Lineage,
    Why,
}

impl SemiringName {
    pub fn parse(name: &str) -> Option<SemiringName> {
        Some(match name.to_ascii_lowercase().as_str() {
            "counting" | "natural" => SemiringName::Counting,
            "boolean" | "bool" => SemiringName::Boolean,
            "tropical" | "cost" => SemiringName::Tropical,
            "lineage" | "which" => SemiringName::Lineage,
            "why" => SemiringName::Why,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            SemiringName::Counting => "counting",
            SemiringName::Boolean => "boolean",
            SemiringName::Tropical => "tropical",
            SemiringName::Lineage => "lineage",
            SemiringName::Why => "why",
        }
    }
}

/// A computed projection over a node set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)` — the node count, as a one-row table.
    CountStar,
    /// `COUNT(DISTINCT field)` — distinct applicable field values
    /// (nodes the field does not apply to are ignored, as SQL ignores
    /// NULLs).
    CountDistinct(Field),
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::CountStar => f.write_str("COUNT(*)"),
            Aggregate::CountDistinct(field) => write!(f, "COUNT(DISTINCT {})", field.name()),
        }
    }
}

/// What an `ORDER BY` sorts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKey {
    /// Node id (the default order of every node set).
    Id,
    /// The `count` column of a `GROUP BY` table.
    Count,
    /// A node field (node sets) or the grouping field (tables).
    Field(Field),
}

impl SortKey {
    pub fn name(&self) -> &'static str {
        match self {
            SortKey::Id => "id",
            SortKey::Count => "count",
            SortKey::Field(f) => f.name(),
        }
    }
}

/// `ORDER BY key [ASC|DESC]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderBy {
    pub key: SortKey,
    pub desc: bool,
}

impl fmt::Display for OrderBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORDER BY {}", self.key.name())?;
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

/// Result-shaping clauses riding on a node-set query: an aggregate
/// projection, grouping, ordering, and a row limit. All optional; the
/// default shapes nothing (the query returns its plain node set).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Shaping {
    /// `COUNT(*)` / `COUNT(DISTINCT f)` prefix (excludes the others).
    pub agg: Option<Aggregate>,
    /// `GROUP BY field` — rows of (field value, count).
    pub group_by: Option<Field>,
    /// `ORDER BY key [ASC|DESC]`.
    pub order_by: Option<OrderBy>,
    /// `LIMIT n` — keep the first n rows/nodes of the result order.
    pub limit: Option<u64>,
}

impl Shaping {
    /// No shaping at all — the query passes its node set through.
    pub fn is_plain(&self) -> bool {
        self.agg.is_none()
            && self.group_by.is_none()
            && self.order_by.is_none()
            && self.limit.is_none()
    }

    /// The limit the planner may push into an id-ordered scan for
    /// early exit: only when nothing reshapes the set first and the
    /// requested order is the scan's native one (id ascending).
    pub fn pushdown_limit(&self) -> Option<u64> {
        if self.agg.is_some() || self.group_by.is_some() {
            return None;
        }
        match self.order_by {
            None
            | Some(OrderBy {
                key: SortKey::Id,
                desc: false,
            }) => self.limit,
            Some(_) => None,
        }
    }

    /// Lowercase one-line description for `EXPLAIN` output. Identical
    /// for the resident and paged planners — the "plan shape" the
    /// agreement tests compare.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(agg) = &self.agg {
            parts.push(agg.to_string().to_ascii_lowercase());
        }
        if let Some(g) = &self.group_by {
            parts.push(format!("group by {}", g.name()));
        }
        if let Some(o) = &self.order_by {
            parts.push(format!(
                "order by {}{}",
                o.key.name(),
                if o.desc { " desc" } else { "" }
            ));
        }
        if let Some(n) = &self.limit {
            parts.push(format!("limit {n}"));
        }
        parts.join(", ")
    }
}

/// A node-set query with optional result shaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    pub expr: SetExpr,
    pub shaping: Shaping,
}

/// One parsed ProQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A node-set query, possibly shaped (aggregated/grouped/ordered/
    /// limited).
    Query(Query),
    /// `WHY ref` — symbolic provenance expression of a node.
    Why(NodeRef),
    /// `DEPENDS(n, m)` — does n's existence depend on m's?
    Depends(NodeRef, NodeRef),
    /// `DELETE ref PROPAGATE` — §4.2 deletion, mutating the session.
    DeletePropagate(NodeRef),
    /// `ZOOM OUT TO m1, m2, …`.
    ZoomOut(Vec<String>),
    /// `ZOOM IN [TO m1, …]`; `None` = all currently zoomed modules.
    ZoomIn(Option<Vec<String>>),
    /// `EVAL ref IN semiring`.
    Eval(NodeRef, SemiringName),
    /// `BUILD INDEX` — build the reachability closure.
    BuildIndex,
    /// `DROP INDEX`.
    DropIndex,
    /// `EXPLAIN stmt` — plan without executing.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE stmt` — execute and report the plan annotated
    /// with per-operator actuals (rows, visited, reads, wall time).
    ExplainAnalyze(Box<Statement>),
    /// `CHECK stmt` — statically analyze a statement against the
    /// session schema and report typed diagnostics. The inner
    /// statement's raw source text is captured verbatim (it may not
    /// even parse) and is **never executed**.
    Check { source: String },
    /// `EXPLAIN LINT stmt` — the same analysis surfaced through the
    /// `EXPLAIN` family; diagnostics are byte-identical to `CHECK`.
    ExplainLint { source: String },
    /// `COMPACT` — merge the append backend's tail segment into a
    /// fresh sealed base segment. A no-op message on other backends.
    Compact,
    /// `STATS` — graph statistics.
    Stats,
}

impl Statement {
    /// Can this statement run against a shared, immutable session?
    ///
    /// Read-only statements (`MATCH`, walks, `SUBGRAPH OF`, `WHY`,
    /// `DEPENDS`, `EVAL`, `EXPLAIN`, `STATS`, set operations) may
    /// execute concurrently through [`crate::Session::run_read`];
    /// everything else (`DELETE PROPAGATE`, zooms, index maintenance)
    /// mutates session state and must serialize through `&mut` access.
    ///
    /// `EXPLAIN ANALYZE` counts as read-only: it executes its inner
    /// statement, so the planners reject a mutating inner outright
    /// rather than letting it slip through a shared session.
    pub fn is_read_only(&self) -> bool {
        !matches!(
            self,
            Statement::DeletePropagate(_)
                | Statement::ZoomOut(_)
                | Statement::ZoomIn(_)
                | Statement::BuildIndex
                | Statement::DropIndex
                | Statement::Compact
        )
    }
}

/// Render a module name the way the parser reads it back: bare when it
/// lexes as one identifier, quoted otherwise.
fn fmt_name(f: &mut fmt::Formatter<'_>, name: &str) -> fmt::Result {
    let mut chars = name.chars();
    let ident = match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {
            chars.all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        }
        _ => false,
    };
    if ident {
        f.write_str(name)
    } else {
        write!(f, "'{name}'")
    }
}

fn fmt_name_list(f: &mut fmt::Formatter<'_>, names: &[String]) -> fmt::Result {
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        fmt_name(f, n)?;
    }
    Ok(())
}

impl fmt::Display for SetTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetTerm::Subgraph(r) => write!(f, "SUBGRAPH OF {r}"),
            SetTerm::Walk {
                dir,
                root,
                depth,
                filter,
            } => {
                let kw = match dir {
                    WalkDir::Ancestors => "ANCESTORS",
                    WalkDir::Descendants => "DESCENDANTS",
                };
                write!(f, "{kw} OF {root}")?;
                if let Some(d) = depth {
                    write!(f, " DEPTH {d}")?;
                }
                if !filter.is_empty() {
                    write!(f, " WHERE {filter}")?;
                }
                Ok(())
            }
            SetTerm::Match { class, filter } => {
                write!(f, "MATCH {}", class.name())?;
                if !filter.is_empty() {
                    write!(f, " WHERE {filter}")?;
                }
                Ok(())
            }
            SetTerm::Paren(inner) => write!(f, "({inner})"),
        }
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Term(t) => write!(f, "{t}"),
            SetExpr::Union(a, b) => write!(f, "{a} UNION {b}"),
            SetExpr::Intersect(a, b) => write!(f, "{a} INTERSECT {b}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(agg) = &self.shaping.agg {
            write!(f, "{agg} ")?;
        }
        write!(f, "{}", self.expr)?;
        if let Some(g) = &self.shaping.group_by {
            write!(f, " GROUP BY {}", g.name())?;
        }
        if let Some(o) = &self.shaping.order_by {
            write!(f, " {o}")?;
        }
        if let Some(n) = &self.shaping.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

/// The canonical pretty-printer: upper-case keywords, single spaces,
/// quoted string literals. `parse(stmt.to_string())` round-trips to an
/// equal `Statement` (property-tested in `tests/integration.rs`), so
/// the rendering doubles as a normalization key — equivalent spellings
/// of one statement share a single cache entry in `lipstick-serve`.
impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Why(r) => write!(f, "WHY {r}"),
            Statement::Depends(n, m) => write!(f, "DEPENDS({n}, {m})"),
            Statement::DeletePropagate(r) => write!(f, "DELETE {r} PROPAGATE"),
            Statement::ZoomOut(names) => {
                f.write_str("ZOOM OUT TO ")?;
                fmt_name_list(f, names)
            }
            Statement::ZoomIn(None) => f.write_str("ZOOM IN"),
            Statement::ZoomIn(Some(names)) => {
                f.write_str("ZOOM IN TO ")?;
                fmt_name_list(f, names)
            }
            Statement::Eval(r, s) => write!(f, "EVAL {r} IN {}", s.name()),
            Statement::BuildIndex => f.write_str("BUILD INDEX"),
            Statement::DropIndex => f.write_str("DROP INDEX"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
            Statement::ExplainAnalyze(inner) => write!(f, "EXPLAIN ANALYZE {inner}"),
            // The analyzed source prints verbatim: it was captured at
            // token boundaries, so re-parsing recaptures it unchanged
            // and the round-trip property holds even for inner text
            // the parser itself would reject.
            Statement::Check { source } => write!(f, "CHECK {source}"),
            Statement::ExplainLint { source } => write!(f, "EXPLAIN LINT {source}"),
            Statement::Compact => f.write_str("COMPACT"),
            Statement::Stats => f.write_str("STATS"),
        }
    }
}

#[cfg(test)]
mod like_tests {
    use super::like_match;

    #[test]
    fn like_wildcards() {
        assert!(like_match("C%", "C2"));
        assert!(like_match("C%", "C"));
        assert!(!like_match("C%", "xC"));
        assert!(like_match("%2", "C2"));
        assert!(like_match("%", ""));
        assert!(like_match("C_", "C2"));
        assert!(!like_match("C_", "C22"));
        assert!(like_match("a%b%c", "a-x-b-y-c"));
        assert!(!like_match("a%b%c", "a-c"));
        assert!(like_match("Mdealer_", "Mdealer1"));
        assert!(like_match("exact", "exact"));
        assert!(!like_match("exact", "exactly"));
        assert!(like_match("%%", "anything"));
    }
}
