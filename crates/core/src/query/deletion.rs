//! Deletion propagation (paper §4.2, Definition 4.2).
//!
//! Deleting a node removes it and then repeatedly removes every node
//! that either (1) lost *all* of its incoming edges, or (2) is joint
//! (·/⊗-labelled) and lost *any* incoming edge. The result may not
//! correspond to any actual workflow execution, but answers what-if
//! questions ("what would the bid have been had car C2 not been on the
//! lot?", Example 4.3).

use crate::graph::bitset::BitSet;
use crate::graph::node::NodeId;
use crate::graph::ProvGraph;

use super::error::QueryError;

/// Outcome of a deletion propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletionReport {
    /// Every node deleted, including the root, in deletion order.
    pub deleted: Vec<NodeId>,
}

impl DeletionReport {
    /// Was `id` deleted by the propagation?
    pub fn contains(&self, id: NodeId) -> bool {
        self.deleted.contains(&id)
    }
}

/// Propagate the deletion of `root` **in place**, tombstoning nodes.
pub fn propagate_deletion_inplace(
    graph: &mut ProvGraph,
    root: NodeId,
) -> Result<DeletionReport, QueryError> {
    let report = compute_deletion(graph, root)?;
    for &id in &report.deleted {
        graph.node_mut(id).deleted = true;
    }
    Ok(report)
}

/// Propagate the deletion of `root` on a **copy** of the graph,
/// returning the transformed graph and the report. The original is
/// untouched — this matches the paper's reading where deletion yields a
/// new graph G′.
pub fn propagate_deletion(
    graph: &ProvGraph,
    root: NodeId,
) -> Result<(ProvGraph, DeletionReport), QueryError> {
    let mut g = graph.clone();
    let report = propagate_deletion_inplace(&mut g, root)?;
    Ok((g, report))
}

/// Compute the set of nodes Definition 4.2 deletes, without mutating.
pub fn compute_deletion(graph: &ProvGraph, root: NodeId) -> Result<DeletionReport, QueryError> {
    if !graph.node(root).is_visible() {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut deleted = BitSet::new(graph.len());
    // Remaining visible-pred counts are tracked lazily: a node is
    // re-examined whenever one of its preds dies.
    let mut order: Vec<NodeId> = Vec::new();
    let mut queue: Vec<NodeId> = vec![root];
    deleted.insert(root.index());
    while let Some(v) = queue.pop() {
        order.push(v);
        // Each successor of a freshly deleted node may now satisfy one
        // of the two deletion conditions.
        for &s in graph.node(v).succs() {
            let node = graph.node(s);
            if !node.is_visible() || deleted.contains(s.index()) {
                continue;
            }
            let dies = if node.kind.is_joint() {
                // (2) joint nodes die with any ingredient.
                true
            } else {
                // (1) all incoming edges deleted. Only nodes that had
                // visible ingredients qualify; count survivors.
                node.preds()
                    .iter()
                    .filter(|p| graph.node(**p).is_visible())
                    .all(|p| deleted.contains(p.index()))
            };
            if dies {
                deleted.insert(s.index());
                queue.push(s);
            }
        }
    }
    Ok(DeletionReport { deleted: order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggOp;
    use crate::graph::tracker::{GraphTracker, Tracker};
    use crate::graph::NodeKind;
    use lipstick_nrel::Value;

    #[test]
    fn plus_survives_partial_deletion() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let p = g.add_plus(&[a, b]);
        let (g2, report) = propagate_deletion(&g, a).unwrap();
        assert!(report.contains(a));
        assert!(!report.contains(p), "alternative derivation b remains");
        assert!(g2.node(p).is_visible());
        // original untouched
        assert!(g.node(a).is_visible());
    }

    #[test]
    fn plus_dies_when_all_alternatives_die() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let p1 = g.add_plus(&[a]);
        let p2 = g.add_plus(&[p1]);
        let report = propagate_deletion_inplace(&mut g, a).unwrap();
        assert!(report.contains(p1));
        assert!(report.contains(p2));
        assert_eq!(g.visible_count(), 0);
    }

    #[test]
    fn times_dies_with_any_ingredient() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let (_, report) = propagate_deletion(&g, a).unwrap();
        assert!(report.contains(t));
        assert!(!report.contains(b), "other ingredient itself survives");
    }

    #[test]
    fn delta_behaves_like_plus() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let d = g.add_delta(&[a, b]);
        let (_, report) = propagate_deletion(&g, a).unwrap();
        assert!(!report.contains(d));
        let (_, report) = propagate_deletion(&g, d).unwrap();
        assert_eq!(report.deleted, vec![d]);
    }

    #[test]
    fn example_4_3_count_survives_deleting_one_car() {
        // Figure 3: delete C2; the Count aggregate keeps its other tensor.
        let mut g = ProvGraph::new();
        let c2 = g.add_base("C2");
        let c3 = g.add_base("C3");
        let agg = g.add_agg(AggOp::Count, &[(c2, Value::Int(1)), (c3, Value::Int(1))]);
        let (g2, report) = propagate_deletion(&g, c2).unwrap();
        assert!(!report.contains(agg), "Count node survives");
        // exactly one tensor died (the ⊗ of C2)
        let dead_tensors = report
            .deleted
            .iter()
            .filter(|id| matches!(g.node(**id).kind, NodeKind::Tensor))
            .count();
        assert_eq!(dead_tensors, 1);
        // and the recomputed aggregate over the survivor gives 1
        let av = g2.agg_value_of(agg).unwrap();
        let remaining: Vec<_> = g2
            .node(agg)
            .preds()
            .iter()
            .filter(|t| g2.node(**t).is_visible())
            .collect();
        assert_eq!(remaining.len(), 1);
        assert_eq!(av.op, AggOp::Count);
    }

    #[test]
    fn example_4_4_deleting_request_kills_downstream_not_state() {
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        let c2 = t.base("C2");
        t.begin_invocation("M", 0);
        let i = t.module_input(wi);
        let s = t.state_node(c2);
        let join = t.times(&[i, s]);
        let o = t.module_output(join, &[]);
        t.end_invocation();
        let m_node = t.graph().invocations()[0].m_node;
        let mut g = t.finish();
        let report = propagate_deletion_inplace(&mut g, wi).unwrap();
        // i, join, o all die
        assert!(report.contains(i));
        assert!(report.contains(join));
        assert!(report.contains(o));
        // state tuple, its s node, and the module invocation survive
        assert!(g.node(c2).is_visible());
        assert!(g.node(s).is_visible());
        assert!(g.node(m_node).is_visible());
    }

    #[test]
    fn deleting_state_tuple_keeps_bid_alive_when_alternative_exists() {
        // Example 4.5's structure: the bid's projection has two
        // alternative group members; deleting one car keeps it alive.
        let mut g = ProvGraph::new();
        let c2 = g.add_base("C2");
        let c3 = g.add_base("C3");
        let grp = g.add_delta(&[c2, c3]);
        let bid = g.add_plus(&[grp]);
        let (_, report) = propagate_deletion(&g, c2).unwrap();
        assert!(!report.contains(bid));
        assert!(!report.contains(grp));
    }

    #[test]
    fn deleting_hidden_node_is_error() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        g.node_mut(a).deleted = true;
        assert!(matches!(
            compute_deletion(&g, a),
            Err(QueryError::NodeNotVisible(_))
        ));
    }

    #[test]
    fn report_order_starts_with_root() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let t = g.add_times(&[a]);
        let report = compute_deletion(&g, a).unwrap();
        assert_eq!(report.deleted.first(), Some(&a));
        assert!(report.contains(t));
    }
}
