//! Abstract syntax of the Pig Latin fragment.

use std::fmt;

use lipstick_nrel::Value;

/// A parsed script: a sequence of assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub stmts: Vec<Stmt>,
}

/// One statement: `Alias = <operator>;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub alias: String,
    pub op: Op,
    /// Source line, for error reporting during planning.
    pub line: usize,
}

/// Relational operators of the fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `FILTER input BY cond`
    Filter { input: String, cond: Expr },
    /// `FOREACH input GENERATE item, …`
    Foreach { input: String, items: Vec<GenItem> },
    /// `GROUP input BY keys` / `GROUP input ALL`
    Group { input: String, keys: GroupKeys },
    /// `COGROUP a BY k1, b BY k2, …`
    Cogroup { inputs: Vec<(String, Vec<Expr>)> },
    /// `JOIN a BY k1, b BY k2` (equi-join)
    Join {
        left: (String, Vec<Expr>),
        right: (String, Vec<Expr>),
    },
    /// `UNION a, b, …`
    Union { inputs: Vec<String> },
    /// `DISTINCT input`
    Distinct { input: String },
    /// `ORDER input BY key [ASC|DESC], …` — post-processing (§3.2)
    Order {
        input: String,
        keys: Vec<(FieldRef, bool)>, // (field, ascending)
    },
    /// `LIMIT input n`
    Limit { input: String, count: usize },
}

/// Grouping keys.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupKeys {
    /// `BY expr, …`
    By(Vec<Expr>),
    /// `ALL` — a single group holding every tuple.
    All,
}

/// One `GENERATE` item.
#[derive(Debug, Clone, PartialEq)]
pub enum GenItem {
    /// `expr [AS name]`
    Expr { expr: Expr, alias: Option<String> },
    /// `*` — every field of the input.
    Star,
    /// `FLATTEN(expr) [AS name, …]` — unnest a bag field or a
    /// bag-returning UDF.
    Flatten { expr: Expr, aliases: Vec<String> },
}

/// A field reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldRef {
    /// `$k`
    Positional(usize),
    /// `name` or `rel::name`
    Named(String),
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldRef::Positional(i) => write!(f, "${i}"),
            FieldRef::Named(n) => write!(f, "{n}"),
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Lit(Value),
    /// Field of the current tuple.
    Field(FieldRef),
    /// `bag.attr` — projects an attribute across a nested bag; valid as
    /// an aggregate argument (`SUM(Bids.Price)`).
    BagProject { bag: FieldRef, attr: FieldRef },
    /// Unary negation / NOT.
    Unary { op: UnaryOp, inner: Box<Expr> },
    /// Binary arithmetic / comparison / logic.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull { inner: Box<Expr>, negated: bool },
    /// Aggregate call: `COUNT(bag)`, `SUM(bag.attr)`, …
    Agg {
        op: lipstick_core::agg::AggOp,
        arg: Box<Expr>,
    },
    /// User-defined function call (black box).
    Udf { name: String, args: Vec<Expr> },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    And,
    Or,
}

impl BinOp {
    /// Is this a comparison (result type boolean)?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Lte | BinOp::Gt | BinOp::Gte
        )
    }

    /// Is this a logical connective?
    pub fn is_logic(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Lte => "<=",
            BinOp::Gt => ">",
            BinOp::Gte => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logic());
        assert!(!BinOp::Lt.is_logic());
    }

    #[test]
    fn fieldref_display() {
        assert_eq!(FieldRef::Positional(2).to_string(), "$2");
        assert_eq!(
            FieldRef::Named("Cars::Model".into()).to_string(),
            "Cars::Model"
        );
    }
}
