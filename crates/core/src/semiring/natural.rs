//! The counting semiring (N, +, ·, 0, 1).
//!
//! Specializing provenance polynomials to N by valuating each token with
//! its tuple's multiplicity yields exactly the bag-semantics multiplicity
//! of the output tuple — the fundamental commutation property, used by the
//! engine's property tests as an end-to-end oracle.

use super::Semiring;

/// Natural numbers under ordinary arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Natural(pub u64);

impl Semiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn plus(&self, other: &Self) -> Self {
        Natural(self.0 + other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Natural(self.0 * other.0)
    }
    /// Set-semantics collapse: a positive count deduplicates to 1.
    fn delta(&self) -> Self {
        Natural(u64::from(self.0 > 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delta_collapses_counts() {
        assert_eq!(Natural(7).delta(), Natural(1));
        assert_eq!(Natural(0).delta(), Natural(0));
    }

    proptest! {
        #[test]
        fn laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
            crate::semiring::laws::check_laws(Natural(a), Natural(b), Natural(c));
        }
    }
}
