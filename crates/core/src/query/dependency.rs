//! Dependency queries (paper §4.3).
//!
//! "Queries that ask, for a pair of nodes n, n′, if the existence of n
//! depends on that of n′. This may be answered by checking for the
//! existence of n in the graph obtained by propagating the deletion of
//! n′."

use crate::graph::node::NodeId;
use crate::graph::ProvGraph;

use super::deletion::compute_deletion;
use super::error::QueryError;

/// Does the existence of `n` depend on `n_prime`?
///
/// Implemented exactly as the paper prescribes — propagate the deletion
/// of `n_prime` (without mutating the graph) and test whether `n`
/// survives.
pub fn depends_on(graph: &ProvGraph, n: NodeId, n_prime: NodeId) -> Result<bool, QueryError> {
    if !graph.node(n).is_visible() {
        return Err(QueryError::NodeNotVisible(n));
    }
    let report = compute_deletion(graph, n_prime)?;
    Ok(report.contains(n))
}

/// Set-version: does `n` depend on the *joint* deletion of all of
/// `n_primes`? (§4.3: "this can be further extended to sets of nodes".)
pub fn depends_on_all(
    graph: &ProvGraph,
    n: NodeId,
    n_primes: &[NodeId],
) -> Result<bool, QueryError> {
    if !graph.node(n).is_visible() {
        return Err(QueryError::NodeNotVisible(n));
    }
    // Delete each root in sequence on a scratch copy; stop early if n
    // dies.
    let mut g = graph.clone();
    for &root in n_primes {
        if !g.node(root).is_visible() {
            // Already deleted by an earlier propagation — skip.
            continue;
        }
        let report = super::deletion::propagate_deletion_inplace(&mut g, root)?;
        if report.contains(n) {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_4_5_bid_does_not_depend_on_single_car() {
        // bid ← + ← δ ← {C2, C3}: deleting C2 leaves a derivation.
        let mut g = ProvGraph::new();
        let c2 = g.add_base("C2");
        let c3 = g.add_base("C3");
        let grp = g.add_delta(&[c2, c3]);
        let bid = g.add_plus(&[grp]);
        assert!(!depends_on(&g, bid, c2).unwrap());
        assert!(!depends_on(&g, bid, c3).unwrap());
        // …but it does depend on both jointly.
        assert!(depends_on_all(&g, bid, &[c2, c3]).unwrap());
    }

    #[test]
    fn joint_derivation_depends_on_each_ingredient() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        assert!(depends_on(&g, t, a).unwrap());
        assert!(depends_on(&g, t, b).unwrap());
    }

    #[test]
    fn no_dependency_across_components() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let pa = g.add_plus(&[a]);
        let _pb = g.add_plus(&[b]);
        assert!(!depends_on(&g, pa, b).unwrap());
    }

    #[test]
    fn depends_on_does_not_mutate() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let t = g.add_times(&[a]);
        let before = g.visible_signature();
        let _ = depends_on(&g, t, a).unwrap();
        assert_eq!(g.visible_signature(), before);
    }

    #[test]
    fn depends_on_all_skips_cascade_deleted_roots() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let t = g.add_times(&[a]);
        let u = g.add_plus(&[t]);
        // deleting a cascades through t; passing both must not error
        assert!(depends_on_all(&g, u, &[a, t]).unwrap());
    }
}
