//! Recursive-descent parser: token stream → [`Statement`]s.
//!
//! Keywords are matched case-insensitively against identifiers, so
//! `match m-nodes where module = 'x'` and the upper-case spelling are
//! the same script.

use crate::ast::*;
use crate::error::{ProqlError, Result};
use crate::lexer::{lex_spanned, Span, SpannedTok, Tok};

/// Parse a whole script: statements separated/terminated by `;`.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let toks = lex_spanned(input)?;
    let mut p = Parser::new(input, toks);
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat_symbol(&Tok::Semi) {
            continue; // empty statement
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.eat_symbol(&Tok::Semi) {
            return Err(ProqlError::Parse(format!(
                "expected ';' between statements, found {}",
                p.peek_desc()
            )));
        }
    }
    Ok(out)
}

/// Parse exactly one statement (trailing `;` allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(ProqlError::Parse("empty statement".into())),
        n => Err(ProqlError::Parse(format!(
            "expected one statement, found {n}"
        ))),
    }
}

/// Parse exactly one statement from pre-lexed spanned tokens and, on
/// failure, report the byte [`Span`] where parsing stopped. The
/// analyzer uses this to anchor parse diagnostics in the source text;
/// plain callers use [`parse_statement`].
pub(crate) fn parse_spanned_statement(
    src: &str,
    toks: Vec<SpannedTok>,
) -> std::result::Result<Statement, (ProqlError, Span)> {
    let mut p = Parser::new(src, toks);
    if p.at_end() {
        return Err((
            ProqlError::Parse("empty statement".into()),
            Span::point(src.len()),
        ));
    }
    match p.statement() {
        Ok(stmt) => {
            let _ = p.eat_symbol(&Tok::Semi); // trailing ';' allowed
            if p.at_end() {
                Ok(stmt)
            } else {
                let err = ProqlError::Parse(format!(
                    "expected ';' between statements, found {}",
                    p.peek_desc()
                ));
                let span = p.error_span(&err);
                Err((err, span))
            }
        }
        Err(e) => {
            let span = p.error_span(&e);
            Err((e, span))
        }
    }
}

struct Parser<'s> {
    src: &'s str,
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str, toks: Vec<SpannedTok>) -> Parser<'s> {
        Parser { src, toks, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// The span of the token at `i`, or a zero-width span at the end
    /// of the consumed input when `i` runs off the token stream.
    fn span_at(&self, i: usize) -> Span {
        match self.toks.get(i) {
            Some(t) => t.span,
            None => Span::point(self.toks.last().map_or(self.src.len(), |t| t.span.end)),
        }
    }

    /// Best-effort span for a parse error raised at the current
    /// position. `Unknown*` errors are raised just *after* consuming
    /// the offending identifier; everything else fails on the
    /// not-yet-consumed token.
    fn error_span(&self, err: &ProqlError) -> Span {
        match err {
            ProqlError::UnknownSemiring(_)
            | ProqlError::UnknownClass(_)
            | ProqlError::UnknownField(_)
                if self.pos > 0 =>
            {
                self.span_at(self.pos - 1)
            }
            _ => self.span_at(self.pos),
        }
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(t) => format!("'{t}'"),
            None => "end of input".into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume the next token if it is the given symbol.
    fn eat_symbol(&mut self, sym: &Tok) -> bool {
        if self.peek() == Some(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the next token if it is the given keyword
    /// (case-insensitive identifier match).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ProqlError::Parse(format!(
                "expected {kw}, found {}",
                self.peek_desc()
            )))
        }
    }

    fn expect_symbol(&mut self, sym: Tok) -> Result<()> {
        if self.eat_symbol(&sym) {
            Ok(())
        } else {
            Err(ProqlError::Parse(format!(
                "expected '{sym}', found {}",
                self.peek_desc()
            )))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            if self.eat_kw("ANALYZE") {
                let inner = self.statement()?;
                return Ok(Statement::ExplainAnalyze(Box::new(inner)));
            }
            if self.eat_kw("LINT") {
                let source = self.capture_source("EXPLAIN LINT")?;
                return Ok(Statement::ExplainLint { source });
            }
            let inner = self.statement()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        if self.eat_kw("CHECK") {
            let source = self.capture_source("CHECK")?;
            return Ok(Statement::Check { source });
        }
        if self.eat_kw("WHY") {
            return Ok(Statement::Why(self.node_ref()?));
        }
        if self.eat_kw("DEPENDS") {
            self.expect_symbol(Tok::LParen)?;
            let n = self.node_ref()?;
            self.expect_symbol(Tok::Comma)?;
            let m = self.node_ref()?;
            self.expect_symbol(Tok::RParen)?;
            return Ok(Statement::Depends(n, m));
        }
        if self.eat_kw("DELETE") {
            let target = self.node_ref()?;
            self.expect_kw("PROPAGATE")?;
            return Ok(Statement::DeletePropagate(target));
        }
        if self.eat_kw("ZOOM") {
            if self.eat_kw("OUT") {
                self.expect_kw("TO")?;
                return Ok(Statement::ZoomOut(self.name_list()?));
            }
            self.expect_kw("IN")?;
            if self.eat_kw("TO") {
                return Ok(Statement::ZoomIn(Some(self.name_list()?)));
            }
            return Ok(Statement::ZoomIn(None));
        }
        if self.eat_kw("EVAL") {
            let target = self.node_ref()?;
            self.expect_kw("IN")?;
            let name = self.ident("semiring name")?;
            let semiring = SemiringName::parse(&name)
                .ok_or_else(|| ProqlError::UnknownSemiring(name.clone()))?;
            return Ok(Statement::Eval(target, semiring));
        }
        if self.eat_kw("BUILD") {
            self.expect_kw("INDEX")?;
            return Ok(Statement::BuildIndex);
        }
        if self.eat_kw("DROP") {
            self.expect_kw("INDEX")?;
            return Ok(Statement::DropIndex);
        }
        if self.eat_kw("COMPACT") {
            return Ok(Statement::Compact);
        }
        if self.eat_kw("STATS") {
            return Ok(Statement::Stats);
        }
        // Everything else is a node-set query, optionally shaped:
        // [COUNT(…)] set_expr [GROUP BY f] [ORDER BY k [ASC|DESC]]
        // [LIMIT n].
        let agg = self.opt_aggregate()?;
        let expr = self.set_expr()?;
        let shaping = self.shaping_tail(agg)?;
        Ok(Statement::Query(Query { expr, shaping }))
    }

    /// Capture the raw source text of the statement under analysis:
    /// every token up to the next `;` (or end of input), sliced from
    /// the original source by span. The text is *not* parsed here —
    /// `CHECK`/`EXPLAIN LINT` accept statements the parser rejects, so
    /// the analyzer can report syntax diagnostics with spans instead
    /// of failing the whole script.
    fn capture_source(&mut self, kw: &str) -> Result<String> {
        let start_pos = self.pos;
        while self.pos < self.toks.len() && self.toks[self.pos].tok != Tok::Semi {
            self.pos += 1;
        }
        if self.pos == start_pos {
            return Err(ProqlError::Parse(format!(
                "{kw} requires a statement to analyze"
            )));
        }
        let start = self.toks[start_pos].span.start;
        let end = self.toks[self.pos - 1].span.end;
        Ok(self.src[start..end].to_string())
    }

    /// `COUNT(*)` / `COUNT(DISTINCT field)` projection prefix.
    fn opt_aggregate(&mut self) -> Result<Option<Aggregate>> {
        if !self.eat_kw("COUNT") {
            return Ok(None);
        }
        self.expect_symbol(Tok::LParen)?;
        let agg = if self.eat_symbol(&Tok::Star) {
            Aggregate::CountStar
        } else {
            self.expect_kw("DISTINCT")?;
            let name = self.ident("aggregate field")?;
            let field =
                Field::parse(&name).ok_or_else(|| ProqlError::UnknownField(name.clone()))?;
            Aggregate::CountDistinct(field)
        };
        self.expect_symbol(Tok::RParen)?;
        Ok(Some(agg))
    }

    /// The optional shaping clauses after a set expression, plus the
    /// combination rules that keep shaped statements well-formed.
    fn shaping_tail(&mut self, agg: Option<Aggregate>) -> Result<Shaping> {
        let mut group_by = None;
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let name = self.ident("grouping field")?;
            group_by =
                Some(Field::parse(&name).ok_or_else(|| ProqlError::UnknownField(name.clone()))?);
        }
        let mut order_by = None;
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let name = self.ident("ordering key")?;
            let key = match name.to_ascii_lowercase().as_str() {
                "id" => SortKey::Id,
                "count" => SortKey::Count,
                _ => SortKey::Field(Field::parse(&name).ok_or_else(|| {
                    ProqlError::Parse(format!(
                        "unknown ordering key '{name}' (expected id, count, module, kind, role, \
                         execution, or token)"
                    ))
                })?),
            };
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                let _ = self.eat_kw("ASC"); // the default, spelled out
                false
            };
            order_by = Some(OrderBy { key, desc });
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Tok::Int(n)) => limit = Some(n),
                other => {
                    return Err(ProqlError::Parse(format!(
                        "expected integer after LIMIT, found {}",
                        other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
                    )))
                }
            }
        }
        let shaping = Shaping {
            agg,
            group_by,
            order_by,
            limit,
        };
        validate_shaping(&shaping)?;
        Ok(shaping)
    }

    /// `term (UNION term | INTERSECT term)*`, left-associative.
    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut lhs = SetExpr::Term(self.set_term()?);
        loop {
            if self.eat_kw("UNION") {
                let rhs = self.set_term()?;
                lhs = SetExpr::Union(Box::new(lhs), Box::new(SetExpr::Term(rhs)));
            } else if self.eat_kw("INTERSECT") {
                let rhs = self.set_term()?;
                lhs = SetExpr::Intersect(Box::new(lhs), Box::new(SetExpr::Term(rhs)));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn set_term(&mut self) -> Result<SetTerm> {
        if self.eat_symbol(&Tok::LParen) {
            let inner = self.set_expr()?;
            self.expect_symbol(Tok::RParen)?;
            return Ok(SetTerm::Paren(Box::new(inner)));
        }
        if self.eat_kw("SUBGRAPH") {
            self.expect_kw("OF")?;
            return Ok(SetTerm::Subgraph(self.node_ref()?));
        }
        if self.eat_kw("ANCESTORS") {
            return self.walk_tail(WalkDir::Ancestors);
        }
        if self.eat_kw("DESCENDANTS") {
            return self.walk_tail(WalkDir::Descendants);
        }
        if self.eat_kw("MATCH") {
            let name = self.ident("node class")?;
            let class =
                NodeClass::parse(&name).ok_or_else(|| ProqlError::UnknownClass(name.clone()))?;
            let filter = self.opt_where()?;
            return Ok(SetTerm::Match { class, filter });
        }
        Err(ProqlError::Parse(format!(
            "expected a statement or node-set term (SUBGRAPH, ANCESTORS, DESCENDANTS, MATCH, …), \
             found {}",
            self.peek_desc()
        )))
    }

    /// `[OF] ref [DEPTH k] [WHERE pred]` after ANCESTORS/DESCENDANTS.
    fn walk_tail(&mut self, dir: WalkDir) -> Result<SetTerm> {
        let _ = self.eat_kw("OF"); // optional
        let root = self.node_ref()?;
        let depth = if self.eat_kw("DEPTH") {
            match self.bump() {
                Some(Tok::Int(n)) => Some(
                    u32::try_from(n)
                        .map_err(|_| ProqlError::Parse(format!("depth {n} out of range")))?,
                ),
                other => {
                    return Err(ProqlError::Parse(format!(
                        "expected integer after DEPTH, found {}",
                        other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
                    )))
                }
            }
        } else {
            None
        };
        let filter = self.opt_where()?;
        Ok(SetTerm::Walk {
            dir,
            root,
            depth,
            filter,
        })
    }

    fn opt_where(&mut self) -> Result<Predicate> {
        if !self.eat_kw("WHERE") {
            return Ok(Predicate::default());
        }
        let mut conjuncts = vec![self.comparison()?];
        while self.eat_kw("AND") {
            conjuncts.push(self.comparison()?);
        }
        Ok(Predicate { conjuncts })
    }

    fn comparison(&mut self) -> Result<Comparison> {
        let name = self.ident("predicate field")?;
        let field = Field::parse(&name).ok_or_else(|| ProqlError::UnknownField(name.clone()))?;
        if self.eat_kw("LIKE") {
            return self.like_value(field, CmpOp::Like);
        }
        if self.eat_kw("NOT") {
            self.expect_kw("LIKE")?;
            return self.like_value(field, CmpOp::NotLike);
        }
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                return Err(ProqlError::Parse(format!(
                    "expected a comparison operator ('=', '!=', '<', '<=', '>', '>=') after {}, \
                     found {}",
                    field.name(),
                    other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
                )))
            }
        };
        let value = match self.bump() {
            Some(Tok::Str(s)) => Lit::Str(s),
            Some(Tok::Int(n)) => Lit::Int(n),
            // Bare identifiers compare as strings: kind = delta.
            Some(Tok::Ident(s)) => Lit::Str(s),
            other => {
                return Err(ProqlError::Parse(format!(
                    "expected a literal value, found {}",
                    other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
                )))
            }
        };
        Ok(Comparison { field, op, value })
    }

    /// The quoted `%`/`_` pattern a `LIKE` comparison requires.
    fn like_value(&mut self, field: Field, op: CmpOp) -> Result<Comparison> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Comparison {
                field,
                op,
                value: Lit::Str(s),
            }),
            other => Err(ProqlError::Parse(format!(
                "expected a quoted pattern after LIKE, found {}",
                other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
            ))),
        }
    }

    fn node_ref(&mut self) -> Result<NodeRef> {
        match self.bump() {
            Some(Tok::NodeId(n)) => Ok(NodeRef::Id(n)),
            Some(Tok::Str(s)) => Ok(NodeRef::Token(s)),
            other => Err(ProqlError::Parse(format!(
                "expected a node reference (#id or 'token'), found {}",
                other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
            ))),
        }
    }

    /// Comma-separated module names (identifiers or strings).
    fn name_list(&mut self) -> Result<Vec<String>> {
        let mut names = vec![self.name()?];
        while self.eat_symbol(&Tok::Comma) {
            names.push(self.name()?);
        }
        Ok(names)
    }

    fn name(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) | Some(Tok::Str(s)) => Ok(s),
            other => Err(ProqlError::Parse(format!(
                "expected a module name, found {}",
                other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
            ))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ProqlError::Parse(format!(
                "expected {what}, found {}",
                other.map_or_else(|| "end of input".into(), |t| format!("'{t}'"))
            ))),
        }
    }
}

/// Reject shaped statements whose clauses cannot compose:
/// an aggregate projection is a single row (nothing to group, order,
/// or limit), `ORDER BY count` needs a count column, and a grouped
/// table can only order by its own columns.
fn validate_shaping(s: &Shaping) -> Result<()> {
    if s.agg.is_some() && (s.group_by.is_some() || s.order_by.is_some() || s.limit.is_some()) {
        return Err(ProqlError::Parse(
            "COUNT(…) produces a single row; GROUP BY / ORDER BY / LIMIT cannot apply".into(),
        ));
    }
    match (s.group_by, s.order_by) {
        (
            None,
            Some(OrderBy {
                key: SortKey::Count,
                ..
            }),
        ) => Err(ProqlError::Parse("ORDER BY count requires GROUP BY".into())),
        (
            Some(g),
            Some(OrderBy {
                key: SortKey::Field(f),
                ..
            }),
        ) if f != g => Err(ProqlError::Parse(format!(
            "ORDER BY {} does not name a column of the GROUP BY {} table (order by {} or \
                 count)",
            f.name(),
            g.name(),
            g.name()
        ))),
        (
            Some(g),
            Some(OrderBy {
                key: SortKey::Id, ..
            }),
        ) => Err(ProqlError::Parse(format!(
            "ORDER BY id does not name a column of the GROUP BY {} table (order by {} or count)",
            g.name(),
            g.name()
        ))),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_statement_form() {
        let script = "
            SUBGRAPH OF #42;
            WHY 'C2';
            DEPENDS(#42, 'C2');
            DELETE 'C2' PROPAGATE;
            ZOOM OUT TO Mdealer1, Magg;
            ZOOM IN;
            ZOOM IN TO Mdealer1;
            EVAL #42 IN counting;
            MATCH m-nodes WHERE module = 'Mdealer1';
            ANCESTORS OF #42 DEPTH 3;
            DESCENDANTS 'C2' WHERE kind = module_output;
            MATCH base-nodes INTERSECT ANCESTORS OF #42;
            BUILD INDEX;
            DROP INDEX;
            EXPLAIN DEPENDS(#1, #2);
            COMPACT;
            STATS;
        ";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 17);
        assert!(matches!(stmts[0], Statement::Query(_)));
        assert!(matches!(stmts[1], Statement::Why(NodeRef::Token(_))));
        assert!(matches!(stmts[2], Statement::Depends(..)));
        assert!(matches!(stmts[3], Statement::DeletePropagate(_)));
        assert_eq!(
            stmts[4],
            Statement::ZoomOut(vec!["Mdealer1".into(), "Magg".into()])
        );
        assert_eq!(stmts[5], Statement::ZoomIn(None));
        assert_eq!(stmts[6], Statement::ZoomIn(Some(vec!["Mdealer1".into()])));
        assert!(matches!(
            stmts[7],
            Statement::Eval(_, SemiringName::Counting)
        ));
        assert!(matches!(stmts[13], Statement::DropIndex));
        assert!(matches!(stmts[14], Statement::Explain(_)));
        assert!(matches!(stmts[15], Statement::Compact));
        assert!(!stmts[15].is_read_only());
        assert!(matches!(stmts[16], Statement::Stats));
    }

    #[test]
    fn match_predicates_parse() {
        let s = parse_statement("MATCH nodes WHERE module = 'M' AND kind != delta").unwrap();
        let Statement::Query(Query {
            expr: SetExpr::Term(SetTerm::Match { class, filter }),
            ..
        }) = s
        else {
            panic!("wrong shape");
        };
        assert_eq!(class, NodeClass::All);
        assert_eq!(filter.conjuncts.len(), 2);
        assert_eq!(filter.required_module(), Some("M"));
    }

    #[test]
    fn ordered_comparisons_parse() {
        let s = parse_statement(
            "MATCH nodes WHERE execution < 5 AND execution >= 2 AND kind <= 'delta' AND \
             execution > 0",
        )
        .unwrap();
        let Statement::Query(Query {
            expr: SetExpr::Term(SetTerm::Match { filter, .. }),
            ..
        }) = s
        else {
            panic!("wrong shape");
        };
        let ops: Vec<CmpOp> = filter.conjuncts.iter().map(|c| c.op).collect();
        assert_eq!(ops, vec![CmpOp::Lt, CmpOp::Ge, CmpOp::Le, CmpOp::Gt]);
        assert_eq!(
            filter.to_string(),
            "execution < 5 AND execution >= 2 AND kind <= 'delta' AND execution > 0"
        );
    }

    #[test]
    fn comparison_eval_semantics() {
        use crate::ast::FieldValue;
        let cmp = |op, value| Comparison {
            field: Field::Execution,
            op,
            value,
        };
        let lt5 = cmp(CmpOp::Lt, Lit::Int(5));
        assert!(lt5.eval(Some(FieldValue::Int(4))));
        assert!(!lt5.eval(Some(FieldValue::Int(5))));
        assert!(!lt5.eval(None), "inapplicable field fails ordered ops");
        // Type mismatch: only != holds, as with equality-only semantics.
        assert!(!lt5.eval(Some(FieldValue::Str("x"))));
        assert!(cmp(CmpOp::Ne, Lit::Int(5)).eval(None));
        let ge = cmp(CmpOp::Ge, Lit::Int(2));
        assert!(ge.eval(Some(FieldValue::Int(2))));
        assert!(!ge.eval(Some(FieldValue::Int(1))));
        // Strings order lexicographically.
        let kind_le = Comparison {
            field: Field::Kind,
            op: CmpOp::Le,
            value: Lit::Str("delta".into()),
        };
        assert!(kind_le.eval(Some(FieldValue::Str("base_tuple"))));
        assert!(!kind_le.eval(Some(FieldValue::Str("times"))));
    }

    #[test]
    fn set_ops_are_left_associative() {
        let s =
            parse_statement("MATCH nodes UNION MATCH base-nodes INTERSECT MATCH v-nodes").unwrap();
        // ((nodes UNION base) INTERSECT v)
        let Statement::Query(Query {
            expr: SetExpr::Intersect(lhs, _),
            ..
        }) = s
        else {
            panic!("expected top-level INTERSECT, got {s:?}");
        };
        assert!(matches!(*lhs, SetExpr::Union(..)));
    }

    #[test]
    fn parens_group_set_ops() {
        let s = parse_statement("MATCH nodes UNION (MATCH base-nodes INTERSECT MATCH v-nodes)")
            .unwrap();
        let Statement::Query(Query {
            expr: SetExpr::Union(_, rhs),
            ..
        }) = s
        else {
            panic!("expected top-level UNION");
        };
        assert!(matches!(*rhs, SetExpr::Term(SetTerm::Paren(_))));
    }

    #[test]
    fn depth_and_filter_on_walks() {
        let s = parse_statement("ANCESTORS OF #7 DEPTH 2 WHERE kind = 'base_tuple'").unwrap();
        let Statement::Query(Query {
            expr:
                SetExpr::Term(SetTerm::Walk {
                    dir, depth, filter, ..
                }),
            ..
        }) = s
        else {
            panic!("wrong shape");
        };
        assert_eq!(dir, WalkDir::Ancestors);
        assert_eq!(depth, Some(2));
        assert_eq!(filter.conjuncts.len(), 1);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("DELETE #1").is_err(), "missing PROPAGATE");
        assert!(parse_statement("ZOOM OUT").is_err(), "missing TO list");
        assert!(parse_statement("EVAL #1 IN nonsense").is_err());
        assert!(parse_statement("MATCH q-nodes").is_err());
        assert!(parse_statement("MATCH nodes WHERE size = 3").is_err());
        assert!(parse_statement("SUBGRAPH OF #1 SUBGRAPH OF #2").is_err());
    }

    #[test]
    fn like_predicates_parse_and_require_patterns() {
        let s = parse_statement("MATCH base-nodes WHERE token LIKE 'C%'").unwrap();
        let Statement::Query(Query {
            expr: SetExpr::Term(SetTerm::Match { filter, .. }),
            ..
        }) = s
        else {
            panic!("wrong shape");
        };
        assert_eq!(filter.conjuncts[0].op, CmpOp::Like);
        assert!(filter.requires_token());
        assert_eq!(filter.to_string(), "token LIKE 'C%'");

        let s = parse_statement("MATCH nodes WHERE module NOT LIKE 'M_dealer%'").unwrap();
        let Statement::Query(Query {
            expr: SetExpr::Term(SetTerm::Match { filter, .. }),
            ..
        }) = s
        else {
            panic!("wrong shape");
        };
        assert_eq!(filter.conjuncts[0].op, CmpOp::NotLike);
        assert!(
            !filter.requires_token(),
            "NOT LIKE matches token-less nodes"
        );

        assert!(parse_statement("MATCH nodes WHERE token LIKE 3").is_err());
        assert!(parse_statement("MATCH nodes WHERE token NOT 'C%'").is_err());
        assert!(parse_statement("MATCH nodes WHERE token LIKE").is_err());
    }

    #[test]
    fn shaping_clauses_parse() {
        let s = parse_statement(
            "MATCH o-nodes WHERE module LIKE 'M%' GROUP BY module ORDER BY count DESC LIMIT 3",
        )
        .unwrap();
        let Statement::Query(Query { shaping, .. }) = &s else {
            panic!("wrong shape");
        };
        assert_eq!(shaping.group_by, Some(Field::Module));
        assert_eq!(
            shaping.order_by,
            Some(OrderBy {
                key: SortKey::Count,
                desc: true
            })
        );
        assert_eq!(shaping.limit, Some(3));
        assert_eq!(shaping.pushdown_limit(), None, "grouping blocks pushdown");

        let s = parse_statement("MATCH nodes ORDER BY execution ASC LIMIT 10").unwrap();
        let Statement::Query(Query { shaping, .. }) = &s else {
            panic!("wrong shape");
        };
        assert_eq!(
            shaping.order_by,
            Some(OrderBy {
                key: SortKey::Field(Field::Execution),
                desc: false
            })
        );
        assert_eq!(
            shaping.pushdown_limit(),
            None,
            "field order blocks pushdown"
        );

        let s = parse_statement("MATCH nodes LIMIT 0").unwrap();
        let Statement::Query(Query { shaping, .. }) = &s else {
            panic!("wrong shape");
        };
        assert_eq!(shaping.pushdown_limit(), Some(0));

        let s = parse_statement("COUNT(*) MATCH base-nodes").unwrap();
        let Statement::Query(Query { shaping, .. }) = &s else {
            panic!("wrong shape");
        };
        assert_eq!(shaping.agg, Some(Aggregate::CountStar));

        let s = parse_statement("COUNT(DISTINCT module) MATCH o-nodes").unwrap();
        let Statement::Query(Query { shaping, .. }) = &s else {
            panic!("wrong shape");
        };
        assert_eq!(shaping.agg, Some(Aggregate::CountDistinct(Field::Module)));

        // Shaping composes with set operations and EXPLAIN.
        let s = parse_statement(
            "EXPLAIN MATCH base-nodes UNION MATCH m-nodes ORDER BY id DESC LIMIT 5",
        )
        .unwrap();
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn ill_formed_shaping_is_rejected() {
        assert!(parse_statement("COUNT(*) MATCH nodes GROUP BY module").is_err());
        assert!(parse_statement("COUNT(*) MATCH nodes LIMIT 3").is_err());
        assert!(parse_statement("COUNT(*) MATCH nodes ORDER BY id").is_err());
        assert!(parse_statement("MATCH nodes ORDER BY count").is_err());
        assert!(parse_statement("MATCH nodes GROUP BY module ORDER BY kind").is_err());
        assert!(parse_statement("MATCH nodes GROUP BY module ORDER BY id").is_err());
        assert!(parse_statement("MATCH nodes GROUP BY size").is_err());
        assert!(parse_statement("MATCH nodes ORDER BY size").is_err());
        assert!(parse_statement("MATCH nodes LIMIT").is_err());
        assert!(parse_statement("MATCH nodes LIMIT 'three'").is_err());
        assert!(parse_statement("COUNT(module) MATCH nodes").is_err());
    }

    #[test]
    fn check_captures_source_verbatim_without_parsing_it() {
        // Well-formed inner statement.
        let s = parse_statement("CHECK MATCH m-nodes WHERE module = 'Mdealer1'").unwrap();
        assert_eq!(
            s,
            Statement::Check {
                source: "MATCH m-nodes WHERE module = 'Mdealer1'".into()
            }
        );
        // Display round-trips through the parser.
        assert_eq!(parse_statement(&s.to_string()).unwrap(), s);
        assert!(s.is_read_only());

        // Ill-formed inner statements still parse as CHECK: the
        // analyzer reports the syntax diagnostic, not the parser.
        let s = parse_statement("CHECK MATCH q-nodes WHERE").unwrap();
        assert_eq!(
            s,
            Statement::Check {
                source: "MATCH q-nodes WHERE".into()
            }
        );

        // Capture stops at the statement separator.
        let stmts = parse_script("CHECK MATCH nodes; STATS;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(
            stmts[0],
            Statement::Check {
                source: "MATCH nodes".into()
            }
        );
        assert!(matches!(stmts[1], Statement::Stats));

        assert!(parse_statement("CHECK").is_err(), "needs a statement");
        assert!(parse_statement("CHECK ;").is_err());
    }

    #[test]
    fn explain_lint_parses_like_check() {
        let s = parse_statement("EXPLAIN LINT ANCESTORS OF #7").unwrap();
        assert_eq!(
            s,
            Statement::ExplainLint {
                source: "ANCESTORS OF #7".into()
            }
        );
        assert_eq!(parse_statement(&s.to_string()).unwrap(), s);
        assert!(s.is_read_only());
        assert!(parse_statement("EXPLAIN LINT").is_err());
        // EXPLAIN ANALYZE / plain EXPLAIN still parse their inner
        // statement eagerly.
        assert!(matches!(
            parse_statement("EXPLAIN STATS").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn spanned_parse_reports_error_positions() {
        let src = "MATCH q-nodes";
        let toks = crate::lexer::lex_spanned(src).unwrap();
        let (err, span) = parse_spanned_statement(src, toks).unwrap_err();
        assert!(matches!(err, ProqlError::UnknownClass(_)));
        assert_eq!(&src[span.start..span.end], "q-nodes");

        let src = "MATCH nodes WHERE size = 3";
        let toks = crate::lexer::lex_spanned(src).unwrap();
        let (err, span) = parse_spanned_statement(src, toks).unwrap_err();
        assert!(matches!(err, ProqlError::UnknownField(_)));
        assert_eq!(&src[span.start..span.end], "size");

        // Errors at end-of-input get a zero-width span at the end.
        let src = "MATCH nodes WHERE";
        let toks = crate::lexer::lex_spanned(src).unwrap();
        let (_, span) = parse_spanned_statement(src, toks).unwrap_err();
        assert_eq!((span.start, span.end), (src.len(), src.len()));
    }

    #[test]
    fn canonical_display_round_trips_spellings() {
        // Distinct spellings of one statement normalize to one string.
        let spellings = [
            "match BASE-NODES where token like 'C%' order by execution desc limit 2",
            "MATCH base-nodes WHERE token LIKE 'C%' ORDER BY execution DESC LIMIT 2",
        ];
        let canon: Vec<String> = spellings
            .iter()
            .map(|s| parse_statement(s).unwrap().to_string())
            .collect();
        assert_eq!(canon[0], canon[1]);
        assert_eq!(
            canon[0],
            "MATCH base-nodes WHERE token LIKE 'C%' ORDER BY execution DESC LIMIT 2"
        );
        // And the canonical form parses back to the same statement.
        let stmt = parse_statement(spellings[0]).unwrap();
        assert_eq!(parse_statement(&canon[0]).unwrap(), stmt);
    }
}
