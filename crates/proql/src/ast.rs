//! Typed abstract syntax for ProQL statements.

use std::fmt;

/// How a statement names a graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef {
    /// `#42` — direct node id.
    Id(u32),
    /// `'C2'` — the token of a base-tuple or workflow-input node.
    Token(String),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Id(n) => write!(f, "#{n}"),
            NodeRef::Token(t) => write!(f, "'{t}'"),
        }
    }
}

/// Node classes selectable by `MATCH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Every visible node.
    All,
    /// Module invocation nodes (`m`).
    Invocation,
    /// Module input nodes (`i`).
    ModuleInput,
    /// Module output nodes (`o`).
    ModuleOutput,
    /// Module state nodes (`s`).
    State,
    /// Base tuple nodes.
    Base,
    /// Provenance nodes (p-nodes).
    PNodes,
    /// Value nodes (v-nodes).
    VNodes,
}

impl NodeClass {
    /// Parse a class name (case-insensitive).
    pub fn parse(name: &str) -> Option<NodeClass> {
        Some(match name.to_ascii_lowercase().as_str() {
            "nodes" | "all" => NodeClass::All,
            "m-nodes" => NodeClass::Invocation,
            "i-nodes" => NodeClass::ModuleInput,
            "o-nodes" => NodeClass::ModuleOutput,
            "s-nodes" => NodeClass::State,
            "base-nodes" => NodeClass::Base,
            "p-nodes" => NodeClass::PNodes,
            "v-nodes" => NodeClass::VNodes,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            NodeClass::All => "nodes",
            NodeClass::Invocation => "m-nodes",
            NodeClass::ModuleInput => "i-nodes",
            NodeClass::ModuleOutput => "o-nodes",
            NodeClass::State => "s-nodes",
            NodeClass::Base => "base-nodes",
            NodeClass::PNodes => "p-nodes",
            NodeClass::VNodes => "v-nodes",
        }
    }

    /// The single [`lipstick_core::NodeKind::name`] this class selects,
    /// when there is one — the paged planner's kind-postings
    /// opportunity. `None` for classes spanning several kinds.
    pub fn single_kind_name(&self) -> Option<&'static str> {
        match self {
            NodeClass::Invocation => Some("invocation"),
            NodeClass::ModuleInput => Some("module_input"),
            NodeClass::ModuleOutput => Some("module_output"),
            NodeClass::State => Some("state"),
            NodeClass::Base => Some("base_tuple"),
            NodeClass::All | NodeClass::PNodes | NodeClass::VNodes => None,
        }
    }
}

/// Predicate fields over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Owning module name (via the node's invocation).
    Module,
    /// Node kind name (`plus`, `delta`, `module_output`, …).
    Kind,
    /// Role name (`intermediate`, `state`, `free`, …).
    Role,
    /// Owning invocation's execution number.
    Execution,
}

impl Field {
    pub fn parse(name: &str) -> Option<Field> {
        Some(match name.to_ascii_lowercase().as_str() {
            "module" => Field::Module,
            "kind" => Field::Kind,
            "role" => Field::Role,
            "execution" => Field::Execution,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            Field::Module => "module",
            Field::Kind => "kind",
            Field::Role => "role",
            Field::Execution => "execution",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Literal comparison value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lit {
    Str(String),
    Int(u64),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Str(s) => write!(f, "'{s}'"),
            Lit::Int(n) => write!(f, "{n}"),
        }
    }
}

/// One `field op value` comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    pub field: Field,
    pub op: CmpOp,
    pub value: Lit,
}

/// A node's actual value for a predicate field, when the field applies
/// to the node.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    Str(&'a str),
    Int(u64),
}

impl Comparison {
    /// Evaluate against a node's actual field value. `None` means the
    /// field does not apply (e.g. `module` on a free node); then — and
    /// on a type-mismatched literal — `!=` holds and every other
    /// operator fails, matching the original equality-only semantics.
    /// Integers compare numerically, strings lexicographically.
    pub fn eval(&self, actual: Option<FieldValue<'_>>) -> bool {
        let ord = match (actual, &self.value) {
            (Some(FieldValue::Str(a)), Lit::Str(want)) => Some(a.cmp(want.as_str())),
            (Some(FieldValue::Int(a)), Lit::Int(want)) => Some(a.cmp(want)),
            _ => None,
        };
        match (self.op, ord) {
            (CmpOp::Ne, None) => true,
            (_, None) => false,
            (CmpOp::Eq, Some(o)) => o.is_eq(),
            (CmpOp::Ne, Some(o)) => o.is_ne(),
            (CmpOp::Lt, Some(o)) => o.is_lt(),
            (CmpOp::Le, Some(o)) => o.is_le(),
            (CmpOp::Gt, Some(o)) => o.is_gt(),
            (CmpOp::Ge, Some(o)) => o.is_ge(),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.field.name(),
            self.op.symbol(),
            self.value
        )
    }
}

/// Conjunction of comparisons (`WHERE a = x AND b != y`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Predicate {
    pub conjuncts: Vec<Comparison>,
}

impl Predicate {
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// The module name demanded by a `module = '…'` equality conjunct,
    /// if present — the planner's index-scan opportunity.
    pub fn required_module(&self) -> Option<&str> {
        self.conjuncts.iter().find_map(|c| match c {
            Comparison {
                field: Field::Module,
                op: CmpOp::Eq,
                value: Lit::Str(s),
            } => Some(s.as_str()),
            _ => None,
        })
    }

    /// The kind name demanded by a `kind = '…'` equality conjunct, if
    /// present — the paged planner's kind-postings opportunity.
    pub fn required_kind(&self) -> Option<&str> {
        self.conjuncts.iter().find_map(|c| match c {
            Comparison {
                field: Field::Kind,
                op: CmpOp::Eq,
                value: Lit::Str(s),
            } => Some(s.as_str()),
            _ => None,
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Traversal direction for `ANCESTORS` / `DESCENDANTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkDir {
    Ancestors,
    Descendants,
}

/// A term producing a node set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetTerm {
    /// `SUBGRAPH OF ref`.
    Subgraph(NodeRef),
    /// `ANCESTORS/DESCENDANTS [OF] ref [DEPTH k] [WHERE pred]`.
    Walk {
        dir: WalkDir,
        root: NodeRef,
        depth: Option<u32>,
        filter: Predicate,
    },
    /// `MATCH class [WHERE pred]`.
    Match { class: NodeClass, filter: Predicate },
    /// Parenthesized sub-expression.
    Paren(Box<SetExpr>),
}

/// Node-set expressions composed with set operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetExpr {
    Term(SetTerm),
    Union(Box<SetExpr>, Box<SetExpr>),
    Intersect(Box<SetExpr>, Box<SetExpr>),
}

/// Semirings `EVAL … IN <name>` can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiringName {
    Counting,
    Boolean,
    Tropical,
    Lineage,
    Why,
}

impl SemiringName {
    pub fn parse(name: &str) -> Option<SemiringName> {
        Some(match name.to_ascii_lowercase().as_str() {
            "counting" | "natural" => SemiringName::Counting,
            "boolean" | "bool" => SemiringName::Boolean,
            "tropical" | "cost" => SemiringName::Tropical,
            "lineage" | "which" => SemiringName::Lineage,
            "why" => SemiringName::Why,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            SemiringName::Counting => "counting",
            SemiringName::Boolean => "boolean",
            SemiringName::Tropical => "tropical",
            SemiringName::Lineage => "lineage",
            SemiringName::Why => "why",
        }
    }
}

/// One parsed ProQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A node-set query.
    Query(SetExpr),
    /// `WHY ref` — symbolic provenance expression of a node.
    Why(NodeRef),
    /// `DEPENDS(n, m)` — does n's existence depend on m's?
    Depends(NodeRef, NodeRef),
    /// `DELETE ref PROPAGATE` — §4.2 deletion, mutating the session.
    DeletePropagate(NodeRef),
    /// `ZOOM OUT TO m1, m2, …`.
    ZoomOut(Vec<String>),
    /// `ZOOM IN [TO m1, …]`; `None` = all currently zoomed modules.
    ZoomIn(Option<Vec<String>>),
    /// `EVAL ref IN semiring`.
    Eval(NodeRef, SemiringName),
    /// `BUILD INDEX` — build the reachability closure.
    BuildIndex,
    /// `DROP INDEX`.
    DropIndex,
    /// `EXPLAIN stmt` — plan without executing.
    Explain(Box<Statement>),
    /// `STATS` — graph statistics.
    Stats,
}

impl Statement {
    /// Can this statement run against a shared, immutable session?
    ///
    /// Read-only statements (`MATCH`, walks, `SUBGRAPH OF`, `WHY`,
    /// `DEPENDS`, `EVAL`, `EXPLAIN`, `STATS`, set operations) may
    /// execute concurrently through [`crate::Session::run_read`];
    /// everything else (`DELETE PROPAGATE`, zooms, index maintenance)
    /// mutates session state and must serialize through `&mut` access.
    pub fn is_read_only(&self) -> bool {
        !matches!(
            self,
            Statement::DeletePropagate(_)
                | Statement::ZoomOut(_)
                | Statement::ZoomIn(_)
                | Statement::BuildIndex
                | Statement::DropIndex
        )
    }
}
