//! Shard trackers: provenance fragments built by parallel workers and
//! merged into a global graph.
//!
//! The paper's Hadoop experiment (§5.4, Figure 5(c)) runs modules on
//! parallel reducers; our substitute executes ready workflow modules on
//! worker threads. Each worker records provenance into its own
//! [`ShardTracker`]; when the module commits, the coordinator *absorbs*
//! the shard into the global [`GraphTracker`], remapping node ids.
//! References to pre-existing global nodes (a module's inputs and
//! state) are *imported* into the shard as placeholder nodes that
//! resolve back to their global ids on absorption, so cross-module
//! edges stay exact.

use std::collections::HashMap;

use crate::agg::AggOp;
use crate::graph::node::{InvocationId, NodeId, NodeKind, Role};
use crate::graph::tracker::{AggItemValue, GraphTracker, Tracker};
use crate::graph::ProvGraph;

/// A worker-local tracker whose graph can be merged into a global one.
#[derive(Debug, Default)]
pub struct ShardTracker {
    inner: GraphTracker,
    /// local placeholder id → global id
    external: HashMap<NodeId, NodeId>,
    /// global id → local placeholder id (dedup imports)
    by_global: HashMap<NodeId, NodeId>,
}

impl ShardTracker {
    pub fn new() -> Self {
        ShardTracker::default()
    }

    /// Import a global node: returns a local placeholder id usable as a
    /// provenance ref inside this shard.
    pub fn import(&mut self, global: NodeId) -> NodeId {
        if let Some(&local) = self.by_global.get(&global) {
            return local;
        }
        let local = self.inner.base("@import");
        self.external.insert(local, global);
        self.by_global.insert(global, local);
        local
    }

    /// Number of non-placeholder nodes recorded so far.
    pub fn recorded(&self) -> usize {
        self.inner.graph().len() - self.external.len()
    }
}

impl Tracker for ShardTracker {
    type Ref = NodeId;
    const TRACKING: bool = true;

    fn base(&mut self, token: &str) -> NodeId {
        self.inner.base(token)
    }
    fn plus(&mut self, parts: &[NodeId]) -> NodeId {
        self.inner.plus(parts)
    }
    fn times(&mut self, parts: &[NodeId]) -> NodeId {
        self.inner.times(parts)
    }
    fn delta(&mut self, parts: &[NodeId]) -> NodeId {
        self.inner.delta(parts)
    }
    fn agg(&mut self, op: AggOp, items: &[(NodeId, AggItemValue<NodeId>)]) -> NodeId {
        self.inner.agg(op, items)
    }
    fn blackbox(&mut self, name: &str, inputs: &[NodeId], is_value: bool) -> NodeId {
        self.inner.blackbox(name, inputs, is_value)
    }
    fn workflow_input(&mut self, token: &str) -> NodeId {
        self.inner.workflow_input(token)
    }
    fn begin_invocation(&mut self, module: &str, execution: u32) -> NodeId {
        self.inner.begin_invocation(module, execution)
    }
    fn end_invocation(&mut self) {
        self.inner.end_invocation()
    }
    fn module_input(&mut self, tuple: NodeId) -> NodeId {
        self.inner.module_input(tuple)
    }
    fn module_output(&mut self, tuple: NodeId, vrefs: &[NodeId]) -> NodeId {
        self.inner.module_output(tuple, vrefs)
    }
    fn state_node(&mut self, tuple: NodeId) -> NodeId {
        self.inner.state_node(tuple)
    }
}

impl GraphTracker {
    /// Merge a shard's graph into this tracker's graph. Returns the
    /// remap table: `table[local.index()]` is the global id of each
    /// shard node (placeholders resolve to the nodes they imported).
    pub fn absorb_shard(&mut self, shard: ShardTracker) -> Vec<NodeId> {
        let ShardTracker {
            inner, external, ..
        } = shard;
        let local = inner.finish();
        self.graph_mut().absorb(&local, &external)
    }
}

impl ProvGraph {
    /// Append another graph's nodes (except placeholders listed in
    /// `external`), remapping edges, roles, and invocations. Returns
    /// the local→global id table.
    pub fn absorb(&mut self, other: &ProvGraph, external: &HashMap<NodeId, NodeId>) -> Vec<NodeId> {
        let inv_offset = self.invocations().len() as u32;
        let mut remap: Vec<NodeId> = Vec::with_capacity(other.len());
        for (id, node) in other.iter() {
            if let Some(&global) = external.get(&id) {
                remap.push(global);
                continue;
            }
            debug_assert!(
                !matches!(node.kind, NodeKind::Zoomed { .. }),
                "shards must not contain zoom nodes"
            );
            let role = remap_role(node.role, inv_offset);
            let new_id = self.add_node(node.kind.clone(), role);
            remap.push(new_id);
        }
        // Edges: iterate successors only, so each edge is added once.
        for (id, node) in other.iter() {
            for &succ in node.succs() {
                self.add_edge(remap[id.index()], remap[succ.index()]);
            }
        }
        // Invocation table.
        for info in other.invocations() {
            self.push_invocation_raw(
                info.module.clone(),
                info.execution,
                remap[info.m_node.index()],
            );
        }
        remap
    }
}

fn remap_role(role: Role, inv_offset: u32) -> Role {
    let shift = |i: InvocationId| InvocationId(i.0 + inv_offset);
    match role {
        Role::Invocation(i) => Role::Invocation(shift(i)),
        Role::ModuleInput(i) => Role::ModuleInput(shift(i)),
        Role::ModuleOutput(i) => Role::ModuleOutput(shift(i)),
        Role::State(i) => Role::State(shift(i)),
        Role::Intermediate(i) => Role::Intermediate(shift(i)),
        Role::Zoom(i) => Role::Zoom(shift(i)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate::check_structure;

    #[test]
    fn import_dedups() {
        let mut global = GraphTracker::new();
        let g0 = global.base("g0");
        let mut shard = ShardTracker::new();
        let a = shard.import(g0);
        let b = shard.import(g0);
        assert_eq!(a, b);
        assert_eq!(shard.recorded(), 0);
    }

    #[test]
    fn absorb_rewires_external_edges() {
        let mut global = GraphTracker::new();
        let g0 = global.base("g0");
        let g1 = global.base("g1");

        let mut shard = ShardTracker::new();
        let i0 = shard.import(g0);
        let i1 = shard.import(g1);
        shard.begin_invocation("M", 0);
        let wrapped = shard.module_input(i0);
        let join = shard.times(&[wrapped, i1]);
        let out = shard.module_output(join, &[]);
        shard.end_invocation();

        let remap = global.absorb_shard(shard);
        let out_global = remap[out.index()];
        let g = global.finish();
        check_structure(&g).unwrap();
        let expr = g.expr_of(out_global).to_string();
        assert!(expr.contains("g0"), "expr: {expr}");
        assert!(expr.contains("g1"), "expr: {expr}");
        assert!(expr.contains("M#0"), "expr: {expr}");
        // no placeholder leaked into the global graph
        assert!(!g.iter().any(
            |(_, n)| matches!(&n.kind, NodeKind::BaseTuple { token } if token.as_str() == "@import")
        ));
    }

    #[test]
    fn absorb_offsets_invocations() {
        let mut global = GraphTracker::new();
        global.begin_invocation("First", 0);
        global.end_invocation();

        let mut shard = ShardTracker::new();
        shard.begin_invocation("Second", 3);
        shard.end_invocation();

        global.absorb_shard(shard);
        let g = global.finish();
        assert_eq!(g.invocations().len(), 2);
        assert_eq!(g.invocation(InvocationId(1)).module, "Second");
        assert_eq!(g.invocation(InvocationId(1)).execution, 3);
        // the m node's role points at the remapped invocation
        let m = g.invocation(InvocationId(1)).m_node;
        assert_eq!(g.node(m).role, Role::Invocation(InvocationId(1)));
    }

    #[test]
    fn two_shards_absorb_independently() {
        let mut global = GraphTracker::new();
        let g0 = global.base("shared");
        let mut results = Vec::new();
        for k in 0..2 {
            let mut shard = ShardTracker::new();
            let i = shard.import(g0);
            shard.begin_invocation("M", k);
            let w = shard.module_input(i);
            let o = shard.module_output(w, &[]);
            shard.end_invocation();
            let remap = global.absorb_shard(shard);
            results.push(remap[o.index()]);
        }
        let g = global.finish();
        check_structure(&g).unwrap();
        assert_eq!(g.invocations_of("M").len(), 2);
        // both outputs trace back to the shared base
        for o in results {
            assert!(g.expr_of(o).to_string().contains("shared"));
        }
        // the shared node now has two i-node successors
        let g0_node = g
            .iter()
            .find(|(_, n)| matches!(&n.kind, NodeKind::BaseTuple { token } if token.as_str() == "shared"))
            .unwrap()
            .0;
        assert_eq!(g.node(g0_node).succs().len(), 2);
    }
}
