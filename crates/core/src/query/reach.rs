//! Precomputed reachability index.
//!
//! §5.1 discusses the design trade-off: "An alternative is to pre-compute
//! the transitive closure of each node, or to keep pair-wise reachability
//! information. Both these options would result in higher memory
//! overhead, but may speed up query processing." This module implements
//! that alternative so the `ablation_reach` bench can measure both sides
//! of the trade-off.

use crate::graph::bitset::BitSet;
use crate::graph::node::NodeId;
use crate::graph::ProvGraph;

/// Descendant transitive closure: one bitset per node.
///
/// Memory is O(V²/8) bytes — the index reports its own footprint so the
/// ablation can chart memory against query speedup.
#[derive(Debug)]
pub struct ReachIndex {
    descendants: Vec<BitSet>,
}

impl ReachIndex {
    /// Build the closure over visible nodes.
    ///
    /// Provenance graphs are DAGs; we process nodes in reverse
    /// topological order so each node's set is the union of its visible
    /// successors' sets plus the successors themselves.
    pub fn build(graph: &ProvGraph) -> ReachIndex {
        let n = graph.len();
        let order = topo_order(graph);
        let mut descendants: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &v in order.iter().rev() {
            let node = graph.node(v);
            if !node.is_visible() {
                continue;
            }
            // Collect into a scratch set, then store (avoids aliasing
            // two entries of `descendants` at once).
            let mut acc = BitSet::new(n);
            for &s in node.succs() {
                if graph.node(s).is_visible() {
                    acc.insert(s.index());
                    acc.union_with(&descendants[s.index()]);
                }
            }
            descendants[v.index()] = acc;
        }
        ReachIndex { descendants }
    }

    /// Is `to` a (strict) descendant of `from`?
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.descendants[from.index()].contains(to.index())
    }

    /// All descendants of `from`, ascending.
    pub fn descendants(&self, from: NodeId) -> Vec<NodeId> {
        self.descendants[from.index()]
            .iter()
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.descendants
            .iter()
            .map(|b| b.capacity().div_ceil(64) * 8)
            .sum()
    }
}

/// Kahn topological order over all allocated nodes (hidden nodes keep
/// their structural edges, so the order covers them too).
fn topo_order(graph: &ProvGraph) -> Vec<NodeId> {
    let n = graph.len();
    let mut indeg = vec![0usize; n];
    for (_, node) in graph.iter() {
        for &s in node.succs() {
            indeg[s.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = (0..n)
        .map(|i| NodeId(i as u32))
        .filter(|id| indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &s in graph.node(v).succs() {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "provenance graph must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_matches_bfs() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let u = g.add_plus(&[t]);
        let w = g.add_plus(&[t, u]);
        let idx = ReachIndex::build(&g);
        assert!(idx.reaches(a, t));
        assert!(idx.reaches(a, w));
        assert!(idx.reaches(t, u));
        assert!(!idx.reaches(u, t));
        assert!(!idx.reaches(a, b));
        assert_eq!(idx.descendants(a), vec![t, u, w]);
    }

    #[test]
    fn hidden_nodes_break_paths() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let t = g.add_plus(&[a]);
        let u = g.add_plus(&[t]);
        g.node_mut(t).zoom_hidden = true;
        let idx = ReachIndex::build(&g);
        assert!(!idx.reaches(a, u), "only path goes through hidden node");
    }

    #[test]
    fn memory_reporting_scales_quadratically() {
        let mut g = ProvGraph::new();
        for i in 0..130 {
            g.add_base(&format!("t{i}"));
        }
        let idx = ReachIndex::build(&g);
        // 130 nodes → ⌈130/64⌉ = 3 words = 24 bytes each
        assert_eq!(idx.memory_bytes(), 130 * 24);
    }
}
