//! Minimal in-tree subset of the `bytes` crate: `Buf`/`BufMut` plus
//! `Bytes`/`BytesMut`, enough for the storage codec. Integer accessors
//! are big-endian, matching upstream.

use std::sync::Arc;

/// Read side of a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte. Panics when exhausted (callers check
    /// `has_remaining` first, as with upstream `bytes`).
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "buffer exhausted");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u64. Panics when fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Fill `dst` from the buffer. Panics when too few bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer exhausted");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }
}

/// Write side of a byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Write a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let data: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-buffer of the unread range (`range` is relative to the
    /// current position).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.start += cnt;
    }
}

/// Upstream `bytes` implements `Buf` for byte slices; the storage
/// crate's lazy reader decodes individual records straight out of the
/// mapped file without copying.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::copy_from_slice(&self.data)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 12);
        let mut r = frozen.clone();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());

        let s = frozen.slice(9..12);
        assert_eq!(s.chunk(), b"xyz");
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn overread_panics() {
        let mut r = Bytes::from_static(&[1]);
        let _ = r.get_u64();
    }
}
