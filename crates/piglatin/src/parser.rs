//! Recursive-descent parser for the Pig Latin fragment.

use lipstick_core::agg::AggOp;
use lipstick_nrel::Value;

use crate::ast::*;
use crate::error::{PigError, Result};
use crate::lexer::lex;
use crate::token::{Spanned, Tok};

/// Parse a script into a [`Program`].
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1))
    }

    fn err(&self, message: impl Into<String>) -> PigError {
        let (line, col) = self.here();
        PigError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<Spanned> {
        match self.peek() {
            Some(t) if t == want => Ok(self.bump().expect("peeked")),
            Some(t) => Err(self.err(format!("expected '{want}', found '{t}'"))),
            None => Err(self.err(format!("expected '{want}', found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let Some(Spanned {
                    tok: Tok::Ident(s), ..
                }) = self.bump()
                else {
                    unreachable!("peeked an ident")
                };
                Ok(s)
            }
            // GROUP output field is literally named `group`, and `group`
            // is a keyword — accept keywords that commonly double as
            // identifiers (`All` is a natural relation alias).
            Some(Tok::Group) => {
                self.bump();
                Ok("group".to_string())
            }
            Some(Tok::All) => {
                self.bump();
                Ok("All".to_string())
            }
            Some(t) => Err(self.err(format!("expected identifier, found '{t}'"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    // ----- grammar -----

    fn program(&mut self) -> Result<Program> {
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
        }
        Ok(Program { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let (line, _) = self.here();
        let alias = self.ident()?;
        self.expect(&Tok::Assign)?;
        let op = self.operator()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt { alias, op, line })
    }

    fn operator(&mut self) -> Result<Op> {
        match self.peek() {
            Some(Tok::Filter) => {
                self.bump();
                let input = self.ident()?;
                self.expect(&Tok::By)?;
                let cond = self.expr()?;
                Ok(Op::Filter { input, cond })
            }
            Some(Tok::Foreach) => {
                self.bump();
                let input = self.ident()?;
                self.expect(&Tok::Generate)?;
                let mut items = vec![self.gen_item()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    items.push(self.gen_item()?);
                }
                Ok(Op::Foreach { input, items })
            }
            Some(Tok::Group) => {
                self.bump();
                let input = self.ident()?;
                let keys = match self.peek() {
                    Some(Tok::All) => {
                        self.bump();
                        GroupKeys::All
                    }
                    Some(Tok::By) => {
                        self.bump();
                        GroupKeys::By(self.expr_list()?)
                    }
                    _ => return Err(self.err("expected BY or ALL after GROUP input")),
                };
                Ok(Op::Group { input, keys })
            }
            Some(Tok::Cogroup) => {
                self.bump();
                let mut inputs = vec![self.cogroup_arm()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    inputs.push(self.cogroup_arm()?);
                }
                if inputs.len() < 2 {
                    return Err(self.err("COGROUP requires at least two inputs"));
                }
                Ok(Op::Cogroup { inputs })
            }
            Some(Tok::Join) => {
                self.bump();
                let left = self.cogroup_arm()?;
                self.expect(&Tok::Comma)?;
                let right = self.cogroup_arm()?;
                if left.1.len() != right.1.len() {
                    return Err(self.err("JOIN key lists must have equal length"));
                }
                Ok(Op::Join { left, right })
            }
            Some(Tok::Union) => {
                self.bump();
                let mut inputs = vec![self.ident()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    inputs.push(self.ident()?);
                }
                if inputs.len() < 2 {
                    return Err(self.err("UNION requires at least two inputs"));
                }
                Ok(Op::Union { inputs })
            }
            Some(Tok::Distinct) => {
                self.bump();
                let input = self.ident()?;
                Ok(Op::Distinct { input })
            }
            Some(Tok::Order) => {
                self.bump();
                let input = self.ident()?;
                self.expect(&Tok::By)?;
                let mut keys = vec![self.order_key()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    keys.push(self.order_key()?);
                }
                Ok(Op::Order { input, keys })
            }
            Some(Tok::Limit) => {
                self.bump();
                let input = self.ident()?;
                match self.bump().map(|s| s.tok) {
                    Some(Tok::IntLit(n)) if n >= 0 => Ok(Op::Limit {
                        input,
                        count: n as usize,
                    }),
                    _ => Err(self.err("expected non-negative count after LIMIT input")),
                }
            }
            Some(t) => Err(self.err(format!("expected an operator keyword, found '{t}'"))),
            None => Err(self.err("expected an operator, found end of input")),
        }
    }

    fn cogroup_arm(&mut self) -> Result<(String, Vec<Expr>)> {
        let name = self.ident()?;
        self.expect(&Tok::By)?;
        Ok((name, self.expr_list()?))
    }

    /// A bare field reference: `$k` or a (possibly qualified) name.
    fn field_ref(&mut self) -> Result<FieldRef> {
        match self.peek() {
            Some(Tok::Positional(_)) => {
                let Some(Spanned {
                    tok: Tok::Positional(i),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked a positional")
                };
                Ok(FieldRef::Positional(i))
            }
            _ => Ok(FieldRef::Named(self.qualified_name()?)),
        }
    }

    fn order_key(&mut self) -> Result<(FieldRef, bool)> {
        let field = self.field_ref()?;
        let asc = match self.peek() {
            Some(Tok::Asc) => {
                self.bump();
                true
            }
            Some(Tok::Desc) => {
                self.bump();
                false
            }
            _ => true,
        };
        Ok((field, asc))
    }

    fn gen_item(&mut self) -> Result<GenItem> {
        match self.peek() {
            Some(Tok::Star) => {
                self.bump();
                Ok(GenItem::Star)
            }
            Some(Tok::Flatten) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let expr = self.expr()?;
                self.expect(&Tok::RParen)?;
                let mut aliases = Vec::new();
                if self.peek() == Some(&Tok::As) {
                    self.bump();
                    // AS (a, b, c) or AS a
                    if self.peek() == Some(&Tok::LParen) {
                        self.bump();
                        aliases.push(self.ident()?);
                        while self.peek() == Some(&Tok::Comma) {
                            self.bump();
                            aliases.push(self.ident()?);
                        }
                        self.expect(&Tok::RParen)?;
                    } else {
                        aliases.push(self.ident()?);
                    }
                }
                Ok(GenItem::Flatten { expr, aliases })
            }
            _ => {
                let expr = self.expr()?;
                let alias = if self.peek() == Some(&Tok::As) {
                    self.bump();
                    Some(self.ident()?)
                } else {
                    None
                };
                Ok(GenItem::Expr { expr, alias })
            }
        }
    }

    fn expr_list(&mut self) -> Result<Vec<Expr>> {
        // A parenthesized list `(a, b)` or a single expression.
        if self.peek() == Some(&Tok::LParen) {
            // Could also be a parenthesized single expression — treat a
            // top-level comma as a list separator.
            self.bump();
            let mut list = vec![self.expr()?];
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                list.push(self.expr()?);
            }
            self.expect(&Tok::RParen)?;
            Ok(list)
        } else {
            Ok(vec![self.expr()?])
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.peek() == Some(&Tok::And) {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Tok::Not) {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                inner: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Neq) => BinOp::Neq,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Lte) => BinOp::Lte,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Gte) => BinOp::Gte,
            Some(Tok::Is) => {
                self.bump();
                let negated = if self.peek() == Some(&Tok::Not) {
                    self.bump();
                    true
                } else {
                    false
                };
                self.expect(&Tok::Null)?;
                return Ok(Expr::IsNull {
                    inner: Box::new(lhs),
                    negated,
                });
            }
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(lhs),
            right: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                inner: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Tok::IntLit(_)) => {
                let Some(Spanned {
                    tok: Tok::IntLit(v),
                    ..
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::Lit(Value::Int(v)))
            }
            Some(Tok::FloatLit(_)) => {
                let Some(Spanned {
                    tok: Tok::FloatLit(v),
                    ..
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::Lit(Value::Float(v)))
            }
            Some(Tok::StrLit(_)) => {
                let Some(Spanned {
                    tok: Tok::StrLit(s),
                    ..
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Expr::Lit(Value::str(s)))
            }
            Some(Tok::True) => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(true)))
            }
            Some(Tok::False) => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(false)))
            }
            Some(Tok::Null) => {
                self.bump();
                Ok(Expr::Lit(Value::Null))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Positional(_)) => {
                let Some(Spanned {
                    tok: Tok::Positional(i),
                    ..
                }) = self.bump()
                else {
                    unreachable!()
                };
                self.maybe_bag_project(FieldRef::Positional(i))
            }
            Some(Tok::Ident(_)) | Some(Tok::Group) => {
                // Could be: function call, qualified name, bag.attr, or
                // a plain field.
                if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() == Some(&Tok::LParen)
                {
                    return self.call();
                }
                let name = self.qualified_name()?;
                self.maybe_bag_project(FieldRef::Named(name))
            }
            Some(t) => Err(self.err(format!("expected expression, found '{t}'"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    /// `name (:: name)*`
    fn qualified_name(&mut self) -> Result<String> {
        let mut name = self.ident()?;
        while self.peek() == Some(&Tok::DoubleColon) {
            self.bump();
            name.push_str("::");
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    /// After a field reference, a `.attr` turns it into a bag
    /// projection (`Bids.Price`).
    fn maybe_bag_project(&mut self, base: FieldRef) -> Result<Expr> {
        if self.peek() == Some(&Tok::Dot) {
            self.bump();
            let attr = match self.peek() {
                Some(Tok::Positional(_)) => {
                    let Some(Spanned {
                        tok: Tok::Positional(i),
                        ..
                    }) = self.bump()
                    else {
                        unreachable!()
                    };
                    FieldRef::Positional(i)
                }
                _ => FieldRef::Named(self.qualified_name()?),
            };
            return Ok(Expr::BagProject { bag: base, attr });
        }
        Ok(Expr::Field(base))
    }

    /// `NAME(arg, …)` — aggregate if NAME is COUNT/SUM/MIN/MAX/AVG,
    /// otherwise a UDF call.
    fn call(&mut self) -> Result<Expr> {
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            args.push(self.expr()?);
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                args.push(self.expr()?);
            }
        }
        self.expect(&Tok::RParen)?;
        if let Some(op) = AggOp::parse(&name) {
            if args.len() != 1 {
                return Err(self.err(format!("{name} takes exactly one argument")));
            }
            return Ok(Expr::Agg {
                op,
                arg: Box::new(args.into_iter().next().expect("len checked")),
            });
        }
        Ok(Expr::Udf { name, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_filter() {
        let p = parse("B = FILTER A BY x >= 3 AND y == 'civic';").unwrap();
        assert_eq!(p.stmts.len(), 1);
        assert_eq!(p.stmts[0].alias, "B");
        match &p.stmts[0].op {
            Op::Filter { input, cond } => {
                assert_eq!(input, "A");
                assert!(matches!(cond, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_foreach_with_agg_and_alias() {
        let p = parse(
            "NumCarsByModel = FOREACH CarsByModel GENERATE group AS Model, COUNT(Inventory) AS NumAvail;",
        )
        .unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => {
                assert_eq!(items.len(), 2);
                assert!(matches!(
                    &items[0],
                    GenItem::Expr {
                        alias: Some(a),
                        ..
                    } if a == "Model"
                ));
                assert!(matches!(
                    &items[1],
                    GenItem::Expr {
                        expr: Expr::Agg { op: AggOp::Count, .. },
                        alias: Some(a),
                    } if a == "NumAvail"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_join_with_two_keys() {
        let p = parse("Inventory = JOIN Cars BY (Model, Year), Req BY (Model, Year);").unwrap();
        match &p.stmts[0].op {
            Op::Join { left, right } => {
                assert_eq!(left.0, "Cars");
                assert_eq!(left.1.len(), 2);
                assert_eq!(right.1.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_cogroup_three_way() {
        let p = parse("All = COGROUP A BY m, B BY m, C BY m;").unwrap();
        match &p.stmts[0].op {
            Op::Cogroup { inputs } => assert_eq!(inputs.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_all_and_sum_path() {
        let p = parse("G = GROUP Bids ALL; M = FOREACH G GENERATE MIN(Bids.Price);").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert!(matches!(
            &p.stmts[0].op,
            Op::Group {
                keys: GroupKeys::All,
                ..
            }
        ));
        match &p.stmts[1].op {
            Op::Foreach { items, .. } => match &items[0] {
                GenItem::Expr {
                    expr: Expr::Agg { op, arg },
                    ..
                } => {
                    assert_eq!(*op, AggOp::Min);
                    assert!(matches!(**arg, Expr::BagProject { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_flatten_udf() {
        let p = parse(
            "InventoryBids = FOREACH AllInfo GENERATE FLATTEN(CalcBid(Requests, NumCars, NumSold));",
        )
        .unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => match &items[0] {
                GenItem::Flatten { expr, aliases } => {
                    assert!(aliases.is_empty());
                    assert!(matches!(expr, Expr::Udf { name, args }
                        if name == "CalcBid" && args.len() == 3));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_flatten_with_alias_list() {
        let p = parse("X = FOREACH A GENERATE FLATTEN(b) AS (p, q), c;").unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => {
                assert!(matches!(&items[0], GenItem::Flatten { aliases, .. }
                    if aliases == &vec!["p".to_string(), "q".to_string()]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_order_and_limit() {
        let p = parse("S = ORDER A BY price DESC, $0; T = LIMIT S 10;").unwrap();
        match &p.stmts[0].op {
            Op::Order { keys, .. } => {
                assert_eq!(keys.len(), 2);
                assert!(!keys[0].1);
                assert!(keys[1].1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&p.stmts[1].op, Op::Limit { count: 10, .. }));
    }

    #[test]
    fn parses_union_distinct() {
        let p = parse("U = UNION A, B, C; D = DISTINCT U;").unwrap();
        assert!(matches!(&p.stmts[0].op, Op::Union { inputs } if inputs.len() == 3));
        assert!(matches!(&p.stmts[1].op, Op::Distinct { .. }));
    }

    #[test]
    fn group_as_field_name() {
        let p = parse("X = FOREACH G GENERATE group;").unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => {
                assert!(matches!(&items[0], GenItem::Expr {
                    expr: Expr::Field(FieldRef::Named(n)), ..
                } if n == "group"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let p = parse("X = FOREACH A GENERATE a + b * c;").unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => match &items[0] {
                GenItem::Expr {
                    expr:
                        Expr::Binary {
                            op: BinOp::Add,
                            right,
                            ..
                        },
                    ..
                } => {
                    assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_not_null() {
        let p = parse("B = FILTER A BY x IS NOT NULL;").unwrap();
        match &p.stmts[0].op {
            Op::Filter { cond, .. } => {
                assert!(matches!(cond, Expr::IsNull { negated: true, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("B = FILTER A x > 3;").unwrap_err();
        assert!(matches!(err, PigError::Parse { .. }));
        assert!(err.to_string().contains("BY"));
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("B = DISTINCT A").is_err());
    }

    #[test]
    fn qualified_field_reference() {
        let p = parse("B = FOREACH A GENERATE Cars::Model;").unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => {
                assert!(matches!(&items[0], GenItem::Expr {
                    expr: Expr::Field(FieldRef::Named(n)), ..
                } if n == "Cars::Model"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn star_item() {
        let p = parse("B = FOREACH A GENERATE *;").unwrap();
        match &p.stmts[0].op {
            Op::Foreach { items, .. } => assert_eq!(items, &vec![GenItem::Star]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
