//! The boolean semiring ({false, true}, ∨, ∧).
//!
//! Valuating tokens as "present"/"absent" answers possibility queries:
//! does the output tuple survive if these inputs are removed? This is the
//! semiring counterpart of the paper's deletion propagation (§4.2).

use super::Semiring;

/// Booleans under ∨ / ∧.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bools(pub bool);

impl Semiring for Bools {
    fn zero() -> Self {
        Bools(false)
    }
    fn one() -> Self {
        Bools(true)
    }
    fn plus(&self, other: &Self) -> Self {
        Bools(self.0 || other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Bools(self.0 && other.0)
    }
    // δ is the identity: ∨ is idempotent.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laws_all_cases() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    crate::semiring::laws::check_laws(Bools(a), Bools(b), Bools(c));
                }
            }
        }
    }

    #[test]
    fn delta_is_identity() {
        assert_eq!(Bools(true).delta(), Bools(true));
        assert_eq!(Bools(false).delta(), Bools(false));
    }
}
